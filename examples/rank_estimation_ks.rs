//! Domain scenario: streaming CDF comparison (Kolmogorov–Smirnov style).
//!
//! The paper's introduction lists "performing Kolmogorov-Smirnov
//! statistical tests" among quantile-summary applications: a summary
//! answering rank queries is an approximate CDF. Here two telemetry
//! streams (a baseline deploy and a canary with a shifted tail) are
//! summarised by GK, and the KS statistic sup_x |F̂₁(x) − F̂₂(x)| is
//! estimated from the summaries alone, within 2ε of the true value.
//!
//! Run: `cargo run --release --example rank_estimation_ks`

use cqs::prelude::*;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Baseline latency: uniform-ish in [100, 1100).
fn baseline(state: &mut u64) -> u64 {
    100 + xorshift(state) % 1000
}

/// Canary latency: 10% of requests pay a +400µs regression.
fn canary(state: &mut u64) -> u64 {
    let base = 100 + xorshift(state) % 1000;
    if xorshift(state).is_multiple_of(10) {
        base + 400
    } else {
        base
    }
}

fn main() {
    let n: u64 = 200_000;
    let eps = 0.002;

    let mut gk_base = GkSummary::new(eps);
    let mut gk_canary = GkSummary::new(eps);
    let mut exact_base = Vec::with_capacity(n as usize);
    let mut exact_canary = Vec::with_capacity(n as usize);

    let mut s1 = 0xDEADBEEF_u64;
    let mut s2 = 0xFEEDC0DE_u64;
    for _ in 0..n {
        let b = baseline(&mut s1);
        let c = canary(&mut s2);
        gk_base.insert(b);
        gk_canary.insert(c);
        exact_base.push(b);
        exact_canary.push(c);
    }
    exact_base.sort_unstable();
    exact_canary.sort_unstable();

    // KS statistic from the summaries: evaluate both estimated CDFs on
    // the union of the two item arrays (the only evaluation points a
    // comparison-based structure can distinguish).
    let mut eval_points = gk_base.item_array();
    eval_points.extend(gk_canary.item_array());
    eval_points.sort_unstable();
    eval_points.dedup();

    let mut ks_est = 0.0f64;
    let mut ks_at = 0u64;
    for q in &eval_points {
        let f1 = gk_base.estimate_rank(q) as f64 / n as f64;
        let f2 = gk_canary.estimate_rank(q) as f64 / n as f64;
        if (f1 - f2).abs() > ks_est {
            ks_est = (f1 - f2).abs();
            ks_at = *q;
        }
    }

    // Ground truth on the same point set, exhaustively.
    let mut ks_true = 0.0f64;
    for q in 0..1600u64 {
        let f1 = exact_base.partition_point(|&x| x <= q) as f64 / n as f64;
        let f2 = exact_canary.partition_point(|&x| x <= q) as f64 / n as f64;
        ks_true = ks_true.max((f1 - f2).abs());
    }

    println!("streams           : baseline vs canary, {n} requests each");
    println!(
        "summary space     : {} + {} items",
        gk_base.stored_count(),
        gk_canary.stored_count()
    );
    println!("KS from summaries : {ks_est:.4} (at value {ks_at})");
    println!("KS exact          : {ks_true:.4}");
    println!(
        "|difference|      : {:.4} (guarantee: <= 2*eps = {:.4})",
        (ks_est - ks_true).abs(),
        2.0 * eps
    );
    assert!((ks_est - ks_true).abs() <= 2.0 * eps + 1e-9);

    // The regression is detectable: 10% of mass shifted by 400µs puts
    // the true KS near 0.08; far above the 2ε noise floor.
    println!(
        "\nverdict: canary {} (KS {:.3} vs noise floor {:.3})",
        if ks_est > 2.0 * eps + 0.02 {
            "REGRESSED"
        } else {
            "ok"
        },
        ks_est,
        2.0 * eps
    );
}
