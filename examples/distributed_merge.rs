//! Domain scenario: distributed quantile aggregation.
//!
//! The paper's introduction lists "balancing parallel computations"
//! among quantile-summary applications: partition-then-merge is how
//! engines like Spark pick range boundaries. Here a 800k-item stream is
//! split over 8 shards; each shard builds its own summary; a balanced
//! merge tree combines them, and the merged summaries pick range-
//! partition boundaries whose imbalance we audit against ground truth.
//!
//! Run: `cargo run --release --example distributed_merge`

use cqs::core::histogram::equi_depth_histogram;
use cqs::prelude::*;

fn shard_data(total: u64, shards: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut all: Vec<u64> = (1..=total).collect();
    let mut s = seed | 1;
    for i in (1..all.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        all.swap(i, j);
    }
    all.chunks(all.len() / shards).map(|c| c.to_vec()).collect()
}

fn main() {
    let total = 800_000u64;
    let shards = 8usize;
    let eps = 0.001;
    let parts = shard_data(total, shards, 0xABCD);

    // --- GK: summarise each shard, merge in a balanced tree. ----------
    let mut gks: Vec<GkSummary<u64>> = parts
        .iter()
        .map(|chunk| {
            let mut s = GkSummary::new(eps);
            for &v in chunk {
                s.insert(v);
            }
            s
        })
        .collect();
    while gks.len() > 1 {
        let mut next = Vec::with_capacity(gks.len() / 2);
        while gks.len() >= 2 {
            let mut a = gks.remove(0);
            let b = gks.remove(0);
            a.merge(&b);
            next.push(a);
        }
        next.append(&mut gks);
        gks = next;
    }
    let gk = &gks[0];

    // --- KLL: same exercise. -------------------------------------------
    let mut klls: Vec<KllSketch<u64>> = parts
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut s = KllSketch::with_seed(400, 0xF00 + i as u64);
            for &v in chunk {
                s.insert(v);
            }
            s
        })
        .collect();
    let mut kll = klls.remove(0);
    for other in &klls {
        kll.merge(other);
    }

    println!(
        "merged {shards} shards of {} items each\n",
        total / shards as u64
    );
    println!("summary  items-stored  p50-err  p99-err");
    for (name, p50, p99, stored) in [
        (
            "gk",
            gk.quantile(0.5).unwrap().abs_diff(total / 2),
            gk.quantile(0.99).unwrap().abs_diff(total * 99 / 100),
            gk.stored_count(),
        ),
        (
            "kll",
            kll.quantile(0.5).unwrap().abs_diff(total / 2),
            kll.quantile(0.99).unwrap().abs_diff(total * 99 / 100),
            kll.stored_count(),
        ),
    ] {
        println!("{name:<8} {stored:<13} {p50:<8} {p99:<8}");
    }

    // --- Range partitioning: 16 balanced partitions from the merged GK.
    let hist = equi_depth_histogram(gk, 16).expect("non-empty");
    let mut all: Vec<u64> = parts.into_iter().flatten().collect();
    all.sort_unstable();
    let worst = hist.max_depth_error(&all);
    println!(
        "\nrange partitioning into 16 buckets (target {} items each):",
        hist.target_depth
    );
    println!(
        "  worst bucket deviation: {worst} items ({:.3}% of target)",
        100.0 * worst as f64 / hist.target_depth as f64
    );
    // Merge tree has 3 levels => ε·2³ rank error per boundary, both
    // sides => tolerance 2·8εN.
    let tolerance = (16.0 * eps * total as f64) as u64;
    assert!(
        worst <= tolerance,
        "imbalance {worst} exceeds tolerance {tolerance}"
    );
    println!("  within the merge-tree tolerance of {tolerance} — balanced parallel work.");
}
