//! Domain scenario: distributed quantile aggregation, as a service.
//!
//! The paper's introduction lists "balancing parallel computations"
//! among quantile-summary applications: partition-then-merge is how
//! engines like Spark pick range boundaries. Here an 800k-item stream
//! arrives as batches at a [`QuantileRegistry`]: `parallel_ingest`
//! spreads the batches over 8 summary shards deterministically (batch
//! `b` → shard `b mod 8`, so the result is identical for any thread
//! count), the fold path combines the shards with `try_merge` — the
//! mergeable-summaries composition, composed ε ≤ 8·ε₀ — and the folded
//! summary picks range-partition boundaries whose imbalance we audit
//! against ground truth.
//!
//! Run: `cargo run --release --example distributed_merge`

use cqs::core::histogram::equi_depth_histogram;
use cqs::prelude::*;

fn shuffled_batches(total: u64, batch: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut all: Vec<u64> = (1..=total).collect();
    let mut s = seed | 1;
    for i in (1..all.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        all.swap(i, j);
    }
    all.chunks(batch).map(|c| c.to_vec()).collect()
}

fn main() {
    let total = 800_000u64;
    let shards = 8usize;
    let eps = 0.001;
    let batches = shuffled_batches(total, 4096, 0xABCD);

    // --- GK behind the service registry. ------------------------------
    let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
        ServiceConfig {
            shards,
            stripes: 4,
            fold_cadence: 64,
        },
        move || GkSummary::new(eps),
    );
    let handle = reg.handle("range-keys");
    let ingested = parallel_ingest(&handle, &batches, shards);
    let gk = handle
        .folded()
        .expect("identically-built shards merge")
        .expect("stream is non-empty");
    let composed = handle
        .composed_eps()
        .expect("fold")
        .expect("gk reports a composed eps");

    // --- KLL: same shards, folded by hand with `try_merge`. -----------
    let mut klls: Vec<KllSketch<u64>> = (0..shards)
        .map(|i| KllSketch::with_seed(400, 0xF00 + i as u64))
        .collect();
    for (b, chunk) in batches.iter().enumerate() {
        for &v in chunk {
            klls[b % shards].insert(v);
        }
    }
    let mut kll = klls.remove(0);
    for other in &klls {
        kll.try_merge(other).expect("kll shards always merge");
    }

    println!(
        "ingested {ingested} items as {} batches over {shards} shards (composed eps {composed})\n",
        batches.len()
    );
    println!("summary  items-stored  p50-err  p99-err");
    for (name, p50, p99, stored) in [
        (
            "gk",
            gk.quantile(0.5).unwrap().abs_diff(total / 2),
            gk.quantile(0.99).unwrap().abs_diff(total * 99 / 100),
            gk.stored_count(),
        ),
        (
            "kll",
            kll.quantile(0.5).unwrap().abs_diff(total / 2),
            kll.quantile(0.99).unwrap().abs_diff(total * 99 / 100),
            kll.stored_count(),
        ),
    ] {
        println!("{name:<8} {stored:<13} {p50:<8} {p99:<8}");
    }

    // --- Range partitioning: 16 balanced partitions from the fold. ----
    let hist = equi_depth_histogram(&gk, 16).expect("non-empty");
    let mut all: Vec<u64> = batches.into_iter().flatten().collect();
    all.sort_unstable();
    let worst = hist.max_depth_error(&all);
    println!(
        "\nrange partitioning into 16 buckets (target {} items each):",
        hist.target_depth
    );
    println!(
        "  worst bucket deviation: {worst} items ({:.3}% of target)",
        100.0 * worst as f64 / hist.target_depth as f64
    );
    // The left fold composes ε ≤ 8·ε₀; each boundary can err on both
    // sides => tolerance 2·8εN.
    let tolerance = (2.0 * composed * total as f64) as u64;
    assert!(
        worst <= tolerance,
        "imbalance {worst} exceeds tolerance {tolerance}"
    );
    println!("  within the composed-eps tolerance of {tolerance} — balanced parallel work.");
}
