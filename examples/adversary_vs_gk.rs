//! The paper's dilemma, both horns: a correct summary pays space; a
//! space-starved one provably fails a query we can print.
//!
//! Run: `cargo run --release --example adversary_vs_gk`

use cqs::core::adversary::run_adversary;
use cqs::core::failure::quantile_failure_witness;
use cqs::prelude::*;

fn main() {
    let eps = Eps::from_inverse(32);
    let k = 8; // N = 8192

    // --- Horn 1: correct GK ------------------------------------------
    let out = run_adversary(eps, k, || GkSummary::<Item>::new(eps.value()));
    let rep = out.report();
    println!(
        "correct GK under the adversary (eps = {eps}, N = {}):",
        rep.n
    );
    println!(
        "  gap {} <= ceiling {}   (Lemma 3.4 satisfied)",
        rep.final_gap, rep.gap_ceiling
    );
    println!(
        "  peak |I| = {} >= Theorem 2.2 bound {:.1}",
        rep.max_stored, rep.theorem22_bound
    );
    println!(
        "  Claim 1 violations: {}, Lemma 5.2 violations: {}",
        rep.claim1_violations, rep.lemma52_violations
    );
    assert!(quantile_failure_witness(&out).is_none());

    // --- Horn 2: GK capped far below the bound ------------------------
    let out = run_adversary(eps, k, || CappedGk::<Item>::new(eps.value(), 12));
    let rep = out.report();
    println!("\ncapped GK (budget 12) under the same adversary:");
    println!(
        "  gap {} > ceiling {}    (the ceiling is blown)",
        rep.final_gap, rep.gap_ceiling
    );

    let w = quantile_failure_witness(&out).expect("ceiling blown => witness exists");
    println!(
        "  failing query: phi = {:.4} (target rank {})",
        w.phi, w.target_rank
    );
    println!(
        "    on stream pi : answer has true rank {}, error {}",
        w.answer_rank_pi, w.err_pi
    );
    println!(
        "    on stream rho: answer has true rank {}, error {}",
        w.answer_rank_rho, w.err_rho
    );
    println!("    permitted error eps*N = {}", w.budget);
    assert!(w.demonstrates_failure());
    println!("\nThe two streams are indistinguishable to the summary, so it answers both");
    println!(
        "identically — and the true ranks differ by {}, so one answer must be wrong.",
        w.gap
    );
}
