//! Domain scenario: rolling SLO dashboards.
//!
//! An alerting pipeline cares about p99 latency over the last W
//! requests, not since process start: a regression must show up quickly
//! and a past incident must age out. `SlidingWindowGk` keeps the
//! trailing window answerable in O((b/ε)·log(εW/b)) space by merging
//! chunked GK summaries at query time — mergeability (the "balancing
//! parallel computations" application from the paper's intro) doing
//! double duty for windowing.
//!
//! Run: `cargo run --release --example rolling_percentiles`

use cqs::prelude::*;

fn main() {
    let window = 20_000u64;
    let mut sw = SlidingWindowGk::new(0.01, window, 20);
    let mut lifetime = GkSummary::new(0.01);

    // Three regimes: healthy -> incident (5x latency) -> recovered.
    let mut clock = 0u64;
    let mut state = 0x5151_5151_u64;
    let mut gen = |mult: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1_000 + 200) * mult
    };

    println!(
        "{:<12} {:>14} {:>14}",
        "phase", "window p99", "lifetime p99"
    );
    let mut phase = |name: &str,
                     n: u64,
                     mult: u64,
                     sw: &mut SlidingWindowGk<u64>,
                     lt: &mut GkSummary<u64>,
                     gen: &mut dyn FnMut(u64) -> u64| {
        for _ in 0..n {
            let lat = gen(mult);
            sw.insert(lat);
            lt.insert(lat);
            clock += 1;
        }
        println!(
            "{:<12} {:>14} {:>14}",
            name,
            sw.quantile(0.99).unwrap(),
            lt.quantile(0.99).unwrap()
        );
        (sw.quantile(0.99).unwrap(), lt.quantile(0.99).unwrap())
    };

    let (w1, _) = phase("healthy", 60_000, 1, &mut sw, &mut lifetime, &mut gen);
    let (w2, _) = phase("incident", 60_000, 5, &mut sw, &mut lifetime, &mut gen);
    let (w3, l3) = phase("recovered", 60_000, 1, &mut sw, &mut lifetime, &mut gen);

    println!(
        "\nstored: window summary = {} items, lifetime = {} items",
        sw.stored_count(),
        lifetime.stored_count()
    );

    // The window reacts and recovers; the lifetime summary stays
    // poisoned by the incident (its p99 covers all 180k requests).
    assert!(w2 > 4 * w1, "incident not visible in the window");
    assert!(w3 < w2 / 3, "window failed to age the incident out");
    assert!(l3 > w3, "lifetime p99 should still remember the incident");
    println!("\nwindowed p99 recovered to {w3} while lifetime p99 stays at {l3} —");
    println!("exactly why SLO alerting needs the sliding-window model.");
}
