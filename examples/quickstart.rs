//! Quickstart: summarise a stream you could never afford to store, then
//! see the theorem that says the summary can't be smaller.
//!
//! Run: `cargo run --release --example quickstart`

use cqs::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The upper bound in action: GK over a million-item stream.
    // ------------------------------------------------------------------
    let n: u64 = 1_000_000;
    let eps = 0.001;
    let mut gk = GkSummary::new(eps);

    // A synthetic heavy-tailed stream (values don't matter — GK only
    // compares them).
    let mut x = 0x2545F491_u64;
    for _ in 0..n {
        // xorshift for a scattered insertion order
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        gk.insert(x % 10_000_000);
    }

    println!("stream length : {n}");
    println!("eps           : {eps}");
    println!(
        "items stored  : {} ({:.3}% of the stream)",
        gk.stored_count(),
        100.0 * gk.stored_count() as f64 / n as f64
    );
    for phi in [0.01, 0.25, 0.5, 0.75, 0.99, 0.999] {
        let q = gk.quantile(phi).expect("non-empty");
        println!("  phi = {phi:<6} -> {q}");
    }

    // ------------------------------------------------------------------
    // 2. The lower bound in action: the PODS'20 adversary against GK.
    // ------------------------------------------------------------------
    let eps = Eps::from_inverse(32);
    let k = 7; // N = (1/eps) * 2^k = 4096
    let report = run_lower_bound(eps, k, || GkSummary::<Item>::new(eps.value()));

    println!("\nadversary: eps = {}, N = {}", report.eps, report.n);
    println!(
        "  indistinguishable streams held : {}",
        report.equivalence_ok
    );
    println!(
        "  final gap / correctness ceiling: {} / {}",
        report.final_gap, report.gap_ceiling
    );
    println!("  peak items stored              : {}", report.max_stored);
    println!(
        "  Theorem 2.2 lower bound        : {:.1}",
        report.theorem22_bound
    );
    println!(
        "  GK upper-bound shape           : {:.1}",
        eps.inverse() as f64 * (k as f64 + 1.0)
    );
    assert!(
        report.final_gap <= report.gap_ceiling,
        "GK must stay correct"
    );
    assert!(
        report.max_stored as f64 >= report.theorem22_bound,
        "…and must pay the space the theorem demands"
    );
    println!("\nGK stayed within the gap ceiling and paid ≥ the lower bound: the theorem, live.");
}
