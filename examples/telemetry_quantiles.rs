//! Domain scenario: streaming latency telemetry.
//!
//! A service observes request latencies (microseconds, log-normal-ish
//! with a heavy tail) and needs p50/p90/p99/p99.9 continuously without
//! storing the stream. Uniform-ε summaries (GK) pin the middle of the
//! distribution; the biased summary (CKMS) pins tail percentiles with
//! *relative* error — the trade-off Section 6.4 of the lower-bound
//! paper formalises. Tail latency wants the sharp end at *high* ranks,
//! so we use the high-biased CKMS mode (mirrored invariant).
//!
//! Run: `cargo run --release --example telemetry_quantiles`

use cqs::prelude::*;

/// Deterministic log-normal-ish latency generator (sum of scaled
/// xorshift uniforms, exponentiated).
struct LatencyGen {
    state: u64,
}

impl LatencyGen {
    fn next_latency(&mut self) -> u64 {
        let mut u = 0.0f64;
        for _ in 0..4 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            u += (self.state % 10_000) as f64 / 10_000.0;
        }
        // Exponentiate for a heavy right tail: ~740µs typical, rare
        // multi-ms spikes.
        (100.0 * u.exp()) as u64 + 50
    }
}

fn main() {
    let n: u64 = 500_000;
    let eps_uniform = 0.001;
    let eps_rel = 0.01;

    let mut gk = GkSummary::new(eps_uniform);
    let mut ckms = CkmsSummary::new_high_biased(eps_rel);
    let mut exact: Vec<u64> = Vec::with_capacity(n as usize);

    let mut gen = LatencyGen {
        state: 0x1234_5678_9abc_def0,
    };
    for _ in 0..n {
        let lat = gen.next_latency();
        gk.insert(lat);
        ckms.insert(lat);
        exact.push(lat);
    }
    exact.sort_unstable();

    let truth = |phi: f64| exact[((phi * n as f64) as usize).clamp(1, n as usize) - 1];
    let ckms_tail = |phi: f64| ckms.quantile(phi).unwrap();

    println!("latency percentiles over {n} requests (values in µs):\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>14} {:>14}",
        "phi", "exact", "gk", "ckms(tail)", "gk-rank-err", "ckms-rank-err"
    );
    for phi in [0.5, 0.9, 0.99, 0.999, 0.9999] {
        let t = truth(phi);
        let g = gk.quantile(phi).unwrap();
        let c = ckms_tail(phi);
        let rank_of = |v: u64| exact.partition_point(|&x| x <= v) as i64;
        let target = (phi * n as f64) as i64;
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>14} {:>14}",
            phi,
            t,
            g,
            c,
            (rank_of(g) - target).abs(),
            (rank_of(c) - target).abs()
        );
    }

    println!(
        "\nspace: exact = {} items, gk = {}, ckms = {}",
        n,
        gk.stored_count(),
        ckms.stored_count()
    );
    println!(
        "\nGK's uniform eps = {eps_uniform} allows ±{} ranks everywhere — at p99.99 that is the",
        (eps_uniform * n as f64) as u64
    );
    println!("entire tail. CKMS's relative eps = {eps_rel} keeps tail answers proportionally");
    println!("sharp (±eps·(1−phi)·N from the top), at the extra space cost that");
    println!("Theorem 6.5 of the paper proves unavoidable: Ω((1/eps)·log² eps·N).");
}
