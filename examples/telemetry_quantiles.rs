//! Domain scenario: streaming latency telemetry, multi-tenant.
//!
//! A service observes request latencies (microseconds, log-normal-ish
//! with a heavy tail) for several endpoints and needs p50/p90/p99/p99.9
//! per endpoint continuously without storing the streams. Each endpoint
//! is a key in a [`QuantileRegistry`]: writers hold cheap clonable
//! handles, a background merge worker folds each key's shards on a
//! run-count cadence, and one `export_quantiles` pass snapshots every
//! endpoint's percentile grid. The uniform-ε GK rows pin the middle of
//! the distribution; the high-biased CKMS contrast shows the
//! relative-error trade-off Section 6.4 of the lower-bound paper
//! formalises for the tail.
//!
//! Run: `cargo run --release --example telemetry_quantiles`

use cqs::prelude::*;

/// Deterministic log-normal-ish latency generator (sum of scaled
/// xorshift uniforms, exponentiated).
struct LatencyGen {
    state: u64,
}

impl LatencyGen {
    fn next_latency(&mut self) -> u64 {
        let mut u = 0.0f64;
        for _ in 0..4 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            u += (self.state % 10_000) as f64 / 10_000.0;
        }
        // Exponentiate for a heavy right tail: ~740µs typical, rare
        // multi-ms spikes.
        (100.0 * u.exp()) as u64 + 50
    }
}

fn main() {
    let n: u64 = 200_000; // per endpoint
    let eps_uniform = 0.001;
    let eps_rel = 0.01;

    // One registry, one key per endpoint, four shards per key. The
    // merge worker folds in the background whenever a key crosses its
    // ingest cadence; the final export folds whatever is left.
    let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
        ServiceConfig {
            shards: 4,
            stripes: 4,
            fold_cadence: 4096,
        },
        move || GkSummary::new(eps_uniform),
    );
    let worker = reg.start_merge_worker();

    let endpoints = ["GET /search", "GET /item", "POST /checkout"];
    let mut ckms = CkmsSummary::new_high_biased(eps_rel);
    let mut exact: Vec<u64> = Vec::with_capacity(n as usize);

    for (e, endpoint) in endpoints.iter().enumerate() {
        let handle = reg.handle(endpoint);
        let mut gen = LatencyGen {
            state: 0x1234_5678_9abc_def0 ^ (e as u64) << 32,
        };
        for _ in 0..n {
            let lat = gen.next_latency();
            handle.record(lat);
            if e == 0 {
                // Keep ground truth and the CKMS tail contrast for the
                // first endpoint only.
                ckms.insert(lat);
                exact.push(lat);
            }
        }
    }
    exact.sort_unstable();

    // One pass over the registry: every endpoint's grid, one fold each.
    let export = reg
        .export_quantiles(&[0.5, 0.9, 0.99, 0.999])
        .expect("identically-built shards merge");
    assert_eq!(worker.fold_errors(), 0);
    worker.shutdown();

    println!("latency percentiles over {n} requests per endpoint (values in µs):\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "endpoint", "n", "p50", "p90", "p99", "p99.9"
    );
    for row in &export.keys {
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
            row.key,
            row.n,
            row.values[0].unwrap_or(0),
            row.values[1].unwrap_or(0),
            row.values[2].unwrap_or(0),
            row.values[3].unwrap_or(0),
        );
    }

    // --- Exact-vs-served check for the first endpoint. ----------------
    let served = reg
        .folded(endpoints[0])
        .expect("fold")
        .expect("non-empty endpoint");
    let truth = |phi: f64| exact[((phi * n as f64) as usize).clamp(1, n as usize) - 1];
    let rank_of = |v: u64| exact.partition_point(|&x| x <= v) as i64;

    println!("\n{} against ground truth:\n", endpoints[0]);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>14} {:>14}",
        "phi", "exact", "served", "ckms(tail)", "served-rk-err", "ckms-rk-err"
    );
    for phi in [0.5, 0.9, 0.99, 0.999] {
        let t = truth(phi);
        let g = served.quantile(phi).unwrap();
        let c = ckms.quantile(phi).unwrap();
        let target = (phi * n as f64) as i64;
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>14} {:>14}",
            phi,
            t,
            g,
            c,
            (rank_of(g) - target).abs(),
            (rank_of(c) - target).abs()
        );
    }

    println!(
        "\nspace: exact = {} items, served gk = {} (x4 shards), ckms = {}",
        n,
        served.stored_count(),
        ckms.stored_count()
    );
    println!(
        "\nThe served GK fold composes eps <= 4 x {eps_uniform} = ±{} ranks everywhere — at p99.9",
        (4.0 * eps_uniform * n as f64) as u64
    );
    println!("that is the entire tail. CKMS's relative eps = {eps_rel} keeps tail answers");
    println!("proportionally sharp (±eps·(1−phi)·N from the top), at the extra space cost");
    println!("Theorem 6.5 of the paper proves unavoidable: Ω((1/eps)·log² eps·N).");
}
