//! A batteries-included quantile sketch over `f64` measurements.
//!
//! The workspace crates expose each algorithm with its own typed API;
//! this module is the application-facing convenience layer: pick an
//! [`Algorithm`], feed `f64`s, ask for percentiles. Dynamic dispatch
//! over the shared [`ComparisonSummary`] trait — the same trait the
//! lower-bound adversary attacks — so anything you use here is a
//! first-class citizen of the reproduction.
//!
//! ```
//! use cqs::sketch::{Algorithm, QuantileSketch};
//!
//! let mut s = QuantileSketch::new(Algorithm::Gk, 0.01);
//! for i in 0..10_000 {
//!     s.observe(i as f64 / 10.0);
//! }
//! let p99 = s.quantile(0.99).unwrap();
//! assert!((985.0..=995.0).contains(&p99));
//! assert!(s.stored() < 600);
//! ```

use cqs_ckms::CkmsSummary;
use cqs_core::ComparisonSummary;
use cqs_gk::{GkSummary, GreedyGk};
use cqs_kll::{KllSketch, SampledKll};
use cqs_mrl::MrlSummary;
use cqs_sampling::ReservoirSummary;
use cqs_streams::OrdF64;

/// Algorithm selector for [`QuantileSketch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Greenwald–Khanna, banded (deterministic, O((1/ε)·log εN) — the
    /// proven-optimal deterministic choice).
    Gk,
    /// Greenwald–Khanna, greedy COMPRESS (deterministic; best practical
    /// space per Luo et al.).
    GkGreedy,
    /// Manku–Rajagopalan–Lindsay sized for the given expected stream
    /// length (deterministic, needs N in advance).
    Mrl {
        /// Expected stream length used to size the buffers.
        expected_n: u64,
    },
    /// Karnin–Lang–Liberty with the given seed (randomized; smallest
    /// space for large N).
    Kll {
        /// RNG seed — fixed seed makes the sketch replayable.
        seed: u64,
    },
    /// Sampler-fronted KLL (space independent of N).
    KllSampled {
        /// RNG seed.
        seed: u64,
    },
    /// Reservoir sampling with δ = 1% (randomized baseline).
    Reservoir {
        /// RNG seed.
        seed: u64,
    },
    /// CKMS biased quantiles: relative error ε·ϕ·N — use for sharp
    /// low-percentile tracking (mirror your values for high tails).
    CkmsBiased,
}

/// A quantile sketch over `f64` measurements (NaN rejected).
pub struct QuantileSketch {
    inner: Box<dyn ComparisonSummary<OrdF64>>,
    algorithm: Algorithm,
}

impl QuantileSketch {
    /// Creates a sketch with the given target ε.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ε (each algorithm's own constructor rules
    /// apply).
    pub fn new(algorithm: Algorithm, eps: f64) -> Self {
        let inner: Box<dyn ComparisonSummary<OrdF64>> = match algorithm {
            Algorithm::Gk => Box::new(GkSummary::new(eps)),
            Algorithm::GkGreedy => Box::new(GreedyGk::new(eps)),
            Algorithm::Mrl { expected_n } => Box::new(MrlSummary::new(eps, expected_n)),
            Algorithm::Kll { seed } => {
                Box::new(KllSketch::with_seed(((2.0 / eps) as usize).max(8), seed))
            }
            Algorithm::KllSampled { seed } => {
                Box::new(SampledKll::with_seed(((2.0 / eps) as usize).max(8), seed))
            }
            Algorithm::Reservoir { seed } => Box::new(ReservoirSummary::with_seed(eps, 0.01, seed)),
            Algorithm::CkmsBiased => Box::new(CkmsSummary::new(eps)),
        };
        QuantileSketch { inner, algorithm }
    }

    /// Feeds one measurement.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn observe(&mut self, value: f64) {
        self.inner.insert(OrdF64::new(value));
    }

    /// The ϕ-quantile estimate, `None` before any observation.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        self.inner.quantile(phi).map(f64::from)
    }

    /// The item of (approximate) rank `r`.
    pub fn rank(&self, r: u64) -> Option<f64> {
        self.inner.query_rank(r).map(f64::from)
    }

    /// Measurements observed so far.
    pub fn count(&self) -> u64 {
        self.inner.items_processed()
    }

    /// Items currently stored.
    pub fn stored(&self) -> usize {
        self.inner.stored_count()
    }

    /// The algorithm behind this sketch.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mut s: QuantileSketch, n: u64) -> QuantileSketch {
        // Deterministic scattered order.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.observe((x % n) as f64);
        }
        s
    }

    #[test]
    fn every_algorithm_answers_sane_medians() {
        let n = 20_000u64;
        for alg in [
            Algorithm::Gk,
            Algorithm::GkGreedy,
            Algorithm::Mrl { expected_n: n },
            Algorithm::Kll { seed: 1 },
            Algorithm::KllSampled { seed: 2 },
            Algorithm::Reservoir { seed: 3 },
            Algorithm::CkmsBiased,
        ] {
            let s = drive(QuantileSketch::new(alg, 0.01), n);
            assert_eq!(s.count(), n, "{alg:?}");
            let med = s.quantile(0.5).unwrap();
            // Values are ~uniform over [0, n); the median is ~n/2 and
            // randomized algorithms get extra slack.
            assert!(
                (med - n as f64 / 2.0).abs() < n as f64 * 0.05,
                "{alg:?}: median {med}"
            );
        }
    }

    #[test]
    fn deterministic_algorithms_store_less_than_the_reservoir() {
        let n = 50_000u64;
        let gk = drive(QuantileSketch::new(Algorithm::Gk, 0.01), n);
        let rs = drive(
            QuantileSketch::new(Algorithm::Reservoir { seed: 7 }, 0.01),
            n,
        );
        assert!(
            gk.stored() < rs.stored() / 10,
            "gk {} vs reservoir {}",
            gk.stored(),
            rs.stored()
        );
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::new(Algorithm::Gk, 0.1);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank(1), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_measurements_rejected() {
        let mut s = QuantileSketch::new(Algorithm::Gk, 0.1);
        s.observe(f64::NAN);
    }

    #[test]
    fn negative_and_extreme_values_work() {
        let mut s = QuantileSketch::new(Algorithm::GkGreedy, 0.05);
        for v in [-1e300, -5.0, 0.0, 5.0, 1e300] {
            s.observe(v);
        }
        assert_eq!(s.rank(1), Some(-1e300));
        assert_eq!(s.rank(5), Some(1e300));
    }
}
