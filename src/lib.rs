#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs — comparison-based quantile summaries, and the proof they can't
//! be smaller
//!
//! A faithful, executable reproduction of Cormode & Veselý, *A Tight
//! Lower Bound for Comparison-Based Quantile Summaries* (PODS 2020),
//! together with every system the paper discusses:
//!
//! | Piece | Crate | Paper role |
//! |-------|-------|------------|
//! | Adversarial construction, space-gap inequality, corollaries | [`core`] | the contribution (Sections 2–6) |
//! | Continuous ordered universe | [`universe`] | Section 2's model assumption |
//! | Order-statistic indexing | [`ostree`] | `rank/next/prev` machinery |
//! | Greenwald–Khanna (banded + greedy + capped) | [`gk`] | the matching upper bound \[6\] |
//! | Manku–Rajagopalan–Lindsay | [`mrl`] | prior deterministic bound \[14\] |
//! | Karnin–Lang–Liberty | [`kll`] | randomized counterpart \[11\] |
//! | Reservoir sampling | [`sampling`] | randomized baseline \[13, 15\] |
//! | q-digest | [`qdigest`] | the non-comparison-based contrast \[18\] |
//! | CKMS biased quantiles | [`ckms`] | Theorem 6.5's upper-bound side \[3\] |
//! | Workloads & reporting | [`streams`] | experiment harness support |
//! | Fault injection & verdicts | [`faults`] | "any summary" really means any (Theorem 2.2) |
//! | Sharded concurrent service | [`service`] | mergeable summaries \[1\] at serving scale |
//!
//! ## Quickstart
//!
//! Summarise a stream with GK, then watch the lower bound bite:
//!
//! ```
//! use cqs::prelude::*;
//!
//! // Upper bound: GK answers any quantile within ε·N.
//! let mut gk = GkSummary::new(0.01);
//! for x in 0..10_000u64 {
//!     gk.insert(x);
//! }
//! assert!(gk.quantile(0.25).unwrap().abs_diff(2_500) <= 100);
//!
//! // Lower bound: the adversary forces any comparison-based summary to
//! // hold Ω((1/ε)·log εN) items — run it against GK itself.
//! let eps = Eps::from_inverse(32);
//! let report = run_lower_bound(eps, 5, || GkSummary::<Item>::new(eps.value()));
//! assert!(report.equivalence_ok);
//! assert!(report.final_gap <= report.gap_ceiling); // GK stays correct…
//! assert!(report.max_stored as f64 >= report.theorem22_bound); // …and pays.
//! ```

pub mod sketch;

pub use cqs_ckms as ckms;
pub use cqs_core as core;
pub use cqs_faults as faults;
pub use cqs_gk as gk;
pub use cqs_kll as kll;
pub use cqs_mrl as mrl;
pub use cqs_ostree as ostree;
pub use cqs_qdigest as qdigest;
pub use cqs_sampling as sampling;
pub use cqs_service as service;
pub use cqs_streams as streams;
pub use cqs_universe as universe;
pub use cqs_window as window;

/// The most common imports in one place.
pub mod prelude {
    pub use cqs_ckms::{Bias, CkmsSummary};
    pub use cqs_core::{
        equi_depth_histogram, run_lower_bound, try_run_adversary, AdversaryBudget, AdversaryError,
        ComparisonSummary, Eps, Item, MaxSpaceTracker, MergeError, MergeableSummary, RankEstimator,
        RunVerdict,
    };
    pub use cqs_faults::{FaultKind, FaultPlan, FaultySummary};
    pub use cqs_gk::{CappedGk, GkSummary, GreedyGk};
    pub use cqs_kll::{KllSketch, SampledKll};
    pub use cqs_mrl::MrlSummary;
    pub use cqs_qdigest::{MergeMismatch, QDigest};
    pub use cqs_sampling::ReservoirSummary;
    pub use cqs_service::{
        parallel_ingest, QuantileRegistry, ServiceConfig, SummaryHandle, DEFAULT_PHI_GRID,
    };
    pub use cqs_streams::{workload, OrdF64, Workload};
    pub use cqs_universe::{generate_increasing, Interval};
    pub use cqs_window::SlidingWindowGk;
}
