#!/usr/bin/env bash
# The repo gate, in dependency order: style, model conformance, clippy,
# then tier-1 (build + tests). Everything runs offline — the workspace
# has zero external dependencies by design (see Cargo.toml).
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the release build (lint + tests only)
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> model-conformance lint (cargo run -p cqs-xtask -- lint)"
cargo run -p cqs-xtask -q -- lint

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> clippy not installed; skipping (install with: rustup component add clippy)"
fi

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1; includes tests/conformance.rs = the lint gate)"
cargo test -q

if [[ $fast -eq 0 ]]; then
    echo "==> perf baseline smoke (tiny configs; schema + speedup-line check)"
    cargo run --release -q -p cqs-bench --bin perf_baseline -- --smoke --out-dir target/bench-smoke
    cargo run --release -q -p cqs-bench --bin perf_baseline -- --verify target/bench-smoke
fi

echo "ci: all green"
