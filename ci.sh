#!/usr/bin/env bash
# The repo gate, in dependency order: style, model conformance, clippy,
# then tier-1 (build + tests). Everything runs offline — the workspace
# has zero external dependencies by design (see Cargo.toml).
#
#   ./ci.sh            # full gate
#   ./ci.sh --fast     # skip the release build (lint + tests only)
#   ./ci.sh --lint     # only fmt + the static-analysis lint gate
#   ./ci.sh --faults   # only the fault-matrix smoke (debug build)
#   ./ci.sh --recovery # only the crash/resume smoke (release build)
#   ./ci.sh --service  # only the sharded-service smoke (release build)
#   ./ci.sh --large-n  # only the large-N smoke (one N ≈ 1.34e8
#                      # interval-compressed cell, crash/resume;
#                      # ~2 cell runs of wall-clock — minutes)
set -euo pipefail
cd "$(dirname "$0")"

faults_smoke() {
    # Fault-injection smoke: the 8-cell matrix on GK at eps = 1/16,
    # k = 6 must map every injected fault to its documented verdict
    # (the binary exits nonzero on the first mismatch).
    cargo run "$@" -q -p cqs-cli --bin cqs-tool -- faults --inv-eps 16 --k 6
}

recovery_smoke() {
    # Crash/resume smoke: a sweep killed mid-run (the checkpoint layer
    # exits 86 after CQS_CRASH_AFTER_CELLS completed cells) and resumed
    # from its checkpoint must emit a CSV byte-identical to an
    # uninterrupted run — at every --jobs fan-out.
    local root=target/recovery-smoke
    rm -rf "$root"
    for j in 1 4; do
        CQS_RESULTS_DIR="$root/base-j$j" \
            cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
                --smoke --jobs "$j"
        # The crashed run: expect exactly exit code 86.
        local code=0
        CQS_CRASH_AFTER_CELLS=2 CQS_RESULTS_DIR="$root/crashed-j$j" \
            cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
                --smoke --jobs "$j" --resume "$root/ckpt-j$j" || code=$?
        if [[ $code -ne 86 ]]; then
            echo "recovery smoke: expected injected-crash exit 86, got $code" >&2
            exit 1
        fi
        # The resumed run completes from the checkpoint…
        env -u CQS_CRASH_AFTER_CELLS CQS_RESULTS_DIR="$root/crashed-j$j" \
            cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
                --smoke --jobs "$j" --resume "$root/ckpt-j$j"
        # …and its CSV is byte-for-byte the uninterrupted one.
        diff "$root/base-j$j/thm22_lower_bound_sweep.csv" \
             "$root/crashed-j$j/thm22_lower_bound_sweep.csv"
    done
    # Crash points must not matter either: jobs-4 resumed output matches
    # the jobs-1 baseline (determinism across fan-out AND crash/resume).
    diff "$root/base-j1/thm22_lower_bound_sweep.csv" \
         "$root/crashed-j4/thm22_lower_bound_sweep.csv"
    # Storage fault matrix from the CLI: every corruption family must be
    # rejected with its typed RestoreError (exit 0 = zero silent
    # restores).
    cargo run --release -q -p cqs-cli --bin cqs-tool -- recover
}

service_smoke() {
    # Sharded-service smoke: `cqs service` drives the concurrent
    # registry end to end (multi-key parallel ingest, background merge
    # worker, one-pass export) and runs the adversary-driven
    # error-composition differential inside the command — a rank answer
    # escaping the composed shards*eps*N budget exits 7. The exported
    # snapshot must be byte-identical across ingest thread counts (the
    # --jobs determinism contract, applied to ingest).
    local root=target/service-smoke
    rm -rf "$root"
    mkdir -p "$root"
    for t in 1 4; do
        cargo run --release -q -p cqs-cli --bin cqs-tool -- service \
            --n 20000 --shards 8 --threads "$t" \
            --export "$root/export-t$t.qsvc"
    done
    cmp "$root/export-t1.qsvc" "$root/export-t4.qsvc"
}

large_n_smoke() {
    # Billion-item representation smoke: the single interval-compressed
    # N ≈ 1.34e8 cell (ε = 1/1024, k = 17, StreamRepr::Implicit) run
    # uninterrupted, then crashed right after its checkpoint write
    # (exit 86) and resumed — the resumed CSV must be byte-identical.
    # This is the only CI leg that exercises the implicit representation
    # past the materialized treap's u32 per-item arena ceiling.
    local root=target/large-n-smoke
    rm -rf "$root"
    CQS_RESULTS_DIR="$root/base" \
        cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
            --large-n --smoke --jobs 1
    local code=0
    CQS_CRASH_AFTER_CELLS=1 CQS_RESULTS_DIR="$root/crashed" \
        cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
            --large-n --smoke --jobs 1 --resume "$root/ckpt" || code=$?
    if [[ $code -ne 86 ]]; then
        echo "large-n smoke: expected injected-crash exit 86, got $code" >&2
        exit 1
    fi
    # The resumed run reuses the persisted cell (no recompute) and must
    # emit the exact CSV the uninterrupted run produced.
    env -u CQS_CRASH_AFTER_CELLS CQS_RESULTS_DIR="$root/crashed" \
        cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- \
            --large-n --smoke --jobs 1 --resume "$root/ckpt"
    diff "$root/base/thm22_large_n_sweep.csv" \
         "$root/crashed/thm22_large_n_sweep.csv"
}

if [[ "${1:-}" == "--large-n" ]]; then
    echo "==> large-N smoke (thm22 --large-n --smoke, N ~ 1.34e8, crash/resume)"
    large_n_smoke
    echo "ci: large-n smoke green"
    exit 0
fi

if [[ "${1:-}" == "--lint" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
    echo "==> static-analysis lint (cargo run -p cqs-xtask -- lint)"
    cargo run -p cqs-xtask -q -- lint
    echo "ci: lint green"
    exit 0
fi

if [[ "${1:-}" == "--faults" ]]; then
    echo "==> fault-matrix smoke (cqs faults, gk, eps=1/16, k=6)"
    faults_smoke
    echo "ci: faults smoke green"
    exit 0
fi

if [[ "${1:-}" == "--service" ]]; then
    echo "==> sharded-service smoke (cqs service, threads 1 & 4, export byte-diff)"
    service_smoke
    echo "ci: service smoke green"
    exit 0
fi

if [[ "${1:-}" == "--recovery" ]]; then
    echo "==> crash/resume smoke (thm22 --smoke, crash after 2 cells, jobs 1 & 4)"
    recovery_smoke
    echo "ci: recovery smoke green"
    exit 0
fi

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> model-conformance lint (cargo run -p cqs-xtask -- lint)"
cargo run -p cqs-xtask -q -- lint

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> clippy not installed; skipping (install with: rustup component add clippy)"
fi

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1; includes tests/conformance.rs = the lint gate)"
cargo test -q

if [[ $fast -eq 0 ]]; then
    echo "==> perf baseline smoke (tiny configs; schema check; --jobs 1 vs --jobs 4)"
    for j in 1 4; do
        cargo run --release -q -p cqs-bench --bin perf_baseline -- \
            --smoke --jobs "$j" --out-dir "target/bench-smoke-j$j"
        cargo run --release -q -p cqs-bench --bin perf_baseline -- \
            --verify "target/bench-smoke-j$j"
    done
    # The batched tree walks must leave every measured outcome (gaps,
    # stored sizes, equivalence verdicts) identical under any fan-out:
    # diff the smoke artifacts with the timing fields stripped.
    for f in BENCH_adversary.json BENCH_summaries.json; do
        for j in 1 4; do
            sed -E 's/"(elapsed_ms|items_per_sec)": *[0-9.e+-]+,?//' \
                "target/bench-smoke-j$j/$f" > "target/bench-smoke-j$j/$f.det"
        done
        diff "target/bench-smoke-j1/$f.det" "target/bench-smoke-j4/$f.det"
    done

    echo "==> fault-matrix smoke (cqs faults, gk, eps=1/16, k=6)"
    faults_smoke --release

    echo "==> parallel-determinism smoke (thm22 --smoke, --jobs 1 vs --jobs 4)"
    # CQS_RESULTS_DIR redirects the CSV mirrors so the committed
    # results/ artifacts are never clobbered by a smoke grid.
    rm -rf target/sweep-smoke
    CQS_RESULTS_DIR=target/sweep-smoke/serial \
        cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- --smoke --jobs 1
    CQS_RESULTS_DIR=target/sweep-smoke/parallel \
        cargo run --release -q -p cqs-bench --bin thm22_lower_bound_sweep -- --smoke --jobs 4
    diff target/sweep-smoke/serial/thm22_lower_bound_sweep.csv \
         target/sweep-smoke/parallel/thm22_lower_bound_sweep.csv

    echo "==> crash/resume smoke (thm22 --smoke, crash after 2 cells, jobs 1 & 4)"
    recovery_smoke

    echo "==> sharded-service smoke (cqs service, threads 1 & 4, export byte-diff)"
    service_smoke
fi

echo "ci: all green"
