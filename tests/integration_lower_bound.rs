//! Cross-crate integration: the adversary (cqs-core) versus every
//! deterministic comparison-based summary in the workspace.

use cqs::core::adversary::run_adversary;
use cqs::prelude::*;

#[test]
fn gk_meets_bound_across_eps_and_k() {
    for inv in [16u64, 32, 64] {
        let eps = Eps::from_inverse(inv);
        for k in 3..=6u32 {
            let rep = run_lower_bound(eps, k, || GkSummary::<Item>::new(eps.value()));
            assert!(rep.equivalence_ok, "eps=1/{inv} k={k}");
            assert!(
                rep.final_gap <= rep.gap_ceiling,
                "eps=1/{inv} k={k}: GK gap {} over ceiling {}",
                rep.final_gap,
                rep.gap_ceiling
            );
            assert!(
                rep.max_stored as f64 >= rep.theorem22_bound,
                "eps=1/{inv} k={k}: space {} under bound {}",
                rep.max_stored,
                rep.theorem22_bound
            );
            assert_eq!(rep.claim1_violations, 0);
            assert_eq!(rep.lemma52_violations, 0);
        }
    }
}

#[test]
fn mrl_is_also_subject_to_the_construction() {
    // MRL is deterministic and comparison-based, so the construction
    // applies: indistinguishability must hold and the space bound must
    // be met whenever the gap stays within the correctness ceiling.
    let eps = Eps::from_inverse(32);
    let k = 6u32;
    let n = eps.stream_len(k);
    let out = run_adversary(eps, k, || MrlSummary::<Item>::new(eps.value(), n));
    assert!(
        out.equivalence_error.is_none(),
        "{:?}",
        out.equivalence_error
    );
    let rep = out.report();
    assert!(
        rep.final_gap > rep.gap_ceiling || rep.max_stored as f64 >= rep.theorem22_bound,
        "MRL dodged both horns: gap {} ceiling {} space {} bound {}",
        rep.final_gap,
        rep.gap_ceiling,
        rep.max_stored,
        rep.theorem22_bound
    );
}

#[test]
fn ckms_is_also_subject_to_the_construction() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 6, || CkmsSummary::<Item>::new(eps.value()));
    assert!(out.equivalence_error.is_none());
    let rep = out.report();
    assert!(rep.final_gap > rep.gap_ceiling || rep.max_stored as f64 >= rep.theorem22_bound);
}

#[test]
fn space_grows_linearly_in_inverse_eps_at_fixed_k() {
    let k = 6u32;
    let mut prev = 0usize;
    for inv in [16u64, 32, 64, 128] {
        let eps = Eps::from_inverse(inv);
        let rep = run_lower_bound(eps, k, || GkSummary::<Item>::new(eps.value()));
        assert!(
            rep.max_stored > prev,
            "space not increasing in 1/eps: {} after {}",
            rep.max_stored,
            prev
        );
        prev = rep.max_stored;
    }
}

#[test]
fn adversarial_stream_is_more_expensive_than_benign_for_gk() {
    // The lower bound's whole point: the adversarial order costs GK more
    // than sorted input of the same length at the same eps.
    let eps = Eps::from_inverse(64);
    let k = 7u32;
    let n = eps.stream_len(k);
    let rep = run_lower_bound(eps, k, || GkSummary::<Item>::new(eps.value()));

    let mut gk = GkSummary::new(eps.value());
    let mut peak = 0usize;
    for v in 0..n {
        gk.insert(v);
        peak = peak.max(gk.stored_count());
    }
    assert!(
        rep.max_stored > peak,
        "adversarial {} should exceed sorted {}",
        rep.max_stored,
        peak
    );
}

#[test]
fn fixed_seed_kll_faces_the_dichotomy() {
    let eps = Eps::from_inverse(32);
    for k in 4..=7u32 {
        let rep = run_lower_bound(eps, k, || KllSketch::<Item>::with_seed(128, 0xFACE));
        assert!(rep.equivalence_ok, "fixed-seed KLL must be deterministic");
        assert!(
            rep.final_gap > rep.gap_ceiling || rep.max_stored as f64 >= rep.theorem22_bound,
            "k={k}: KLL dodged both horns"
        );
    }
}
