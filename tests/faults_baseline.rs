//! Acceptance anchor: a zero-fault `FaultySummary<GkSummary>` run
//! through the guarded driver reproduces the committed
//! `BENCH_adversary.json` numbers for the (gk, 1/64, k = 8) cell
//! *exactly* — final gap, peak |I| and label depth. The wrapper and the
//! `try_run` driver add observability, not behaviour.

use cqs::prelude::*;
use cqs_bench::json::{parse, Json};
use cqs_core::Adversary;

const INV: u64 = 64;
const K: u32 = 8;

/// The committed baseline row for (gk, eps_inverse = 64, k = 8).
fn baseline_row() -> Json {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_adversary.json"))
        .expect("BENCH_adversary.json is committed at the workspace root");
    let doc = parse(&src).expect("baseline parses");
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    runs.iter()
        .find(|r| {
            r.get("target").and_then(Json::as_str) == Some("gk")
                && r.get("eps_inverse").and_then(Json::as_f64) == Some(INV as f64)
                && r.get("k").and_then(Json::as_f64) == Some(K as f64)
        })
        .expect("baseline has the (gk, 64, 8) cell")
        .clone()
}

fn field_u64(row: &Json, key: &str) -> u64 {
    row.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("baseline field {key} missing")) as u64
}

#[test]
fn zero_fault_gk_run_reproduces_the_committed_baseline() {
    let row = baseline_row();
    // Sanity-pin the committed numbers themselves, so a silent baseline
    // regeneration cannot weaken this test.
    assert_eq!(field_u64(&row, "n"), 16384);
    assert_eq!(field_u64(&row, "final_gap"), 498);
    assert_eq!(field_u64(&row, "max_stored"), 318);
    assert_eq!(field_u64(&row, "max_label_depth"), 14);

    let eps = Eps::from_inverse(INV);
    let mk = || FaultySummary::new(GkSummary::<Item>::new(eps.value()), FaultPlan::none());
    let out = Adversary::new(eps, mk(), mk())
        .try_run(K)
        .expect("zero-fault run completes");
    assert_eq!(out.verdict(), RunVerdict::Completed);

    let rep = out.report();
    assert_eq!(rep.n, field_u64(&row, "n"));
    assert_eq!(rep.final_gap, field_u64(&row, "final_gap"));
    assert_eq!(rep.max_stored as u64, field_u64(&row, "max_stored"));
    assert_eq!(
        rep.max_label_depth as u64,
        field_u64(&row, "max_label_depth")
    );
    assert!(rep.equivalence_ok);
}
