//! Batched-insert equivalence: the bulk hot paths added for throughput
//! (`OsTree::extend_sorted`, the GK one-pass sorted-run merge, and the
//! adversary's batched leaves) must be *observationally identical* to
//! the per-item paths they replace — same order-statistic answers, same
//! tuples, same audit trail, byte for byte.

use cqs::prelude::*;
use cqs_core::adversary::{Adversary, InsertMode};
use cqs_core::reference::ExactSummary;
use cqs_gk::{GkSummary, GreedyGk};
use cqs_ostree::OsTree;
use cqs_streams::{workload, Workload};

const SEED: u64 = 0xC0FFEE;

fn chunks_of(values: &[u64], chunk: usize) -> Vec<Vec<u64>> {
    values
        .chunks(chunk)
        .map(|c| {
            let mut run = c.to_vec();
            run.sort_unstable();
            run
        })
        .collect()
}

#[test]
fn ostree_extend_sorted_equivalent_to_per_item_insert() {
    for which in [
        Workload::Sorted,
        Workload::Shuffled,
        Workload::Sawtooth,
        Workload::Zipf,
    ] {
        let values = workload(which, 4_000, SEED).expect("workload");
        for chunk in [1usize, 7, 64, 1000] {
            let mut bulk = OsTree::with_seed(9);
            let mut single = OsTree::with_seed(9);
            for run in chunks_of(&values, chunk) {
                bulk.extend_sorted(run.iter().copied());
                for &x in &run {
                    single.insert(x);
                }
            }
            assert_eq!(bulk.len(), single.len(), "{which:?}/{chunk}");
            let a: Vec<u64> = bulk.iter().copied().collect();
            let b: Vec<u64> = single.iter().copied().collect();
            assert_eq!(a, b, "{which:?}/{chunk}: in-order traversal diverged");
            let probes = [0u64, 1, 5, 100, 2_000, 3_999, 4_000, u64::MAX];
            for q in probes {
                assert_eq!(bulk.rank(&q), single.rank(&q), "{which:?}/{chunk} rank {q}");
                assert_eq!(bulk.count_le(&q), single.count_le(&q));
                assert_eq!(bulk.successor(&q), single.successor(&q));
                assert_eq!(bulk.predecessor(&q), single.predecessor(&q));
            }
            for r in (1..=bulk.len()).step_by(97) {
                assert_eq!(
                    bulk.select(r),
                    single.select(r),
                    "{which:?}/{chunk} select {r}"
                );
            }
        }
    }
}

/// Drives one summary pair through the same stream, one via
/// `insert_sorted_run` over sorted chunks and one per item, asserting
/// tuple-for-tuple identical state and identical space peaks.
fn assert_gk_batch_equivalent<S, F>(label: &str, make: F)
where
    S: ComparisonSummary<u64>,
    F: Fn() -> S,
{
    for which in [
        Workload::Sorted,
        Workload::Shuffled,
        Workload::Sawtooth,
        Workload::Zipf,
    ] {
        let values = workload(which, 6_000, SEED).expect("workload");
        for chunk in [3usize, 50, 512] {
            let mut batched = make();
            let mut sequential = make();
            for run in chunks_of(&values, chunk) {
                let peak_batched = batched.insert_sorted_run(&run);
                let mut peak_seq = 0usize;
                for &x in &run {
                    sequential.insert(x);
                    peak_seq = peak_seq.max(sequential.stored_count());
                }
                assert_eq!(
                    peak_batched, peak_seq,
                    "{label}/{which:?}/{chunk}: intra-run |I| peak diverged"
                );
            }
            assert_eq!(batched.items_processed(), sequential.items_processed());
            assert_eq!(
                batched.stored_count(),
                sequential.stored_count(),
                "{label}/{which:?}/{chunk}: final |I| diverged"
            );
            assert_eq!(
                batched.item_array(),
                sequential.item_array(),
                "{label}/{which:?}/{chunk}: item arrays diverged"
            );
        }
    }
}

#[test]
fn gk_banded_batch_insert_matches_sequential_tuples() {
    assert_gk_batch_equivalent("gk", || GkSummary::<u64>::new(0.01));
    // Tuple-level identity, not just item-level: (v, g, Δ) all match.
    let values = workload(Workload::Shuffled, 5_000, SEED).expect("workload");
    let mut batched = GkSummary::<u64>::new(0.02);
    let mut sequential = GkSummary::<u64>::new(0.02);
    for run in chunks_of(&values, 37) {
        batched.insert_sorted_run(&run);
        for &x in &run {
            sequential.insert(x);
        }
    }
    let (a, b) = (batched.tuples(), sequential.tuples());
    assert_eq!(a.len(), b.len());
    for (i, (ta, tb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(ta.v, tb.v, "tuple {i} value");
        assert_eq!(ta.g, tb.g, "tuple {i} g");
        assert_eq!(ta.delta, tb.delta, "tuple {i} delta");
    }
}

#[test]
fn gk_greedy_batch_insert_matches_sequential_tuples() {
    assert_gk_batch_equivalent("gk-greedy", || GreedyGk::<u64>::new(0.01));
    let values = workload(Workload::Sawtooth, 5_000, SEED).expect("workload");
    let mut batched = GreedyGk::<u64>::new(0.02);
    let mut sequential = GreedyGk::<u64>::new(0.02);
    for run in chunks_of(&values, 41) {
        batched.insert_sorted_run(&run);
        for &x in &run {
            sequential.insert(x);
        }
    }
    let (a, b) = (batched.tuples(), sequential.tuples());
    assert_eq!(a.len(), b.len());
    for (i, (ta, tb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(ta.v, tb.v, "tuple {i} value");
        assert_eq!(ta.g, tb.g, "tuple {i} g");
        assert_eq!(ta.delta, tb.delta, "tuple {i} delta");
    }
}

#[test]
fn gk_batch_insert_handles_duplicate_values() {
    // Equal-item groups are the subtle case: sequential inserts place
    // each new equal item *before* the previous ones.
    let mut values = Vec::new();
    for i in 0..2_000u64 {
        values.push(i % 200 + 1);
    }
    let mut batched = GkSummary::<u64>::new(0.05);
    let mut sequential = GkSummary::<u64>::new(0.05);
    for run in chunks_of(&values, 23) {
        batched.insert_sorted_run(&run);
        for &x in &run {
            sequential.insert(x);
        }
    }
    let (a, b) = (batched.tuples(), sequential.tuples());
    assert_eq!(a.len(), b.len());
    for (i, (ta, tb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            (&ta.v, ta.g, ta.delta),
            (&tb.v, tb.g, tb.delta),
            "tuple {i} diverged on duplicate-heavy stream"
        );
    }
}

/// The adversary's batched leaves must leave *no trace* in the audits:
/// every recursion-tree node's record — gaps, S_k, Claim 1, Lemma 5.2,
/// the space-gap RHS — is byte-identical to the per-item run, as is the
/// flat report.
fn assert_adversary_modes_agree<S, F>(label: &str, eps_inv: u64, k: u32, make: F)
where
    S: ComparisonSummary<Item>,
    F: Fn() -> S,
{
    let eps = Eps::from_inverse(eps_inv);
    let batched = Adversary::new(eps, make(), make())
        .with_insert_mode(InsertMode::Batched)
        .run(k);
    let per_item = Adversary::new(eps, make(), make())
        .with_insert_mode(InsertMode::PerItem)
        .run(k);
    assert_eq!(
        format!("{:?}", batched.audits),
        format!("{:?}", per_item.audits),
        "{label}: audit trails diverged between insert modes"
    );
    let (rb, rp) = (batched.report(), per_item.report());
    assert_eq!(
        format!("{rb:?}"),
        format!("{rp:?}"),
        "{label}: reports diverged"
    );
    assert!(rb.equivalence_ok, "{label}: batched run broke equivalence");
}

#[test]
fn adversary_audits_identical_across_insert_modes() {
    assert_adversary_modes_agree("exact", 16, 4, ExactSummary::<Item>::new);
    assert_adversary_modes_agree("gk", 16, 4, || GkSummary::<Item>::new(1.0 / 16.0));
    assert_adversary_modes_agree("gk", 8, 5, || GkSummary::<Item>::new(1.0 / 8.0));
    assert_adversary_modes_agree("gk-greedy", 16, 4, || GreedyGk::<Item>::new(1.0 / 16.0));
}
