//! Model conformance (Definition 2.1) across all summaries: a
//! comparison-based deterministic summary fed two order-isomorphic
//! streams must make identical decisions — stored positions, counts and
//! query indices must correspond under the isomorphism.

use cqs::prelude::*;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Feeds `xs` and the order-isomorphic image `f(x) = 5x + 3` to two
/// fresh copies and checks stored correspondence plus query agreement.
fn check_isomorphism<S: ComparisonSummary<u64>, F: Fn() -> S>(make: F, name: &str) {
    let xs = shuffled(20_000, 0xA5);
    let mut a = make();
    let mut b = make();
    for &x in &xs {
        a.insert(x);
        b.insert(5 * x + 3);
        assert_eq!(
            a.stored_count(),
            b.stored_count(),
            "{name}: |I| diverged mid-stream"
        );
    }
    let ia = a.item_array();
    let ib = b.item_array();
    assert_eq!(ia.len(), ib.len(), "{name}: final |I| differs");
    for (x, y) in ia.iter().zip(ib.iter()) {
        assert_eq!(5 * x + 3, *y, "{name}: stored items not isomorphic");
    }
    for r in [1u64, 57, 5_000, 10_000, 19_999, 20_000] {
        let qa = a.query_rank(r).unwrap();
        let qb = b.query_rank(r).unwrap();
        assert_eq!(5 * qa + 3, qb, "{name}: query_rank({r}) not isomorphic");
    }
}

#[test]
fn gk_banded_is_comparison_based() {
    check_isomorphism(|| GkSummary::new(0.01), "gk");
}

#[test]
fn gk_greedy_is_comparison_based() {
    check_isomorphism(|| GreedyGk::new(0.01), "gk-greedy");
}

#[test]
fn gk_capped_is_comparison_based() {
    check_isomorphism(|| CappedGk::new(0.01, 16), "gk-capped");
}

#[test]
fn mrl_is_comparison_based() {
    check_isomorphism(|| MrlSummary::new(0.01, 20_000), "mrl");
}

#[test]
fn kll_fixed_seed_is_comparison_based() {
    check_isomorphism(|| KllSketch::with_seed(128, 42), "kll");
}

#[test]
fn ckms_is_comparison_based() {
    check_isomorphism(|| CkmsSummary::new(0.01), "ckms");
}

#[test]
fn reservoir_fixed_seed_is_comparison_based() {
    check_isomorphism(
        || ReservoirSummary::with_capacity(500, 0.05, 7),
        "reservoir",
    );
}

#[test]
fn item_arrays_are_sorted_for_all_summaries() {
    let xs = shuffled(5_000, 0x77);
    macro_rules! check_sorted {
        ($make:expr, $name:expr) => {{
            let mut s = $make;
            for &x in &xs {
                s.insert(x);
            }
            let arr = s.item_array();
            assert!(
                arr.windows(2).all(|w| w[0] <= w[1]),
                "{}: item array unsorted",
                $name
            );
            assert!(
                arr.iter().all(|v| xs.contains(v)),
                "{}: item array contains non-stream items",
                $name
            );
        }};
    }
    check_sorted!(GkSummary::new(0.02), "gk");
    check_sorted!(GreedyGk::new(0.02), "gk-greedy");
    check_sorted!(MrlSummary::new(0.02, 5_000), "mrl");
    check_sorted!(KllSketch::with_seed(64, 1), "kll");
    check_sorted!(CkmsSummary::new(0.02), "ckms");
    check_sorted!(ReservoirSummary::with_capacity(100, 0.05, 2), "reservoir");
}

#[test]
fn queries_return_stored_items_only() {
    // Definition 2.1(iv): answers must come from the item array.
    let xs = shuffled(10_000, 0x99);
    macro_rules! check_answers {
        ($make:expr, $name:expr) => {{
            let mut s = $make;
            for &x in &xs {
                s.insert(x);
            }
            let arr = s.item_array();
            for r in (1..=10_000u64).step_by(919) {
                let ans = s.query_rank(r).unwrap();
                assert!(arr.contains(&ans), "{}: answer {} not stored", $name, ans);
            }
        }};
    }
    check_answers!(GkSummary::new(0.02), "gk");
    check_answers!(GreedyGk::new(0.02), "gk-greedy");
    check_answers!(MrlSummary::new(0.02, 10_000), "mrl");
    check_answers!(KllSketch::with_seed(64, 3), "kll");
    check_answers!(CkmsSummary::new(0.02), "ckms");
    check_answers!(ReservoirSummary::with_capacity(200, 0.05, 4), "reservoir");
}
