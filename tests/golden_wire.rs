//! Golden-file pins for the `cqs-snapshot` wire format.
//!
//! The committed `tests/golden/*.cqss` fixtures are byte-for-byte
//! images of small deterministic snapshots. These tests fail on ANY
//! encoding drift — field order, framing, endianness, CRC polynomial —
//! because an incompatible writer silently strands every checkpoint a
//! user has on disk. A deliberate format change must bump
//! `cqs_snapshot::VERSION` and re-bless with
//! `UPDATE_GOLDEN=1 cargo test --test golden_wire`.

use cqs::prelude::*;
use cqs_snapshot::{SnapshotRead, SnapshotWrite, MAGIC, VERSION};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}.cqss"))
}

/// Compares `bytes` against the committed fixture, blessing it instead
/// when `UPDATE_GOLDEN=1` is set.
fn assert_matches_golden(name: &str, bytes: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, bytes).expect("write golden");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}) — run UPDATE_GOLDEN=1 cargo test --test golden_wire",
            path.display()
        )
    });
    assert_eq!(
        bytes,
        golden.as_slice(),
        "{name}: wire bytes drifted from the committed fixture; a \
         deliberate format change must bump cqs_snapshot::VERSION and \
         re-bless with UPDATE_GOLDEN=1 cargo test --test golden_wire"
    );
}

/// The fixture streams: small, deterministic, and chosen to exercise
/// non-trivial compression inside each summary.
fn feed<S: ComparisonSummary<u64>>(mut s: S) -> S {
    // A fixed permutation of 1..=64 (bit-reversal order) — enough to
    // trigger merges/compression at eps = 0.1 without bloating the
    // committed fixture.
    for i in 0..64u64 {
        let v = (i.reverse_bits() >> 58) + 1;
        s.insert(v);
    }
    s
}

#[test]
fn gk_wire_bytes_are_stable() {
    assert_matches_golden(
        "gk_v1",
        &feed(GkSummary::<u64>::new(0.1)).to_snapshot_bytes(),
    );
}

#[test]
fn greedy_gk_wire_bytes_are_stable() {
    assert_matches_golden(
        "gk_greedy_v1",
        &feed(GreedyGk::<u64>::new(0.1)).to_snapshot_bytes(),
    );
}

#[test]
fn mrl_wire_bytes_are_stable() {
    assert_matches_golden(
        "mrl_v1",
        &feed(MrlSummary::<u64>::new(0.1, 64)).to_snapshot_bytes(),
    );
}

#[test]
fn ckms_wire_bytes_are_stable() {
    assert_matches_golden(
        "ckms_v1",
        &feed(CkmsSummary::<u64>::new(0.1)).to_snapshot_bytes(),
    );
}

#[test]
fn golden_fixtures_still_restore() {
    // The committed images must remain readable by the current build —
    // the compatibility promise the fixtures exist to enforce.
    let gk = GkSummary::<u64>::from_snapshot_bytes(
        &std::fs::read(golden_path("gk_v1")).expect("gk_v1 fixture"),
    )
    .expect("gk_v1 must restore");
    assert_eq!(gk.items_processed(), 64);
    assert_eq!(
        gk.item_array(),
        feed(GkSummary::<u64>::new(0.1)).item_array()
    );

    let mrl = MrlSummary::<u64>::from_snapshot_bytes(
        &std::fs::read(golden_path("mrl_v1")).expect("mrl_v1 fixture"),
    )
    .expect("mrl_v1 must restore");
    assert_eq!(mrl.items_processed(), 64);
}

#[test]
fn golden_fixtures_carry_the_current_header() {
    // Every fixture opens with the magic and the version this build
    // writes; a bumped VERSION with stale fixtures fails here first
    // with a clearer message than a byte-diff.
    for name in ["gk_v1", "gk_greedy_v1", "mrl_v1", "ckms_v1"] {
        let bytes = std::fs::read(golden_path(name)).expect("fixture");
        assert_eq!(&bytes[..4], &MAGIC, "{name}: magic");
        let ver = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(ver, VERSION, "{name}: header version");
    }
}
