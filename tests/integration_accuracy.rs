//! Cross-crate accuracy: every summary versus exact ground truth on the
//! full workload suite, with budgets appropriate to each guarantee.

use cqs::prelude::*;

fn max_rank_error<S: ComparisonSummary<u64>>(s: &S, sorted: &[u64], grid: usize) -> u64 {
    let n = sorted.len() as u64;
    let mut worst = 0u64;
    for j in 0..=grid as u64 {
        let r = (1 + j * (n - 1) / grid as u64).clamp(1, n);
        let ans = s.query_rank(r).unwrap();
        let lo = sorted.partition_point(|&x| x < ans) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= ans) as u64;
        let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
        worst = worst.max(err);
    }
    worst
}

fn run_workload(w: Workload, n: u64) -> (Vec<u64>, Vec<u64>) {
    let vals = workload(w, n, 0xC0DE).expect("non-empty");
    let mut sorted = vals.clone();
    sorted.sort_unstable();
    (vals, sorted)
}

#[test]
fn deterministic_summaries_hold_eps_on_every_workload() {
    let n = 30_000u64;
    let eps = 0.01;
    let budget = (eps * n as f64) as u64;
    for w in [
        Workload::Sorted,
        Workload::Reverse,
        Workload::Shuffled,
        Workload::Zipf,
        Workload::Clustered,
        Workload::Sawtooth,
    ] {
        let (vals, sorted) = run_workload(w, n);

        let mut gk = GkSummary::new(eps);
        let mut greedy = GreedyGk::new(eps);
        let mut mrl = MrlSummary::new(eps, n);
        let mut ckms = CkmsSummary::new(eps);
        for &v in &vals {
            gk.insert(v);
            greedy.insert(v);
            mrl.insert(v);
            ckms.insert(v);
        }
        assert!(
            max_rank_error(&gk, &sorted, 100) <= budget,
            "gk over budget on {}",
            w.name()
        );
        assert!(
            max_rank_error(&greedy, &sorted, 100) <= budget,
            "gk-greedy over budget on {}",
            w.name()
        );
        assert!(
            max_rank_error(&mrl, &sorted, 100) <= budget,
            "mrl over budget on {}",
            w.name()
        );
        assert!(
            max_rank_error(&ckms, &sorted, 100) <= budget,
            "ckms over budget on {}",
            w.name()
        );
    }
}

#[test]
fn randomized_summaries_hold_relaxed_budget() {
    // KLL and the reservoir have probabilistic guarantees; with fixed
    // seeds they are regression tests at 3x the deterministic budget.
    let n = 30_000u64;
    let eps = 0.01;
    let budget = 3 * (eps * n as f64) as u64;
    for w in [Workload::Shuffled, Workload::Zipf] {
        let (vals, sorted) = run_workload(w, n);
        let mut kll = KllSketch::with_seed(256, 5);
        let mut rs = ReservoirSummary::with_seed(eps, 0.01, 6);
        for &v in &vals {
            kll.insert(v);
            rs.insert(v);
        }
        assert!(
            max_rank_error(&kll, &sorted, 100) <= budget,
            "kll on {}",
            w.name()
        );
        assert!(
            max_rank_error(&rs, &sorted, 100) <= budget,
            "reservoir on {}",
            w.name()
        );
    }
}

#[test]
fn qdigest_holds_eps_on_integer_workloads() {
    let n = 30_000u64;
    let eps = 0.01;
    let (vals, sorted) = run_workload(Workload::Shuffled, n);
    let log_u = 64 - (n + 2).leading_zeros();
    let mut qd = QDigest::new(log_u, eps);
    for &v in &vals {
        qd.insert(v);
    }
    let budget = (2.0 * eps * n as f64) as u64;
    for j in 1..=50u64 {
        let r = j * n / 50;
        let ans = qd.quantile(r as f64 / n as f64);
        let lo = sorted.partition_point(|&x| x < ans) as u64 + 1;
        let hi = sorted.partition_point(|&x| x <= ans) as u64;
        let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
        assert!(err <= budget, "qdigest rank {r}: err {err}");
    }
}

#[test]
fn space_ordering_matches_theory_on_shuffled_data() {
    // GK ≲ CKMS ≲ MRL ≪ reservoir at small eps, and all ≪ N.
    let n = 50_000u64;
    let eps = 0.005;
    let (vals, _) = run_workload(Workload::Shuffled, n);

    let mut gk = GkSummary::new(eps);
    let mut mrl = MrlSummary::new(eps, n);
    for &v in &vals {
        gk.insert(v);
        mrl.insert(v);
    }
    let rs = ReservoirSummary::<u64>::with_seed(eps, 0.01, 1);

    assert!(
        gk.stored_count() < mrl.stored_count(),
        "gk {} !< mrl {}",
        gk.stored_count(),
        mrl.stored_count()
    );
    assert!(
        mrl.stored_count() < rs.capacity(),
        "mrl {} !< reservoir capacity {}",
        mrl.stored_count(),
        rs.capacity()
    );
    assert!((gk.stored_count() as u64) < n / 20);
}
