//! Differential harness: a [`FaultySummary`] carrying the *empty* fault
//! plan must be observationally identical to the bare summary it wraps
//! — same audit trail, same report, same stored item arrays, same
//! stream bookkeeping — across GK, greedy GK and MRL at ε = 1/16, 1/32
//! and 1/64. This is what makes the fault matrix trustworthy: any
//! verdict difference under a non-empty plan is caused by the injected
//! fault, not by the wrapper.

use cqs::prelude::*;
use cqs_core::Adversary;

const K: u32 = 4;

fn assert_transparent<S, F>(name: &str, inv: u64, make: F)
where
    S: ComparisonSummary<Item>,
    F: Fn() -> S,
{
    let eps = Eps::from_inverse(inv);

    let bare = Adversary::new(eps, make(), make()).run(K);
    let wrapped = Adversary::new(
        eps,
        FaultySummary::new(make(), FaultPlan::none()),
        FaultySummary::new(make(), FaultPlan::none()),
    )
    .try_run(K)
    .unwrap_or_else(|e| panic!("{name} 1/{inv}: zero-fault run errored: {e}"));

    assert_eq!(wrapped.verdict(), RunVerdict::Completed, "{name} 1/{inv}");

    // Audit trails (per-node gaps, Claim 1 / Lemma 5.2 flags) agree.
    assert_eq!(bare.audits, wrapped.audits, "{name} 1/{inv}: audits");

    // Flat reports agree (the wrapper forwards `name`, so even the
    // summary_name field matches).
    assert_eq!(bare.report(), wrapped.report(), "{name} 1/{inv}: report");

    // Stream bookkeeping agrees.
    assert_eq!(bare.pi.len(), wrapped.pi.len(), "{name} 1/{inv}: |π|");
    assert_eq!(bare.rho.len(), wrapped.rho.len(), "{name} 1/{inv}: |ϱ|");
    assert_eq!(
        bare.pi.max_label_depth(),
        wrapped.pi.max_label_depth(),
        "{name} 1/{inv}: label depth"
    );

    // The summaries hold bit-identical item arrays on both streams.
    assert_eq!(
        bare.pi.summary.item_array(),
        wrapped.pi.summary.item_array(),
        "{name} 1/{inv}: π item array"
    );
    assert_eq!(
        bare.rho.summary.item_array(),
        wrapped.rho.summary.item_array(),
        "{name} 1/{inv}: ϱ item array"
    );
    assert_eq!(
        bare.pi.summary.max_stored(),
        wrapped.pi.summary.max_stored(),
        "{name} 1/{inv}: max |I|"
    );

    // The wrapper saw every item and invented none.
    assert_eq!(wrapped.pi.summary.inner().steps_fed(), eps.stream_len(K));
    assert_eq!(wrapped.pi.summary.inner().dropped(), 0);
    assert!(!wrapped.pi.summary.inner().is_poisoned());
}

#[test]
fn faulty_wrapper_is_transparent_over_gk() {
    for inv in [16u64, 32, 64] {
        let eps = Eps::from_inverse(inv);
        assert_transparent("gk", inv, move || GkSummary::<Item>::new(eps.value()));
    }
}

#[test]
fn faulty_wrapper_is_transparent_over_greedy_gk() {
    for inv in [16u64, 32, 64] {
        let eps = Eps::from_inverse(inv);
        assert_transparent("gk-greedy", inv, move || GreedyGk::<Item>::new(eps.value()));
    }
}

#[test]
fn faulty_wrapper_is_transparent_over_mrl() {
    for inv in [16u64, 32, 64] {
        let eps = Eps::from_inverse(inv);
        let n = eps.stream_len(K);
        assert_transparent("mrl", inv, move || MrlSummary::<Item>::new(eps.value(), n));
    }
}
