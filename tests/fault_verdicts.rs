//! Verdict taxonomy: every `cqs-faults` fault kind, driven through the
//! guarded adversary driver, must land on its documented [`RunVerdict`]
//! — no raw panic ever escapes `try_run`, and aborted runs salvage the
//! audit prefix the construction had completed (the Lemma 5.2 evidence
//! survives the crash).

use cqs::prelude::*;
use cqs_core::adversary::NodeAudit;
use cqs_core::Adversary;

const EPS_INV: u64 = 16;
const K: u32 = 5;

fn eps() -> Eps {
    Eps::from_inverse(EPS_INV)
}

fn gk() -> GkSummary<Item> {
    GkSummary::new(eps().value())
}

/// Runs the guarded driver against GK wrapped with `plan` (both copies
/// get a clone, as the CLI matrix does).
fn try_run_with(
    plan: &FaultPlan,
    budget: AdversaryBudget,
) -> Result<cqs_core::AdversaryOutcome<FaultySummary<GkSummary<Item>>>, AdversaryError> {
    Adversary::new(
        eps(),
        FaultySummary::new(gk(), plan.clone()),
        FaultySummary::new(gk(), plan.clone()),
    )
    .with_budget(budget)
    .try_run(K)
}

/// The audit trail of a clean full-depth run — the reference the
/// salvaged prefixes are compared against.
fn full_run_audits() -> Vec<NodeAudit> {
    Adversary::new(eps(), gk(), gk()).run(K).audits
}

#[test]
fn empty_plan_completes() {
    let out = try_run_with(&FaultPlan::none(), AdversaryBudget::default()).unwrap();
    assert_eq!(out.verdict(), RunVerdict::Completed);
    assert!(out.equivalence_error.is_none());
    let probe = out.rank_probe.as_ref().expect("probe ran");
    assert!(probe.max_rank_error <= probe.rank_budget);
}

#[test]
fn panic_on_insert_yields_summary_panicked_with_partial_report() {
    let n = eps().stream_len(K);
    let at = n / 2;
    let plan = FaultPlan::none().inject(at, FaultKind::PanicOnInsert);
    let err = try_run_with(&plan, AdversaryBudget::default()).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::SummaryPanicked);
    match &err {
        AdversaryError::SummaryPanicked {
            step,
            during,
            partial,
            ..
        } => {
            assert_eq!(*step, at, "panic surfaced at the armed step");
            assert_eq!(*during, "insert");
            // A panic at step N leaves exactly N − 1 verified steps.
            assert_eq!(partial.items_fed, at - 1);
            // The salvaged audits are a verbatim prefix of the clean run.
            let full = full_run_audits();
            assert!(partial.audits.len() < full.len());
            assert_eq!(partial.audits[..], full[..partial.audits.len()]);
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn panic_on_query_yields_summary_panicked_during_query() {
    let n = eps().stream_len(K);
    let plan = FaultPlan::none().inject(n / 2, FaultKind::PanicOnQuery);
    let err = try_run_with(&plan, AdversaryBudget::default()).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::SummaryPanicked);
    match &err {
        AdversaryError::SummaryPanicked {
            during, partial, ..
        } => {
            assert_eq!(*during, "query_rank");
            // The construction itself finished: the whole stream was fed
            // before the final probe tripped the fault.
            assert_eq!(partial.items_fed, n);
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn rank_slack_yields_summary_incorrect() {
    let n = eps().stream_len(K);
    let slack = 3 * eps().rank_budget(n) + 1;
    let plan = FaultPlan::none().inject(n / 2, FaultKind::RankSlack(slack));
    // Model-conforming but inaccurate: the run finishes, the verdict
    // condemns it.
    let out = try_run_with(&plan, AdversaryBudget::default()).unwrap();
    assert_eq!(out.verdict(), RunVerdict::SummaryIncorrect);
    let probe = out.rank_probe.as_ref().expect("probe ran");
    assert!(
        probe.max_rank_error > probe.rank_budget,
        "slack {slack} should exceed the εN budget {}",
        probe.rank_budget
    );
}

#[test]
fn non_monotone_rank_yields_model_violation() {
    let n = eps().stream_len(K);
    let plan = FaultPlan::none().inject(n / 2, FaultKind::NonMonotoneRank);
    let err = try_run_with(&plan, AdversaryBudget::default()).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::ModelViolation);
}

#[test]
fn value_peek_yields_model_violation() {
    let n = eps().stream_len(K);
    let plan = FaultPlan::seeded(0xFA17).inject(n / 4, FaultKind::ValuePeek);
    let err = try_run_with(&plan, AdversaryBudget::default()).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::ModelViolation);
}

#[test]
fn understate_space_yields_model_violation() {
    let n = eps().stream_len(K);
    let plan = FaultPlan::none().inject(n / 2, FaultKind::UnderstateSpace(5));
    let err = try_run_with(&plan, AdversaryBudget::default()).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::ModelViolation);
    match &err {
        AdversaryError::ModelViolation { detail, .. } => {
            assert!(detail.contains("understates"), "detail: {detail}");
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn budget_exhausted_preserves_the_lemma52_audit_prefix() {
    let n = eps().stream_len(K);
    let budget = AdversaryBudget {
        max_steps: Some(n / 2),
        ..AdversaryBudget::default()
    };
    let err = try_run_with(&FaultPlan::none(), budget).unwrap_err();
    assert_eq!(err.verdict(), RunVerdict::BudgetExhausted);
    let partial = err.partial().expect("budget aborts salvage a partial run");
    assert!(partial.items_fed <= n / 2);
    assert!(!partial.audits.is_empty(), "some subtrees completed");
    // The prefix is verbatim from the clean run, and its Lemma 5.2
    // evidence is intact.
    let full = full_run_audits();
    assert_eq!(partial.audits[..], full[..partial.audits.len()]);
    assert_eq!(partial.lemma52_violations(), 0);
}

#[test]
fn every_fault_kind_maps_to_a_documented_verdict_string() {
    // The CLI leans on these names; keep them stable.
    assert_eq!(RunVerdict::Completed.as_str(), "completed");
    assert_eq!(RunVerdict::SummaryIncorrect.as_str(), "summary-incorrect");
    assert_eq!(RunVerdict::ModelViolation.as_str(), "model-violation");
    assert_eq!(RunVerdict::SummaryPanicked.as_str(), "summary-panicked");
    assert_eq!(RunVerdict::BudgetExhausted.as_str(), "budget-exhausted");
}
