//! Tier-1 model-conformance gate.
//!
//! Runs the full cqs-xtask lint engine over the workspace as part of
//! plain `cargo test`: the per-file lexical rules *and* the whole-
//! workspace call-graph analyses (see DESIGN.md, "Static analysis
//! pipeline") hold for every `.rs` file in the tree, or this test — and
//! therefore tier-1 — fails. Equivalent to
//! `cargo run -p cqs-xtask -- lint` exiting 0.

use std::path::PathBuf;

use cqs_xtask::lint::analysis::CertStatus;
use cqs_xtask::lint::baseline::Baseline;

fn workspace_report() -> cqs_xtask::LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut report = cqs_xtask::run_workspace(&root).expect("workspace walk failed");
    if let Some(baseline) = Baseline::load(&root).expect("lint-baseline.json unreadable") {
        baseline.apply(&mut report);
    }
    report
}

#[test]
fn workspace_conforms_to_the_comparison_model() {
    let report = workspace_report();
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — layout changed?",
        report.files_scanned
    );
    let errors: Vec<String> = report
        .errors()
        .filter(|d| !d.baselined)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "model-conformance violations (fix them, add a documented \
         `// cqs-lint: allow(<rule>)`, or refresh lint-baseline.json via \
         `cargo run -p cqs-xtask -- lint --update-baseline`):\n{}",
        errors.join("\n")
    );
    // Warnings are surfaced in the test output but do not fail the gate.
    for w in report.warnings() {
        eprintln!("{w}");
    }
}

#[test]
fn every_summary_crate_holds_a_purity_certificate() {
    let report = workspace_report();
    let status = |name: &str| {
        report
            .certificates
            .iter()
            .find(|c| c.crate_name == name)
            .unwrap_or_else(|| panic!("no certificate for cqs-{name}"))
            .status
    };
    // The comparison-based summaries — the algorithms the Ω((1/ε)·log εN)
    // bound constrains — must each certify as model-pure, and so must
    // the service facade: its registry/handles move items into those
    // summaries and may never inspect them on the way.
    for name in [
        "ckms", "gk", "kll", "mrl", "ostree", "sampling", "service", "window",
    ] {
        assert_eq!(
            status(name),
            CertStatus::Certified,
            "cqs-{name} lost its comparison-model purity certificate:\n{}",
            report
                .certificates
                .iter()
                .find(|c| c.crate_name == name)
                .map(|c| c.reasons.join("\n"))
                .unwrap_or_default()
        );
    }
    // The bounded-universe sketch must be *refused* one: it consumes
    // concrete u64 keys, outside Definition 2.1 — the paper's contrast.
    assert_eq!(status("qdigest"), CertStatus::Refused);
}
