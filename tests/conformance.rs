//! Tier-1 model-conformance gate.
//!
//! Runs the full cqs-xtask lint engine over the workspace as part of
//! plain `cargo test`: the comparison-model, determinism, and
//! robustness rules (see DESIGN.md, "Model enforcement") hold for every
//! `.rs` file in the tree, or this test — and therefore tier-1 — fails.
//! Equivalent to `cargo run -p cqs-xtask -- lint` exiting 0.

use std::path::PathBuf;

#[test]
fn workspace_conforms_to_the_comparison_model() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let report = cqs_xtask::run_workspace(&root).expect("workspace walk failed");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — layout changed?",
        report.files_scanned
    );
    let errors: Vec<String> = report.errors().map(ToString::to_string).collect();
    assert!(
        errors.is_empty(),
        "model-conformance violations (fix them or add a documented \
         `// cqs-lint: allow(<rule>)`):\n{}",
        errors.join("\n")
    );
    // Warnings are surfaced in the test output but do not fail the gate.
    for w in report.warnings() {
        eprintln!("{w}");
    }
}
