//! E2E model conformance: every summary implementation survives the
//! real adversarial construction over the *opaque* universe.
//!
//! The static lint gate (tests/conformance.rs) proves the source never
//! leaves the comparison model; this test proves the behaviour doesn't
//! either. Each `ComparisonSummary` is instantiated over
//! `cqs_universe::Item` — a type offering nothing but `Ord`/`Clone` —
//! and driven through `run_lower_bound`, the paper's full adversary
//! (interval refinement, Lemma 3.4 bookkeeping, Definition 3.2
//! indistinguishability checks). A summary that secretly depended on
//! item representation, hidden entropy, or iteration order would
//! desynchronise the π/ρ pair and fail `equivalence_ok`.

use cqs::prelude::*;
use cqs_core::reference::ExactSummary;

const EPS_INV: u64 = 16;
const K: u32 = 4;

fn conformance<S, F>(name: &str, make: F) -> cqs_core::adversary::AdversaryReport
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    let eps = Eps::from_inverse(EPS_INV);
    let report = run_lower_bound(eps, K, make);
    assert_eq!(report.n, eps.stream_len(K), "{name}: stream length");
    assert!(
        report.equivalence_ok,
        "{name}: π/ρ indistinguishability failed — summary is not \
         deterministic comparison-based on the opaque universe"
    );
    assert!(report.max_stored > 0, "{name}: summary stored nothing");
    report
}

/// Deterministic, ε-accurate summaries: the full paper contract holds —
/// indistinguishability, zero audit violations, and the Theorem 2.2
/// space bound.
fn strict<S, F>(name: &str, make: F)
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    let report = conformance(name, make);
    assert_eq!(report.claim1_violations, 0, "{name}: Claim 1 violated");
    assert_eq!(report.lemma52_violations, 0, "{name}: Lemma 5.2 violated");
    assert!(
        report.max_stored as f64 >= report.theorem22_bound,
        "{name}: beat the lower bound?! stored {} < bound {:.1}",
        report.max_stored,
        report.theorem22_bound
    );
    assert!(
        report.final_gap <= report.gap_ceiling,
        "{name}: adversary gap invariant broken"
    );
}

#[test]
fn gk_banded_conforms_on_opaque_items() {
    let eps = Eps::from_inverse(EPS_INV);
    strict("gk", || GkSummary::<Item>::new(eps.value()));
}

#[test]
fn gk_greedy_conforms_on_opaque_items() {
    let eps = Eps::from_inverse(EPS_INV);
    strict("gk-greedy", || GreedyGk::<Item>::new(eps.value()));
}

#[test]
fn mrl_conforms_on_opaque_items() {
    let eps = Eps::from_inverse(EPS_INV);
    let n = eps.stream_len(K);
    strict("mrl", || MrlSummary::<Item>::new(eps.value(), n));
}

#[test]
fn exact_summary_conforms_on_opaque_items() {
    strict("exact", ExactSummary::<Item>::new);
}

#[test]
fn kll_fixed_seed_conforms_on_opaque_items() {
    // Randomised but derandomised by a fixed seed (Section 6.3): both
    // adversary copies draw identical coins, so indistinguishability
    // must still hold. Accuracy is not adversarially guaranteed, so the
    // audit-violation counts are reported, not asserted.
    let eps = Eps::from_inverse(EPS_INV);
    let kcap = (4 * eps.inverse() as usize).max(8);
    conformance("kll-fixed", || KllSketch::<Item>::with_seed(kcap, 0xD1CE));
}

#[test]
fn reservoir_fixed_seed_conforms_on_opaque_items() {
    let eps = Eps::from_inverse(EPS_INV);
    conformance("reservoir-fixed", || {
        ReservoirSummary::<Item>::with_seed(eps.value(), 0.05, 0xFEED)
    });
}

#[test]
fn capped_gk_conforms_but_pays_in_accuracy() {
    // A space-capped summary stays comparison-based (so equivalence must
    // hold) — the lower bound instead manifests as audit violations or
    // an exhausted gap, never as a desynchronised pair.
    let eps = Eps::from_inverse(EPS_INV);
    let budget = (eps.inverse() / 2) as usize;
    conformance("gk-capped", || CappedGk::<Item>::new(eps.value(), budget));
}

#[test]
fn reports_are_reproducible_run_to_run() {
    // Determinism end-to-end: two independent executions of the whole
    // construction produce byte-identical reports (Lemma 3.4's replay
    // argument depends on exactly this).
    let eps = Eps::from_inverse(EPS_INV);
    let run = || {
        let r = run_lower_bound(eps, K, || GkSummary::<Item>::new(eps.value()));
        (
            r.n,
            r.final_gap,
            r.max_stored,
            r.stored_final,
            r.max_label_depth,
        )
    };
    assert_eq!(run(), run());
}
