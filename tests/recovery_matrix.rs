//! The recovery fault matrix: every storage fault family applied to a
//! published snapshot must yield a typed corruption-class
//! `RestoreError` — zero silent restores — and the rotating fallback
//! (`restore_with_fallback`) must degrade gracefully from latest, to
//! previous, to a cold start, recording a verdict for every rejection.

use cqs::prelude::*;
use cqs_faults::storage::{apply_storage_fault, storage_fault_matrix, StorageFault};
use cqs_snapshot::atomic::{previous_path, restore_with_fallback, save_rotating, RecoverySource};
use cqs_snapshot::{SnapshotRead, SnapshotWrite, HEADER_LEN};

/// A deterministic GK snapshot over `n` sequential items.
fn gk_bytes(n: u64) -> Vec<u8> {
    let mut gk = GkSummary::<u64>::new(0.02);
    for v in 1..=n {
        gk.insert(v);
    }
    gk.to_snapshot_bytes()
}

#[test]
fn every_matrix_fault_is_detected() {
    let bytes = gk_bytes(2_000);
    // The previous generation comes from a *longer* fill so the
    // TornWrite tail splices bytes from a different file image — the
    // worst case for a non-atomic in-place overwrite.
    let prev = gk_bytes(5_000);

    let matrix = storage_fault_matrix(bytes.len());
    assert_eq!(matrix.len(), 5, "fault families grew; extend this test");
    for fault in &matrix {
        let evil = apply_storage_fault(fault, &bytes, Some(&prev), HEADER_LEN);
        match GkSummary::<u64>::from_snapshot_bytes(&evil) {
            Err(e) => assert!(
                e.is_corruption(),
                "{}: expected a corruption-class verdict, got {e}",
                fault.name()
            ),
            Ok(_) => panic!("{}: corrupted snapshot restored silently", fault.name()),
        }
    }
}

#[test]
fn bit_flips_anywhere_in_the_body_are_detected() {
    let bytes = gk_bytes(500);
    // Denser sweep than the matrix: a flip at every eighth offset.
    for offset in (0..bytes.len()).step_by(8) {
        let fault = StorageFault::BitFlip { offset, bit: 5 };
        let evil = apply_storage_fault(&fault, &bytes, None, HEADER_LEN);
        assert!(
            GkSummary::<u64>::from_snapshot_bytes(&evil).is_err(),
            "bit flip at byte {offset} restored silently"
        );
    }
}

#[test]
fn fallback_prefers_the_latest_intact_generation() {
    let dir = tempdir("fallback-latest");
    let path = dir.join("state.ckpt");
    save_rotating(&path, &gk_bytes(100)).expect("publish gen 1");
    save_rotating(&path, &gk_bytes(200)).expect("publish gen 2");

    let rec = restore_with_fallback::<GkSummary<u64>>(&path);
    let (value, source) = rec.value.expect("latest generation must restore");
    assert_eq!(source, RecoverySource::Latest);
    assert_eq!(value.items_processed(), 200);
    assert!(rec.events.is_empty(), "clean restore must record no events");
}

#[test]
fn fallback_degrades_to_the_previous_generation() {
    let dir = tempdir("fallback-prev");
    let path = dir.join("state.ckpt");
    save_rotating(&path, &gk_bytes(100)).expect("publish gen 1");
    save_rotating(&path, &gk_bytes(200)).expect("publish gen 2");

    // Corrupt the latest generation in place (torn write).
    let latest = std::fs::read(&path).expect("read latest");
    std::fs::write(&path, &latest[..latest.len() / 2]).expect("tear latest");

    let rec = restore_with_fallback::<GkSummary<u64>>(&path);
    let (value, source) = rec.value.expect("previous generation must restore");
    assert_eq!(source, RecoverySource::Previous);
    assert_eq!(value.items_processed(), 100, "wrong generation restored");
    assert_eq!(rec.events.len(), 1, "the rejected latest must be recorded");
    assert!(
        rec.events[0].error.is_corruption(),
        "rejection verdict: {}",
        rec.events[0].error
    );
}

#[test]
fn fallback_cold_starts_when_every_generation_is_corrupt() {
    let dir = tempdir("fallback-cold");
    let path = dir.join("state.ckpt");
    save_rotating(&path, &gk_bytes(100)).expect("publish gen 1");
    save_rotating(&path, &gk_bytes(200)).expect("publish gen 2");

    // Corrupt both generations.
    for p in [path.clone(), previous_path(&path)] {
        let mut b = std::fs::read(&p).expect("read generation");
        let mid = b.len() / 2;
        b[mid] ^= 0xFF;
        std::fs::write(&p, &b).expect("corrupt generation");
    }

    let rec = restore_with_fallback::<GkSummary<u64>>(&path);
    assert!(rec.is_cold_start(), "corrupt snapshots must not restore");
    assert_eq!(rec.events.len(), 2, "both rejections must be recorded");
    for ev in &rec.events {
        assert!(
            ev.error.is_corruption(),
            "verdict for {}: {}",
            ev.path,
            ev.error
        );
    }
}

#[test]
fn missing_snapshot_is_a_clean_cold_start() {
    let dir = tempdir("fallback-missing");
    let rec = restore_with_fallback::<GkSummary<u64>>(&dir.join("never-written.ckpt"));
    assert!(rec.is_cold_start());
    assert!(
        rec.events.is_empty(),
        "a missing file is a clean cold start, not a fault"
    );
}

#[test]
fn matrix_faults_on_disk_degrade_through_the_fallback() {
    // End to end: publish two generations, hit the latest file with
    // each matrix fault, and demand the fallback restores the previous
    // generation (never the corrupted bytes) with a recorded verdict.
    let fresh = gk_bytes(300);
    let stale = gk_bytes(150);
    for fault in storage_fault_matrix(fresh.len()) {
        let dir = tempdir(&format!("matrix-{}", fault.name()));
        let path = dir.join("state.ckpt");
        save_rotating(&path, &stale).expect("publish gen 1");
        save_rotating(&path, &fresh).expect("publish gen 2");

        let evil = apply_storage_fault(&fault, &fresh, Some(&stale), HEADER_LEN);
        std::fs::write(&path, &evil).expect("inject fault");

        let rec = restore_with_fallback::<GkSummary<u64>>(&path);
        let (value, source) = rec
            .value
            .unwrap_or_else(|| panic!("{}: previous generation lost", fault.name()));
        assert_eq!(source, RecoverySource::Previous, "{}", fault.name());
        assert_eq!(value.items_processed(), 150, "{}", fault.name());
        assert_eq!(rec.events.len(), 1, "{}", fault.name());
    }
}

/// A fresh scratch directory under the target-aware temp root.
fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cqs-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
