//! The parallel sweep engine's contract, end to end: for any `--jobs`
//! value the rendered tables, CSV mirrors, and exit codes are
//! byte-identical to the serial run, and a panicking cell is isolated
//! to its own verdict without poisoning siblings.

use cqs_bench::exec::{run_cells, CellOutcome};
use cqs_bench::sweeps::{thm22_grid, thm22_sweep};
use cqs_bench::Target;
use cqs_cli::{parse_args, run_faults_cmd, Cli};

/// thm22 sweep: jobs = 1 and jobs = 4 must produce identical tables,
/// CSVs, skip logs, and verdicts over a small grid.
#[test]
fn thm22_sweep_is_jobs_invariant() {
    let cells = thm22_grid(&[8, 16], 3..=4, &[Target::Gk, Target::GkGreedy]);
    let serial = thm22_sweep(&cells, 1, false);
    let parallel = thm22_sweep(&cells, 4, false);
    assert_eq!(serial.table.render(), parallel.table.render());
    assert_eq!(serial.table.to_csv(), parallel.table.to_csv());
    assert_eq!(serial.skipped, parallel.skipped);
    assert_eq!(serial.all_ok, parallel.all_ok);
    // The grid is small enough that nothing should be skipped at all.
    assert!(serial.skipped.is_empty(), "{:?}", serial.skipped);
}

fn faults_output(jobs: &str) -> (String, u8) {
    let words = [
        "faults",
        "--inv-eps",
        "8",
        "--k",
        "4",
        "--target",
        "gk",
        "--jobs",
        jobs,
    ];
    let cli = parse_args(words.iter().map(|s| s.to_string())).expect("parse");
    let Cli::Faults(args) = cli else {
        panic!("wrong command");
    };
    run_faults_cmd(&args).expect("run")
}

/// The 8-cell fault matrix: serial and 4-worker runs must agree on the
/// rendered table and exit code, the panic cells must land on their
/// expected verdicts, and no sibling cell may be poisoned by them.
#[test]
fn fault_matrix_is_jobs_invariant_and_panic_isolated() {
    let (out1, code1) = faults_output("1");
    let (out4, code4) = faults_output("4");
    assert_eq!(out1, out4);
    assert_eq!(code1, code4);
    assert_eq!(code1, 0, "matrix mismatched:\n{out1}");
    assert!(out1.contains("panic-insert"), "{out1}");
    assert!(out1.contains("all 8 cells matched"), "{out1}");
}

/// Engine-level isolation: a panicking cell yields `Panicked` in its
/// own slot; every other cell still completes, in input order.
#[test]
fn panicking_cell_does_not_poison_siblings() {
    let cells: Vec<u32> = (0..16).collect();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = run_cells(
        &cells,
        4,
        |_, &x| {
            if x == 7 {
                panic!("cell seven exploded");
            }
            x * 2
        },
        |_| {},
    );
    std::panic::set_hook(hook);
    for (i, o) in out.iter().enumerate() {
        match o {
            CellOutcome::Done(v) => {
                assert_ne!(i, 7);
                assert_eq!(*v, cells[i] * 2);
            }
            CellOutcome::Panicked(msg) => {
                assert_eq!(i, 7);
                assert!(msg.contains("cell seven exploded"), "{msg}");
            }
        }
    }
}
