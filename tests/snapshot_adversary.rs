//! Snapshotting the adversary's live stream state.
//!
//! Runs the PODS'20 construction, replays stream π into a plain
//! `StreamState<GkSummary<Item>>`, snapshots it through the wire
//! format, restores, and differentially checks every order/arrival
//! query against the live original. Then corrupts the bytes and checks
//! the restore path answers with typed errors, never a silent restore.

use cqs::core::adversary::run_adversary;
use cqs::core::{ComparisonSummary, Eps, StreamState};
use cqs::gk::GkSummary;
use cqs::universe::Item;
use cqs_snapshot::{RestoreError, SnapshotRead, SnapshotWrite};

/// Runs the adversary against GK and replays its π stream, in arrival
/// order, into a snapshot-capable `StreamState`.
fn pi_replica(eps: Eps, k: u32) -> StreamState<GkSummary<Item>> {
    let outcome = run_adversary(eps, k, || GkSummary::<Item>::new(eps.value()));
    let mut pairs: Vec<(Item, u64)> = Vec::new();
    outcome
        .pi
        .for_each_arrival(&mut |item, tag| pairs.push((item.clone(), tag)));
    pairs.sort_by_key(|&(_, tag)| tag);
    let mut live = StreamState::new(GkSummary::<Item>::new(eps.value()));
    for (item, _) in pairs {
        live.push(item);
    }
    live
}

#[test]
fn stream_state_round_trips_and_answers_identically() {
    let eps = Eps::from_inverse(16);
    let live = pi_replica(eps, 4);
    assert!(!live.is_empty(), "adversary produced an empty stream");

    let bytes = live.to_snapshot_bytes();
    let restored =
        StreamState::<GkSummary<Item>>::from_snapshot_bytes(&bytes).expect("restore π replica");

    assert_eq!(live.len(), restored.len());
    assert_eq!(
        live.summary.item_array(),
        restored.summary.item_array(),
        "summary item arrays diverged"
    );
    // Differential order/arrival audit over every stream item.
    live.for_each_arrival(&mut |item, tag| {
        assert_eq!(restored.rank(item), live.rank(item), "rank diverged");
        assert_eq!(restored.arrival_of(item), Some(tag), "arrival tag diverged");
        assert_eq!(restored.next(item), live.next(item), "next diverged");
        assert_eq!(restored.prev(item), live.prev(item), "prev diverged");
    });
    // And the snapshot of the restored state is byte-identical.
    assert_eq!(bytes, restored.to_snapshot_bytes());
}

#[test]
fn corrupted_stream_snapshots_yield_typed_errors() {
    let eps = Eps::from_inverse(16);
    let live = pi_replica(eps, 3);
    let bytes = live.to_snapshot_bytes();

    // Flip one bit in every region of the file: header, early section
    // bytes, middle, tail. Every flip must be *detected* — restore may
    // never succeed on corrupted bytes (CRC32 catches all 1-bit flips).
    for offset in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
        let mut evil = bytes.clone();
        evil[offset] ^= 0x10;
        match StreamState::<GkSummary<Item>>::from_snapshot_bytes(&evil) {
            Err(e) => assert!(
                e.is_corruption(),
                "flip at {offset}: expected corruption, got {e}"
            ),
            Ok(_) => panic!("bit flip at {offset} restored silently"),
        }
    }
}

#[test]
fn tampered_arrival_tags_are_rejected_by_validation() {
    // A syntactically valid snapshot whose semantic invariants are
    // broken (duplicate arrival tag) must be refused by
    // `StreamState::from_snapshot_parts` with a diagnostic.
    let eps = Eps::from_inverse(16);
    let live = pi_replica(eps, 3);
    let mut pairs: Vec<(Item, u64)> = Vec::new();
    live.for_each_arrival(&mut |item, tag| pairs.push((item.clone(), tag)));
    assert!(pairs.len() >= 2);
    pairs[1].1 = pairs[0].1; // duplicate tag, breaks the permutation
    let summary = live.summary.clone();
    let err = StreamState::from_snapshot_parts(summary, pairs)
        .err()
        .expect("duplicate arrival tags must be rejected");
    assert!(err.contains("permutation"), "unexpected diagnostic: {err}");
}

#[test]
fn stream_snapshot_errors_map_to_the_taxonomy() {
    let eps = Eps::from_inverse(16);
    let live = pi_replica(eps, 3);
    let bytes = live.to_snapshot_bytes();

    // Truncation mid-section.
    match StreamState::<GkSummary<Item>>::from_snapshot_bytes(&bytes[..bytes.len() - 9]) {
        Err(e) => assert!(e.is_corruption(), "truncation verdict: {e}"),
        Ok(_) => panic!("truncated stream snapshot restored"),
    }
    // Wrong kind: a bare summary snapshot is not a stream snapshot.
    let summ_bytes = live.summary.to_snapshot_bytes();
    match StreamState::<GkSummary<Item>>::from_snapshot_bytes(&summ_bytes) {
        Err(RestoreError::WrongKind { .. }) => {}
        Err(other) => panic!("expected WrongKind, got {other}"),
        Ok(_) => panic!("summary snapshot restored as a stream state"),
    }
}
