//! Distributed aggregation: merge semantics of the mergeable summaries.
//!
//! Each test shards a stream, summarises shards independently, merges,
//! and checks the merged summary against ground truth with the
//! merge-appropriate budget (errors add per merge level).

use cqs::prelude::*;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

fn max_rank_error<S: ComparisonSummary<u64>>(s: &S, n: u64, grid: u64) -> u64 {
    // Values are a permutation of 1..=n, so value == true rank.
    (0..=grid)
        .map(|j| {
            let r = (1 + j * (n - 1) / grid).clamp(1, n);
            s.query_rank(r).unwrap().abs_diff(r)
        })
        .max()
        .unwrap()
}

#[test]
fn gk_pairwise_merge_stays_within_summed_eps() {
    let n = 40_000u64;
    let eps = 0.005;
    let vals = shuffled(n, 1);
    let (left, right) = vals.split_at(vals.len() / 2);
    let mut a = GkSummary::new(eps);
    let mut b = GkSummary::new(eps);
    for &v in left {
        a.insert(v);
    }
    for &v in right {
        b.insert(v);
    }
    a.merge(&b);
    assert_eq!(a.items_processed(), n);
    let budget = (2.0 * eps * n as f64).ceil() as u64 + 2; // ε doubles per merge
    let err = max_rank_error(&a, n, 64);
    assert!(err <= budget, "merged GK err {err} > {budget}");
    // Mass conservation through the merge.
    let mass: u64 = a.tuples().iter().map(|t| t.g).sum();
    assert_eq!(mass, n);
}

#[test]
fn gk_tree_merge_over_shards() {
    let n = 64_000u64;
    let shards = 8usize;
    let eps = 0.002;
    let vals = shuffled(n, 2);
    let mut summaries: Vec<GkSummary<u64>> = vals
        .chunks(vals.len() / shards)
        .map(|chunk| {
            let mut s = GkSummary::new(eps);
            for &v in chunk {
                s.insert(v);
            }
            s
        })
        .collect();
    // Balanced binary merge tree: 3 levels for 8 shards.
    while summaries.len() > 1 {
        let mut next = Vec::with_capacity(summaries.len() / 2);
        while summaries.len() >= 2 {
            let mut a = summaries.remove(0);
            let b = summaries.remove(0);
            a.merge(&b);
            next.push(a);
        }
        next.append(&mut summaries);
        summaries = next;
    }
    let merged = &summaries[0];
    assert_eq!(merged.items_processed(), n);
    // ε multiplies by the tree height (3 doublings), plus slack.
    let budget = (8.0 * eps * n as f64).ceil() as u64 + 8;
    let err = max_rank_error(merged, n, 64);
    assert!(err <= budget, "tree-merged GK err {err} > {budget}");
}

#[test]
fn gk_merge_with_empty_and_into_empty() {
    let mut a = GkSummary::new(0.01);
    let b: GkSummary<u64> = GkSummary::new(0.01);
    for v in 1..=1000u64 {
        a.insert(v);
    }
    let before = a.items_processed();
    a.merge(&b);
    assert_eq!(a.items_processed(), before);

    let mut c: GkSummary<u64> = GkSummary::new(0.01);
    c.merge(&a);
    assert_eq!(c.items_processed(), 1000);
    assert!(c.query_rank(500).unwrap().abs_diff(500) <= 30);
}

#[test]
fn kll_merge_matches_single_stream_accuracy() {
    let n = 60_000u64;
    let vals = shuffled(n, 3);
    let mut parts: Vec<KllSketch<u64>> = Vec::new();
    for (i, chunk) in vals.chunks(vals.len() / 6).enumerate() {
        let mut s = KllSketch::with_seed(256, 100 + i as u64);
        for &v in chunk {
            s.insert(v);
        }
        parts.push(s);
    }
    let mut merged = parts.remove(0);
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged.items_processed(), n);
    assert_eq!(
        merged.total_weight(),
        n,
        "weight must be conserved through merges"
    );
    let err = max_rank_error(&merged, n, 64);
    assert!(err <= n / 40, "merged KLL err {err}");
    // Extremes survive merging exactly.
    assert_eq!(merged.query_rank(1), Some(1));
    assert_eq!(merged.query_rank(n), Some(n));
}

#[test]
fn mrl_merge_conserves_weight_and_accuracy() {
    let n = 32_000u64;
    let eps = 0.01;
    let vals = shuffled(n, 4);
    let (left, right) = vals.split_at(vals.len() / 2);
    let mut a = MrlSummary::new(eps, n);
    let mut b = MrlSummary::new(eps, n);
    for &v in left {
        a.insert(v);
    }
    for &v in right {
        b.insert(v);
    }
    a.merge(&b);
    assert_eq!(a.items_processed(), n);
    assert_eq!(a.total_weight(), n);
    let budget = (2.0 * eps * n as f64).ceil() as u64 + 2;
    let err = max_rank_error(&a, n, 64);
    assert!(err <= budget, "merged MRL err {err} > {budget}");
}

#[test]
fn qdigest_merge_adds_counts() {
    let mut a = QDigest::new(16, 0.02);
    let mut b = QDigest::new(16, 0.02);
    for v in shuffled(20_000, 5) {
        a.insert(v % 65_536);
    }
    for v in shuffled(20_000, 6) {
        b.insert(v % 65_536);
    }
    a.merge(&b).expect("matching universes and compression");
    assert_eq!(a.items_processed(), 40_000);
    // Median of the union of two identical-distribution shards.
    let med = a.quantile(0.5);
    assert!(med.abs_diff(10_000) <= 1_500, "merged qdigest median {med}");
}

#[test]
fn qdigest_merge_rejects_mismatched_universe() {
    let mut a = QDigest::new(16, 0.05);
    let b = QDigest::new(12, 0.05);
    for v in 0..100u64 {
        a.insert(v);
    }
    let err = a
        .merge(&b)
        .expect_err("mismatched universes must be refused");
    assert!(
        err.to_string().contains("identical universes"),
        "unexpected refusal: {err}"
    );
    // The typed refusal leaves the receiver untouched.
    assert_eq!(a.items_processed(), 100);
}

#[test]
fn qdigest_merge_rejects_mismatched_compression() {
    // Same universe, different ε ⇒ different compression factor k. The
    // old merge silently accepted this, producing a digest whose error
    // guarantee matched neither input.
    let mut a = QDigest::new(16, 0.05);
    let mut b = QDigest::new(16, 0.005);
    for v in 0..100u64 {
        a.insert(v);
        b.insert(v);
    }
    let err = a
        .merge(&b)
        .expect_err("mismatched compression must be refused");
    assert!(
        err.to_string().contains("compression"),
        "unexpected refusal: {err}"
    );
    assert_eq!(a.items_processed(), 100);
}

#[test]
#[should_panic(expected = "identical buffer capacity")]
fn mrl_merge_rejects_mismatched_capacity() {
    let mut a: MrlSummary<u64> = MrlSummary::new(0.01, 10_000);
    let b: MrlSummary<u64> = MrlSummary::new(0.05, 10_000);
    a.merge(&b);
}

// ---------------------------------------------------------------------
// Adversary-driven error composition: shard the Theorem 2.2 stream π
// (the hardest comparison-based input we can construct), summarise each
// shard independently, fold the shards with `try_merge`, and probe
// *every* rank against the stream's ground truth. The composed error
// must stay within the merged summary's own `eps_bound` — the
// mergeable-summaries contract under maximal adversarial pressure.
// ---------------------------------------------------------------------

/// The adversarial stream π in arrival order, with its ground-truth
/// state (ranks are computed against the live order index).
fn adversarial_stream() -> (
    cqs::core::StreamState<MaxSpaceTracker<GkSummary<Item>>>,
    Vec<Item>,
) {
    let eps = Eps::from_inverse(32);
    let out = cqs::core::adversary::run_adversary(eps, 4, || GkSummary::<Item>::new(eps.value()));
    let mut arrivals: Vec<(u64, Item)> = Vec::new();
    out.pi
        .for_each_arrival(&mut |item, tag| arrivals.push((tag, item.clone())));
    arrivals.sort_unstable_by_key(|&(tag, _)| tag);
    let items = arrivals.into_iter().map(|(_, item)| item).collect();
    (out.pi, items)
}

/// Shards `items` round-robin, folds the shards left-to-right with
/// `try_merge`, and returns the merged summary.
fn fold_shards<S, F>(items: &[Item], shards: usize, make: F) -> S
where
    S: MergeableSummary<Item>,
    F: Fn() -> S,
{
    let mut parts: Vec<S> = (0..shards).map(|_| make()).collect();
    for (i, item) in items.iter().enumerate() {
        parts[i % shards].insert(item.clone());
    }
    let mut merged = parts.remove(0);
    for part in &parts {
        merged
            .try_merge(part)
            .expect("identically-built shards must be mergeable");
    }
    merged
}

/// Probes every rank of π and asserts the summary's answer is within
/// `budget` of the truth.
fn assert_all_ranks_within<S: ComparisonSummary<Item>>(
    state: &cqs::core::StreamState<MaxSpaceTracker<GkSummary<Item>>>,
    merged: &S,
    budget: u64,
    label: &str,
) {
    let n = state.len();
    assert_eq!(merged.items_processed(), n, "{label}: merged item count");
    for r in 1..=n {
        let answer = merged
            .query_rank(r)
            .unwrap_or_else(|| panic!("{label}: no answer for rank {r}"));
        let err = state.rank_error(&answer, r);
        assert!(
            err <= budget,
            "{label}: rank {r} answered with error {err} > budget {budget}"
        );
    }
}

#[test]
fn adversarial_composition_gk_within_composed_eps() {
    let (state, items) = adversarial_stream();
    let n = state.len();
    for shards in [2usize, 4] {
        let merged = fold_shards(&items, shards, || GkSummary::<Item>::new(0.01));
        let composed = merged.eps_bound().expect("gk reports a composed eps");
        assert!(
            composed <= 0.01 * shards as f64 + 1e-12,
            "composed eps {composed} exceeds shards * eps0"
        );
        let budget = (composed * n as f64).ceil() as u64 + 1;
        assert_all_ranks_within(&state, &merged, budget, &format!("gk x{shards}"));
    }
}

#[test]
fn adversarial_composition_greedy_gk_within_composed_eps() {
    let (state, items) = adversarial_stream();
    let n = state.len();
    let shards = 4usize;
    let merged = fold_shards(&items, shards, || GreedyGk::<Item>::new(0.01));
    let composed = merged
        .eps_bound()
        .expect("greedy gk reports a composed eps");
    assert!(composed <= 0.01 * shards as f64 + 1e-12);
    let budget = (composed * n as f64).ceil() as u64 + 1;
    assert_all_ranks_within(&state, &merged, budget, "greedy-gk x4");
}

#[test]
fn adversarial_composition_mrl_within_composed_eps() {
    let (state, items) = adversarial_stream();
    let n = state.len();
    let shards = 4usize;
    let merged = fold_shards(&items, shards, || MrlSummary::<Item>::new(0.02, n));
    let composed = merged.eps_bound().expect("mrl reports a composed eps");
    let budget = (composed * n as f64).ceil() as u64 + 1;
    assert_all_ranks_within(&state, &merged, budget, "mrl x4");
}

#[test]
fn adversarial_composition_kll_conserves_weight() {
    // KLL's guarantee is probabilistic (`eps_bound` is `None` by
    // design), so the differential checks the structural half of the
    // contract — exact weight conservation through the fold — plus a
    // generous empirical error ceiling with fixed seeds.
    let (state, items) = adversarial_stream();
    let n = state.len();
    let shards = 4usize;
    let mut parts: Vec<KllSketch<Item>> = (0..shards)
        .map(|i| KllSketch::with_seed(256, 900 + i as u64))
        .collect();
    for (i, item) in items.iter().enumerate() {
        parts[i % shards].insert(item.clone());
    }
    let mut merged = parts.remove(0);
    for part in &parts {
        merged.try_merge(part).expect("kll shards always merge");
    }
    assert!(
        merged.eps_bound().is_none(),
        "kll must not claim a deterministic eps"
    );
    assert_eq!(merged.total_weight(), n);
    let budget = n / 8;
    assert_all_ranks_within(&state, &merged, budget, "kll x4");
}
