//! Distributed aggregation: merge semantics of the mergeable summaries.
//!
//! Each test shards a stream, summarises shards independently, merges,
//! and checks the merged summary against ground truth with the
//! merge-appropriate budget (errors add per merge level).

use cqs::prelude::*;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

fn max_rank_error<S: ComparisonSummary<u64>>(s: &S, n: u64, grid: u64) -> u64 {
    // Values are a permutation of 1..=n, so value == true rank.
    (0..=grid)
        .map(|j| {
            let r = (1 + j * (n - 1) / grid).clamp(1, n);
            s.query_rank(r).unwrap().abs_diff(r)
        })
        .max()
        .unwrap()
}

#[test]
fn gk_pairwise_merge_stays_within_summed_eps() {
    let n = 40_000u64;
    let eps = 0.005;
    let vals = shuffled(n, 1);
    let (left, right) = vals.split_at(vals.len() / 2);
    let mut a = GkSummary::new(eps);
    let mut b = GkSummary::new(eps);
    for &v in left {
        a.insert(v);
    }
    for &v in right {
        b.insert(v);
    }
    a.merge(&b);
    assert_eq!(a.items_processed(), n);
    let budget = (2.0 * eps * n as f64).ceil() as u64 + 2; // ε doubles per merge
    let err = max_rank_error(&a, n, 64);
    assert!(err <= budget, "merged GK err {err} > {budget}");
    // Mass conservation through the merge.
    let mass: u64 = a.tuples().iter().map(|t| t.g).sum();
    assert_eq!(mass, n);
}

#[test]
fn gk_tree_merge_over_shards() {
    let n = 64_000u64;
    let shards = 8usize;
    let eps = 0.002;
    let vals = shuffled(n, 2);
    let mut summaries: Vec<GkSummary<u64>> = vals
        .chunks(vals.len() / shards)
        .map(|chunk| {
            let mut s = GkSummary::new(eps);
            for &v in chunk {
                s.insert(v);
            }
            s
        })
        .collect();
    // Balanced binary merge tree: 3 levels for 8 shards.
    while summaries.len() > 1 {
        let mut next = Vec::with_capacity(summaries.len() / 2);
        while summaries.len() >= 2 {
            let mut a = summaries.remove(0);
            let b = summaries.remove(0);
            a.merge(&b);
            next.push(a);
        }
        next.append(&mut summaries);
        summaries = next;
    }
    let merged = &summaries[0];
    assert_eq!(merged.items_processed(), n);
    // ε multiplies by the tree height (3 doublings), plus slack.
    let budget = (8.0 * eps * n as f64).ceil() as u64 + 8;
    let err = max_rank_error(merged, n, 64);
    assert!(err <= budget, "tree-merged GK err {err} > {budget}");
}

#[test]
fn gk_merge_with_empty_and_into_empty() {
    let mut a = GkSummary::new(0.01);
    let b: GkSummary<u64> = GkSummary::new(0.01);
    for v in 1..=1000u64 {
        a.insert(v);
    }
    let before = a.items_processed();
    a.merge(&b);
    assert_eq!(a.items_processed(), before);

    let mut c: GkSummary<u64> = GkSummary::new(0.01);
    c.merge(&a);
    assert_eq!(c.items_processed(), 1000);
    assert!(c.query_rank(500).unwrap().abs_diff(500) <= 30);
}

#[test]
fn kll_merge_matches_single_stream_accuracy() {
    let n = 60_000u64;
    let vals = shuffled(n, 3);
    let mut parts: Vec<KllSketch<u64>> = Vec::new();
    for (i, chunk) in vals.chunks(vals.len() / 6).enumerate() {
        let mut s = KllSketch::with_seed(256, 100 + i as u64);
        for &v in chunk {
            s.insert(v);
        }
        parts.push(s);
    }
    let mut merged = parts.remove(0);
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged.items_processed(), n);
    assert_eq!(
        merged.total_weight(),
        n,
        "weight must be conserved through merges"
    );
    let err = max_rank_error(&merged, n, 64);
    assert!(err <= n / 40, "merged KLL err {err}");
    // Extremes survive merging exactly.
    assert_eq!(merged.query_rank(1), Some(1));
    assert_eq!(merged.query_rank(n), Some(n));
}

#[test]
fn mrl_merge_conserves_weight_and_accuracy() {
    let n = 32_000u64;
    let eps = 0.01;
    let vals = shuffled(n, 4);
    let (left, right) = vals.split_at(vals.len() / 2);
    let mut a = MrlSummary::new(eps, n);
    let mut b = MrlSummary::new(eps, n);
    for &v in left {
        a.insert(v);
    }
    for &v in right {
        b.insert(v);
    }
    a.merge(&b);
    assert_eq!(a.items_processed(), n);
    assert_eq!(a.total_weight(), n);
    let budget = (2.0 * eps * n as f64).ceil() as u64 + 2;
    let err = max_rank_error(&a, n, 64);
    assert!(err <= budget, "merged MRL err {err} > {budget}");
}

#[test]
fn qdigest_merge_adds_counts() {
    let mut a = QDigest::new(16, 0.02);
    let mut b = QDigest::new(16, 0.02);
    for v in shuffled(20_000, 5) {
        a.insert(v % 65_536);
    }
    for v in shuffled(20_000, 6) {
        b.insert(v % 65_536);
    }
    a.merge(&b);
    assert_eq!(a.items_processed(), 40_000);
    // Median of the union of two identical-distribution shards.
    let med = a.quantile(0.5);
    assert!(med.abs_diff(10_000) <= 1_500, "merged qdigest median {med}");
}

#[test]
#[should_panic(expected = "identical universes")]
fn qdigest_merge_rejects_mismatched_universe() {
    let mut a = QDigest::new(16, 0.05);
    let b = QDigest::new(12, 0.05);
    a.merge(&b);
}

#[test]
#[should_panic(expected = "identical buffer capacity")]
fn mrl_merge_rejects_mismatched_capacity() {
    let mut a: MrlSummary<u64> = MrlSummary::new(0.01, 10_000);
    let b: MrlSummary<u64> = MrlSummary::new(0.05, 10_000);
    a.merge(&b);
}
