//! Checkpoint/restore: the deterministic summaries round-trip through
//! the `cqs-snapshot` wire format and continue the stream exactly where
//! they left off.
//!
//! Historical note: this suite used to be gated behind a
//! `serde-summaries` cargo feature and external serde derives. Snapshots
//! now come from the in-tree dependency-free wire format and are always
//! compiled; the feature flag survives only as a no-op (see the root
//! `Cargo.toml`).

use cqs::prelude::*;
use cqs_snapshot::{RestoreError, SnapshotRead, SnapshotWrite};

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Runs half a stream, checkpoints through the wire format, restores,
/// runs the second half on both the original and the restored copy, and
/// demands bit-identical behaviour.
fn roundtrip_continues_identically<S>(mut live: S, name: &str)
where
    S: ComparisonSummary<u64> + SnapshotRead,
{
    let vals = shuffled(20_000, 0x5EDE);
    let (first, second) = vals.split_at(vals.len() / 2);
    for &v in first {
        live.insert(v);
    }
    let bytes = live.to_snapshot_bytes();
    let mut restored = match S::from_snapshot_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => panic!("{name}: restore failed: {e}"),
    };

    for &v in second {
        live.insert(v);
        restored.insert(v);
    }
    assert_eq!(
        live.items_processed(),
        restored.items_processed(),
        "{name}: n diverged"
    );
    assert_eq!(
        live.item_array(),
        restored.item_array(),
        "{name}: item arrays diverged"
    );
    for r in [1u64, 100, 10_000, 20_000] {
        assert_eq!(
            live.query_rank(r),
            restored.query_rank(r),
            "{name}: query({r}) diverged"
        );
    }
}

#[test]
fn gk_banded_checkpoints() {
    roundtrip_continues_identically(GkSummary::new(0.01), "gk");
}

#[test]
fn gk_greedy_checkpoints() {
    roundtrip_continues_identically(GreedyGk::new(0.01), "gk-greedy");
}

#[test]
fn mrl_checkpoints() {
    roundtrip_continues_identically(MrlSummary::new(0.01, 20_000), "mrl");
}

#[test]
fn ckms_checkpoints() {
    roundtrip_continues_identically(CkmsSummary::new(0.01), "ckms");
}

#[test]
fn empty_summaries_round_trip() {
    let gk = GkSummary::<u64>::new(0.02);
    let bytes = gk.to_snapshot_bytes();
    let restored = GkSummary::<u64>::from_snapshot_bytes(&bytes).expect("empty gk");
    assert_eq!(restored.items_processed(), 0);
    assert_eq!(restored.item_array(), gk.item_array());

    let mrl = MrlSummary::<u64>::new(0.02, 1_000);
    let restored =
        MrlSummary::<u64>::from_snapshot_bytes(&mrl.to_snapshot_bytes()).expect("empty mrl");
    assert_eq!(restored.items_processed(), 0);
}

#[test]
fn snapshots_are_deterministic_bytes() {
    // Two identical streams produce byte-identical snapshots — the
    // property the crash/resume CSV-diff guarantee ultimately rests on.
    let mut a = GreedyGk::<u64>::new(0.01);
    let mut b = GreedyGk::<u64>::new(0.01);
    for v in shuffled(5_000, 0xBEEF) {
        a.insert(v);
        b.insert(v);
    }
    assert_eq!(a.to_snapshot_bytes(), b.to_snapshot_bytes());
}

#[test]
fn restoring_the_wrong_kind_is_a_typed_error() {
    let mut gk = GkSummary::<u64>::new(0.05);
    for v in 1..=100u64 {
        gk.insert(v);
    }
    let bytes = gk.to_snapshot_bytes();
    match MrlSummary::<u64>::from_snapshot_bytes(&bytes) {
        Err(RestoreError::WrongKind { .. }) => {}
        Err(other) => panic!("expected WrongKind, got {other}"),
        Ok(_) => panic!("a GK snapshot restored as MRL"),
    }
}

#[test]
fn truncated_snapshots_are_corruption_not_garbage() {
    let mut ckms = CkmsSummary::<u64>::new(0.05);
    for v in 1..=500u64 {
        ckms.insert(v);
    }
    let bytes = ckms.to_snapshot_bytes();
    // Every proper prefix must fail with a *typed* corruption error —
    // never restore, never panic.
    for keep in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
        match CkmsSummary::<u64>::from_snapshot_bytes(&bytes[..keep]) {
            Err(e) => assert!(
                e.is_corruption(),
                "prefix {keep}: expected corruption verdict, got {e}"
            ),
            Ok(_) => panic!("prefix {keep} of a snapshot restored successfully"),
        }
    }
}
