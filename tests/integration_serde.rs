//! Checkpoint/restore: the deterministic summaries round-trip through
//! serde and continue the stream exactly where they left off.
//!
//! Requires the `serde` features:
//! `cargo test --test integration_serde --features serde-summaries`.

#![cfg(feature = "serde-summaries")]

use cqs::prelude::*;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Runs half a stream, checkpoints through JSON, restores, runs the
/// second half on both the original and the restored copy, and demands
/// bit-identical behaviour.
fn roundtrip_continues_identically<S>(mut live: S, name: &str)
where
    S: ComparisonSummary<u64> + serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let vals = shuffled(20_000, 0x5EDE);
    let (first, second) = vals.split_at(vals.len() / 2);
    for &v in first {
        live.insert(v);
    }
    let json = serde_json::to_string(&live).expect("serialize");
    let mut restored: S = serde_json::from_str(&json).expect("deserialize");

    for &v in second {
        live.insert(v);
        restored.insert(v);
    }
    assert_eq!(
        live.items_processed(),
        restored.items_processed(),
        "{name}: n diverged"
    );
    assert_eq!(
        live.item_array(),
        restored.item_array(),
        "{name}: item arrays diverged"
    );
    for r in [1u64, 100, 10_000, 20_000] {
        assert_eq!(
            live.query_rank(r),
            restored.query_rank(r),
            "{name}: query({r}) diverged"
        );
    }
}

#[test]
fn gk_banded_checkpoints() {
    roundtrip_continues_identically(GkSummary::new(0.01), "gk");
}

#[test]
fn gk_greedy_checkpoints() {
    roundtrip_continues_identically(GreedyGk::new(0.01), "gk-greedy");
}

#[test]
fn gk_capped_checkpoints() {
    roundtrip_continues_identically(CappedGk::new(0.01, 32), "gk-capped");
}

#[test]
fn mrl_checkpoints() {
    roundtrip_continues_identically(MrlSummary::new(0.01, 20_000), "mrl");
}

#[test]
fn ckms_checkpoints() {
    roundtrip_continues_identically(CkmsSummary::new(0.01), "ckms");
}

#[test]
fn qdigest_checkpoints() {
    let mut live = QDigest::new(16, 0.02);
    let vals = shuffled(20_000, 0xD16E);
    let (first, second) = vals.split_at(vals.len() / 2);
    for &v in first {
        live.insert(v % 65_536);
    }
    let json = serde_json::to_string(&live).expect("serialize");
    let mut restored: QDigest = serde_json::from_str(&json).expect("deserialize");
    for &v in second {
        live.insert(v % 65_536);
        restored.insert(v % 65_536);
    }
    assert_eq!(live.items_processed(), restored.items_processed());
    for phi in [0.1, 0.5, 0.9] {
        assert_eq!(live.quantile(phi), restored.quantile(phi));
    }
}
