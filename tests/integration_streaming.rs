//! Mid-stream behaviour: summaries are *online* structures — queries
//! must be answerable (within ε of the prefix seen so far) at any point,
//! not just at stream end. Also includes an `--ignored` soak test for
//! large adversarial runs.

use cqs::prelude::*;

fn shuffled(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (1..=n).collect();
    let mut s = seed | 1;
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Checks the median at exponentially spaced checkpoints of the stream.
fn check_prefix_medians<S: ComparisonSummary<u64>, F: Fn() -> S>(make: F, name: &str, slack: f64) {
    let n = 40_000u64;
    let vals = shuffled(n, 0x51111);
    let mut s = make();
    let mut seen: Vec<u64> = Vec::new();
    let mut checkpoint = 64u64;
    for (i, &v) in vals.iter().enumerate() {
        s.insert(v);
        seen.push(v);
        let done = (i + 1) as u64;
        if done == checkpoint || done == n {
            checkpoint *= 4;
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            let target = done / 2;
            let ans = s.query_rank(target.max(1)).unwrap();
            let lo = sorted.partition_point(|&x| x < ans) as u64 + 1;
            let hi = sorted.partition_point(|&x| x <= ans) as u64;
            let err = if target < lo {
                lo - target
            } else {
                target.saturating_sub(hi)
            };
            let budget = ((slack * done as f64) as u64).max(2);
            assert!(
                err <= budget,
                "{name}: prefix {done}, median err {err} > {budget}"
            );
        }
    }
}

#[test]
fn gk_answers_at_every_prefix() {
    check_prefix_medians(|| GkSummary::new(0.01), "gk", 0.011);
}

#[test]
fn greedy_gk_answers_at_every_prefix() {
    check_prefix_medians(|| GreedyGk::new(0.01), "gk-greedy", 0.011);
}

#[test]
fn mrl_answers_at_every_prefix() {
    check_prefix_medians(|| MrlSummary::new(0.01, 40_000), "mrl", 0.011);
}

#[test]
fn kll_answers_at_every_prefix() {
    check_prefix_medians(|| KllSketch::with_seed(256, 9), "kll", 0.03);
}

#[test]
fn ckms_answers_at_every_prefix() {
    check_prefix_medians(|| CkmsSummary::new(0.01), "ckms", 0.011);
}

#[test]
fn sampled_kll_answers_at_every_prefix() {
    check_prefix_medians(|| SampledKll::with_seed(256, 10), "kll-sampled", 0.04);
}

/// Soak: a deep adversarial run (N = 524 288) against GK with every
/// audit checked. ~seconds in release; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "soak test: run explicitly with --ignored in release mode"]
fn soak_deep_adversarial_run() {
    let eps = Eps::from_inverse(128);
    let k = 12; // N = 128 * 4096 = 524 288
    let rep = run_lower_bound(eps, k, || GkSummary::<Item>::new(eps.value()));
    assert!(rep.equivalence_ok);
    assert!(rep.final_gap <= rep.gap_ceiling);
    assert!(rep.max_stored as f64 >= rep.theorem22_bound);
    assert_eq!(rep.claim1_violations, 0);
    assert_eq!(rep.lemma52_violations, 0);
}

/// Soak: a million-item GK stream with rolling accuracy checks.
#[test]
#[ignore = "soak test: run explicitly with --ignored in release mode"]
fn soak_million_item_gk() {
    let n = 1_000_000u64;
    let eps = 0.001;
    let mut gk = GkSummary::new(eps);
    for v in shuffled(n, 0xB16) {
        gk.insert(v);
    }
    let budget = (eps * n as f64) as u64;
    for r in (1..=n).step_by(37_777) {
        let ans = gk.query_rank(r).unwrap();
        assert!(ans.abs_diff(r) <= budget, "rank {r}: {ans}");
    }
    assert!(gk.stored_count() < 4_000);
}
