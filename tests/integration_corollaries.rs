//! Cross-crate integration: the Section 6 corollaries driven end-to-end
//! with real summaries.

use cqs::core::adversary::run_adversary;
use cqs::core::biased::run_biased_phases;
use cqs::core::median::{median_reduction, MedianOutcome};
use cqs::core::rank_estimation::rank_failure_witness;
use cqs::prelude::*;

#[test]
fn median_reduction_on_correct_gk_hits_space_horn() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 6, || GkSummary::<Item>::new(eps.value()));
    let rep = median_reduction(out);
    assert!(matches!(rep.outcome, MedianOutcome::SpaceBound { .. }));
    assert!(rep.demonstrates_theorem());
}

#[test]
fn median_reduction_on_capped_gk_fails_the_median() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 7, || CappedGk::<Item>::new(eps.value(), 8));
    let rep = median_reduction(out);
    match rep.outcome {
        MedianOutcome::MedianFailure {
            err_pi,
            err_rho,
            budget,
            ..
        } => {
            assert!(err_pi > budget || err_rho > budget);
        }
        other => panic!("expected median failure, got {other:?}"),
    }
}

#[test]
fn rank_estimation_witness_shows_agreeing_estimates() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 7, || CappedGk::<Item>::new(eps.value(), 8));
    let w = rank_failure_witness(&out).expect("capped summary blows the gap");
    // The paper's core mechanism: both copies answer identically…
    assert!(
        w.estimates_agree,
        "comparison-based estimator must agree: {w:?}"
    );
    // …while the true ranks straddle the gap.
    assert!(w.true_rho - w.true_pi >= w.gap - 2);
    assert!(w.demonstrates_failure());
}

#[test]
fn rank_estimation_no_witness_for_correct_gk() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 6, || GkSummary::<Item>::new(eps.value()));
    assert!(rank_failure_witness(&out).is_none());
}

#[test]
fn biased_phases_ckms_retains_every_phase() {
    let eps = Eps::from_inverse(32);
    let rep = run_biased_phases(eps, 5, || CkmsSummary::<Item>::new(eps.value()));
    assert!(rep.equivalence_ok);
    for p in &rep.phase_audits {
        assert!(
            p.stored_at_stream_end as f64 >= p.bound,
            "phase {}: CKMS retained {} < per-phase bound {}",
            p.phase,
            p.stored_at_stream_end,
            p.bound
        );
    }
    assert!(rep.stored_final as f64 >= rep.total_bound);
}

#[test]
fn biased_phases_uniform_gk_forgets_early_phases() {
    // The contrast motivating Theorem 6.5: a uniform summary may forget
    // early phases once N has grown; a biased summary may not.
    let eps = Eps::from_inverse(32);
    let rep = run_biased_phases(eps, 6, || GkSummary::<Item>::new(eps.value()));
    assert!(rep.equivalence_ok);
    let first = &rep.phase_audits[0];
    assert!(
        first.stored_at_stream_end < first.stored_at_phase_end,
        "uniform GK should have compacted phase 1 away: {} -> {}",
        first.stored_at_phase_end,
        first.stored_at_stream_end
    );
}

#[test]
fn biased_phase_streams_grow_monotonically_across_phases() {
    let eps = Eps::from_inverse(16);
    let rep = run_biased_phases(eps, 4, || GkSummary::<Item>::new(eps.value()));
    // Each phase appends N_i = (1/eps)·2^i items.
    let expected: u64 = (1..=4u32).map(|i| eps.stream_len(i)).sum();
    assert_eq!(rep.total_len, expected);
}
