#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-streams — deterministic workload generators and report helpers
//!
//! Workloads for the benchmark harness (the Luo-et-al.-style comparison
//! table and the upper-bound profiles), all seeded and replayable:
//! sorted, reverse-sorted, uniformly shuffled, Zipf-skewed, clustered
//! ("normal-ish"), and a sawtooth pattern that stresses interior
//! insertion paths. Plus small helpers for writing the experiment tables
//! as aligned text and CSV.

mod ordf64;
mod report;
mod workloads;

pub use ordf64::OrdF64;
pub use report::{write_csv, Table};
pub use workloads::{workload, workload_names, Workload};

/// Compile-time audit that workload specs and result tables can cross
/// `cqs-bench` pool workers: cells carry a [`Workload`] out, rows come
/// back into a [`Table`]. Never called — the `sharding-send-sync` lint
/// rule derives this list from the spawn-site call graph and keeps the
/// lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit() {
    fn assert_send<T: Send>() {}
    assert_send::<Table>();
    assert_send::<Workload>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_have_right_length_and_are_deterministic() {
        for &name in workload_names() {
            let which: Workload = name.parse().expect("known workload");
            let w = workload(which, 10_000, 42).expect("non-empty");
            let w2 = workload(which, 10_000, 42).expect("non-empty");
            assert_eq!(w.len(), 10_000, "{name}: wrong length");
            assert_eq!(w, w2, "{name}: not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_workloads() {
        let a = workload(Workload::Shuffled, 1000, 1).unwrap();
        let b = workload(Workload::Shuffled, 1000, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn sorted_is_sorted_and_reverse_is_reverse() {
        let s = workload(Workload::Sorted, 500, 0).unwrap();
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let r = workload(Workload::Reverse, 500, 0).unwrap();
        assert!(r.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn shuffled_is_a_permutation() {
        let mut s = workload(Workload::Shuffled, 2000, 7).unwrap();
        s.sort_unstable();
        let expect: Vec<u64> = (1..=2000).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = workload(Workload::Zipf, 50_000, 3).unwrap();
        // Heavy head: the most common value should appear many times.
        let mut counts = std::collections::HashMap::new();
        for &x in &z {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let max_count = counts.values().copied().max().unwrap();
        assert!(max_count > 1_000, "zipf not skewed: top count {max_count}");
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(workload_by_name("nope", 10, 0).is_none());
    }

    fn workload_by_name(name: &str, n: u64, seed: u64) -> Option<Vec<u64>> {
        name.parse::<Workload>()
            .ok()
            .and_then(|w| workload(w, n, seed))
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb", "ccc"]);
        t.row(&["1", "22", "333"]);
        t.row(&["4444", "5", "6"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].contains("ccc"));
        assert!(lines.iter().all(|l| !l.is_empty()));
    }
}
