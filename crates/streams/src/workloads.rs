//! Seeded workload generators over `u64` values.

use std::str::FromStr;

use cqs_core::rng::SplitMix64;

/// The workload families used across the benchmark harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Workload {
    /// 1..=n in increasing order (the easiest stream for GK-style
    /// summaries: inserts always at the end).
    Sorted,
    /// n..=1 decreasing (inserts always at the front).
    Reverse,
    /// A uniform random permutation of 1..=n.
    Shuffled,
    /// Zipf(θ≈1)-distributed values over a domain of n/10 — heavy
    /// duplication at the head, the classic skewed-data stress.
    Zipf,
    /// Sum of four uniforms — a bell-shaped ("normal-ish") value
    /// distribution with dense middle and sparse tails.
    Clustered,
    /// Alternating low/high sawtooth — adversarial-ish interior inserts
    /// without needing the full lower-bound machinery.
    Sawtooth,
}

impl Workload {
    /// Stable lowercase name used in CSV output and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Sorted => "sorted",
            Workload::Reverse => "reverse",
            Workload::Shuffled => "shuffled",
            Workload::Zipf => "zipf",
            Workload::Clustered => "clustered",
            Workload::Sawtooth => "sawtooth",
        }
    }
}

impl FromStr for Workload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL.iter()
            .copied()
            .find(|w| w.name() == s)
            .ok_or_else(|| format!("unknown workload: {s}"))
    }
}

const ALL: [Workload; 6] = [
    Workload::Sorted,
    Workload::Reverse,
    Workload::Shuffled,
    Workload::Zipf,
    Workload::Clustered,
    Workload::Sawtooth,
];

/// Names of all workloads, in canonical order.
pub fn workload_names() -> &'static [&'static str] {
    &[
        "sorted",
        "reverse",
        "shuffled",
        "zipf",
        "clustered",
        "sawtooth",
    ]
}

/// Generates `n` items of the given workload with a fixed seed.
/// Returns `None` only for n = 0.
pub fn workload(which: Workload, n: u64, seed: u64) -> Option<Vec<u64>> {
    if n == 0 {
        return None;
    }
    let mut rng = SplitMix64::new(seed ^ 0xc0ffee);
    let out = match which {
        Workload::Sorted => (1..=n).collect(),
        Workload::Reverse => (1..=n).rev().collect(),
        Workload::Shuffled => {
            let mut v: Vec<u64> = (1..=n).collect();
            rng.shuffle(&mut v);
            v
        }
        Workload::Zipf => {
            // Inverse-CDF sampling of a truncated Zipf(1) over n/10
            // ranks; harmonic normalisation done once.
            let domain = (n / 10).max(10);
            let h: f64 = (1..=domain).map(|i| 1.0 / i as f64).sum();
            (0..n)
                .map(|_| {
                    let u = rng.next_f64() * h;
                    let mut acc = 0.0;
                    let mut k = 1u64;
                    while k < domain {
                        acc += 1.0 / k as f64;
                        if acc >= u {
                            break;
                        }
                        k += 1;
                    }
                    k
                })
                .collect()
        }
        Workload::Clustered => (0..n)
            .map(|_| {
                let s: u64 = (0..4).map(|_| rng.below(n / 4 + 1)).sum();
                s + 1
            })
            .collect(),
        Workload::Sawtooth => (0..n)
            .map(|i| if i % 2 == 0 { i / 2 + 1 } else { n - i / 2 })
            .collect(),
    };
    Some(out)
}
