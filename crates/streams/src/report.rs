//! Minimal aligned-text tables and CSV output for the experiment
//! binaries — every figure/theorem harness prints one of these and
//! mirrors it to `results/*.csv`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of heterogeneous displayables.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders with right-padded columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for i in 0..cols {
                widths[i] = widths[i].max(row[i].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", c, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&rule, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// The rows as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table's CSV next to the experiment outputs, creating the
/// directory if needed.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["a,b", "c\"d"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"c\"\"d\""));
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new(&["n", "f"]);
        t.row_display(&[&42u64, &1.5f64]);
        assert!(t.render().contains("42"));
        assert!(t.render().contains("1.5"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["only"]);
        t.row(&["a", "b"]);
    }
}
