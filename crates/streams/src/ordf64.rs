//! A totally ordered f64 wrapper for real-valued streams.
//!
//! The summaries are generic over `T: Ord`, and measurement data is
//! usually `f64`, which isn't. [`OrdF64`] wraps a non-NaN float with
//! `f64::total_cmp` ordering so latencies, sizes, and scores can flow
//! straight into any summary in the workspace.

use std::cmp::Ordering;
use std::fmt;

/// A non-NaN `f64` with total ordering.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a float.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN has no place in an order statistic.
    pub fn new(x: f64) -> Self {
        assert!(!x.is_nan(), "NaN cannot be ordered");
        OrdF64(x)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(x: f64) -> Self {
        OrdF64::new(x)
    }
}

impl From<OrdF64> for f64 {
    fn from(x: OrdF64) -> f64 {
        x.0
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_float_order() {
        let mut v = vec![
            OrdF64::new(3.5),
            OrdF64::new(-1.0),
            OrdF64::new(0.0),
            OrdF64::new(2.25),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 2.25, 3.5]);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        // total_cmp semantics, documented behaviour.
        assert!(OrdF64::new(-0.0) < OrdF64::new(0.0));
    }

    #[test]
    fn infinities_are_orderable() {
        assert!(OrdF64::new(f64::NEG_INFINITY) < OrdF64::new(f64::MAX));
        assert!(OrdF64::new(f64::MAX) < OrdF64::new(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OrdF64::new(f64::NAN);
    }
}
