#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-sampling — reservoir-sampling quantile summary
//!
//! The classic randomized baseline (cf. Manku–Rajagopalan–Lindsay 1999
//! and the experimental survey of Luo et al.): keep a uniform reservoir
//! of m items (Vitter's Algorithm R) and answer quantile queries from
//! the sorted sample. By the DKW inequality, m = ⌈ln(2/δ)/(2ε²)⌉ gives
//! ε-accurate ranks for *all* quantiles simultaneously with probability
//! 1 − δ.
//!
//! Note the contrast that motivates the paper: the sample size is
//! independent of N but quadratic in 1/ε, whereas deterministic
//! summaries pay (1/ε)·log εN — and the lower bound shows the log εN is
//! unavoidable without randomness.
//!
//! # Example
//!
//! ```
//! use cqs_sampling::ReservoirSummary;
//! use cqs_core::ComparisonSummary;
//!
//! let mut rs = ReservoirSummary::with_seed(0.05, 0.01, 7);
//! for x in 0..100_000u64 {
//!     rs.insert(x);
//! }
//! let med = rs.quantile(0.5).unwrap();
//! assert!((40_000..=60_000).contains(&med));
//! ```

use cqs_core::rng::SplitMix64;
use cqs_core::{ComparisonSummary, RankEstimator};

/// A reservoir-sampling summary with (ε, δ) guarantee.
#[derive(Clone, Debug)]
pub struct ReservoirSummary<T> {
    reservoir: Vec<T>,
    capacity: usize,
    n: u64,
    rng: SplitMix64,
    min: Option<T>,
    max: Option<T>,
    eps: f64,
}

impl<T: Ord + Clone> ReservoirSummary<T> {
    /// Creates a reservoir sized by the DKW bound for the requested
    /// (ε, δ).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn with_seed(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let m = ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize;
        Self::with_capacity(m.max(2), eps, seed)
    }

    /// Creates a reservoir with an explicit capacity (for space-accuracy
    /// sweeps).
    pub fn with_capacity(capacity: usize, eps: f64, seed: u64) -> Self {
        assert!(capacity >= 2);
        ReservoirSummary {
            reservoir: Vec::with_capacity(capacity),
            capacity,
            n: 0,
            rng: SplitMix64::new(seed),
            min: None,
            max: None,
            eps,
        }
    }

    /// The reservoir capacity m.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The ε this reservoir was sized for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    fn sorted_sample(&self) -> Vec<T> {
        let mut s = self.reservoir.clone();
        s.sort_unstable();
        s
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for ReservoirSummary<T> {
    fn insert(&mut self, item: T) {
        if self.min.as_ref().map(|m| item < *m).unwrap_or(true) {
            self.min = Some(item.clone());
        }
        if self.max.as_ref().map(|m| item > *m).unwrap_or(true) {
            self.max = Some(item.clone());
        }
        self.n += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(item);
        } else {
            // Algorithm R: replace a uniform slot with probability m/n.
            let j = self.rng.below(self.n);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = item;
            }
        }
    }

    fn item_array(&self) -> Vec<T> {
        let mut out = self.sorted_sample();
        out.extend(self.min.clone());
        out.extend(self.max.clone());
        out.sort_unstable();
        out.dedup();
        out
    }

    fn stored_count(&self) -> usize {
        self.reservoir.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        if r == 1 {
            return self.min.clone();
        }
        if r == self.n {
            return self.max.clone();
        }
        let s = self.sorted_sample();
        let m = s.len() as u64;
        let idx = ((r as u128 * m as u128 / self.n as u128) as u64).clamp(1, m) - 1;
        Some(s[idx as usize].clone())
    }

    fn name(&self) -> &'static str {
        "reservoir"
    }
}

impl<T: Ord + Clone> RankEstimator<T> for ReservoirSummary<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        if self.reservoir.is_empty() {
            return 0;
        }
        let le = self.reservoir.iter().filter(|x| *x <= q).count() as u128;
        (le * self.n as u128 / self.reservoir.len() as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn dkw_sizing() {
        let rs: ReservoirSummary<u64> = ReservoirSummary::with_seed(0.01, 0.01, 0);
        // ln(200)/(2·1e-4) ≈ 26 492.
        assert!((26_000..27_000).contains(&rs.capacity()));
    }

    #[test]
    fn reservoir_never_exceeds_capacity() {
        let mut rs = ReservoirSummary::with_capacity(100, 0.05, 1);
        for x in shuffled(10_000, 2) {
            rs.insert(x);
            assert!(rs.stored_count() <= 100);
        }
        assert_eq!(rs.stored_count(), 100);
    }

    #[test]
    fn quantiles_close_on_uniform_data() {
        let n = 100_000u64;
        let mut rs = ReservoirSummary::with_seed(0.02, 0.01, 3);
        for x in shuffled(n, 4) {
            rs.insert(x);
        }
        for phi in [0.1, 0.5, 0.9] {
            let ans = rs.quantile(phi).unwrap();
            let target = (phi * n as f64) as u64;
            assert!(
                ans.abs_diff(target) <= (0.02 * n as f64) as u64 * 2,
                "phi={phi}: ans {ans} target {target}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut rs = ReservoirSummary::with_capacity(10, 0.1, 5);
        for x in shuffled(5_000, 6) {
            rs.insert(x);
        }
        assert_eq!(rs.query_rank(1), Some(1));
        assert_eq!(rs.query_rank(5_000), Some(5_000));
    }

    #[test]
    fn rank_estimates_scale_to_stream_length() {
        let n = 50_000u64;
        let mut rs = ReservoirSummary::with_seed(0.02, 0.01, 7);
        for x in shuffled(n, 8) {
            rs.insert(x);
        }
        let est = rs.estimate_rank(&25_000);
        assert!(est.abs_diff(25_000) <= 2_500, "est {est}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut rs = ReservoirSummary::with_capacity(50, 0.05, 42);
            for x in shuffled(10_000, 9) {
                rs.insert(x);
            }
            rs.item_array()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_summary() {
        let rs: ReservoirSummary<u64> = ReservoirSummary::with_capacity(10, 0.1, 0);
        assert_eq!(rs.quantile(0.5), None);
        assert_eq!(rs.estimate_rank(&3), 0);
    }
}
