//! End-to-end walker tests against a synthetic workspace on disk.

use std::fs;
use std::path::PathBuf;

use cqs_xtask::run_workspace;

/// A scratch workspace under the target dir (always writable, never
/// scanned by the real walker since it lives in `target/`).
fn scratch(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn violating_crate_fails_the_gate() {
    let root = scratch("violating");
    let src_dir = root.join("crates/newsketch/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap;\n",
    )
    .unwrap();
    let report = run_workspace(&root).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert!(!report.is_clean());
    // Unknown crate names get the strictest (Summary) role.
    assert!(report.errors().any(|d| d.rule == "hash-default"));
    assert!(report.render().contains("hash-default"));
}

#[test]
fn target_hidden_and_fixture_dirs_are_skipped() {
    let root = scratch("skipped");
    for dir in ["target/debug", ".git/objects", "crates/x/tests/fixtures"] {
        let d = root.join(dir);
        fs::create_dir_all(&d).unwrap();
        fs::write(d.join("junk.rs"), "use std::collections::HashMap;\n").unwrap();
    }
    let report = run_workspace(&root).unwrap();
    assert_eq!(report.files_scanned, 0, "{:?}", report.diagnostics);
    assert!(report.is_clean());
}

#[test]
fn clean_crate_passes() {
    let root = scratch("clean");
    let src_dir = root.join("crates/tidy/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\n//! Docs.\n\npub fn id(x: u64) -> u64 { x }\n",
    )
    .unwrap();
    let report = run_workspace(&root).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert!(report.render().contains("0 errors"));
}
