//! Whole-workspace analysis tests: purity certification across crate
//! boundaries (the flow the per-file lexical rules cannot see) and the
//! byte-stable JSON surface the golden file pins down.

use cqs_xtask::lint::analysis::{CertStatus, FileInput};
use cqs_xtask::lint::{json, lint_inputs};

fn file(rel: &str, crate_name: &str, src: &str) -> FileInput {
    FileInput {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        role: cqs_xtask::lint::config::role_of(crate_name),
        test_file: false,
        is_lib_root: rel.ends_with("lib.rs"),
        src: src.to_string(),
    }
}

/// A summary whose `insert` hands the item to a helper in another
/// crate. Every line here is clean under the lexical rules.
const SUMMARY_SRC: &str = "#![forbid(unsafe_code)]\n\
    #![warn(missing_docs)]\n\
    //! Fixture summary. Never compiled.\n\
    \n\
    /// A toy summary.\n\
    pub struct Toy<T> {\n\
    \x20   items: Vec<T>,\n\
    }\n\
    \n\
    impl<T: Ord + Clone> Toy<T> {\n\
    \x20   /// Inserts one item.\n\
    \x20   pub fn insert(&mut self, item: T) {\n\
    \x20       let key = fingerprint(item.clone());\n\
    \x20       let _ = key;\n\
    \x20       self.items.push(item);\n\
    }\n\
    }\n";

/// The harness-side helper chain. The lexical comparison rules do not
/// apply to a Harness crate, so only the call graph can connect the
/// summary's item to the byte access two hops away.
fn harness_src(leaky: bool) -> String {
    let probe_body = if leaky {
        "    let bits = x as u64;\n    bits ^ 2654435769\n"
    } else {
        "    let _ = x;\n    0\n"
    };
    format!(
        "#![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         //! Fixture harness. Never compiled.\n\
         \n\
         /// Fingerprint of any value.\n\
         pub fn fingerprint<T>(x: T) -> u64 {{\n\
         \x20   probe(x)\n\
         }}\n\
         \n\
         fn probe<T>(x: T) -> u64 {{\n{probe_body}}}\n"
    )
}

fn leak_report(leaky: bool) -> cqs_xtask::LintReport {
    lint_inputs(vec![
        file("crates/gk/src/lib.rs", "gk", SUMMARY_SRC),
        file("crates/bench/src/lib.rs", "bench", &harness_src(leaky)),
    ])
}

#[test]
fn item_leak_through_a_cross_crate_helper_refuses_the_certificate() {
    let report = leak_report(true);
    let cert = report
        .certificates
        .iter()
        .find(|c| c.crate_name == "gk")
        .expect("no certificate for gk");
    assert_eq!(
        cert.status,
        CertStatus::Refused,
        "byte access behind two helper hops went uncaught: {:?}",
        report.diagnostics
    );
    // The violation sits in the *harness* file — invisible to the
    // per-file lexical rules there — and is attributed to the summary's
    // certificate with the full call chain spelled out.
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "model-purity")
        .expect("no model-purity diagnostic");
    assert_eq!(d.file, "crates/bench/src/lib.rs");
    assert!(d.message.contains("[cqs-gk]"), "{}", d.message);
    assert!(
        d.message.contains("insert")
            && d.message.contains("fingerprint")
            && d.message.contains("probe"),
        "chain missing from message: {}",
        d.message
    );
}

#[test]
fn opaque_cross_crate_helper_keeps_the_certificate() {
    let report = leak_report(false);
    let cert = report
        .certificates
        .iter()
        .find(|c| c.crate_name == "gk")
        .expect("no certificate for gk");
    assert_eq!(cert.status, CertStatus::Certified, "{:?}", cert.reasons);
    // The external `push` on the container plus nothing else: the
    // helper chain is traversed, not assumed.
    assert!(cert.fns_analyzed >= 3, "{cert:?}");
}

/// The JSON surface is a contract: same findings in, same bytes out.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p cqs-xtask`.
#[test]
fn json_report_matches_the_golden_file() {
    let a = json::render(&leak_report(true));
    let b = json::render(&leak_report(true));
    assert_eq!(a, b, "two identical runs rendered different bytes");

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lint_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &a).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "missing tests/golden/lint_report.json — run UPDATE_GOLDEN=1 cargo test -p cqs-xtask",
    );
    assert_eq!(
        a, golden,
        "JSON output drifted from the golden file; if intentional, \
         refresh it with UPDATE_GOLDEN=1 cargo test -p cqs-xtask"
    );
}
