//! Fixture: persists checkpoint bytes with direct writes, bypassing the
//! temp+rename helper in `cqs_snapshot::atomic`. A crash between create
//! and write leaves a torn file where the recovery machinery expects a
//! checksummed snapshot — the `snapshot-atomicity` rule must flag both
//! sites, and must stay quiet on the plain report writer.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Truncates the live checkpoint in place (enclosing fn names the sin).
pub fn save_checkpoint(path: &Path, bytes: &[u8]) {
    let mut f = File::create(path).expect("create");
    f.write_all(bytes).expect("write");
}

/// The variable names the sin even though the fn does not.
pub fn persist(ckpt_path: &Path, bytes: &[u8]) {
    std::fs::write(ckpt_path, bytes).expect("write");
}

/// A CSV report writer: losing a report just re-runs a sweep, so this
/// is not recovery-critical and must stay quiet.
pub fn write_report(path: &Path, csv: &str) {
    std::fs::write(path, csv).expect("write");
}
