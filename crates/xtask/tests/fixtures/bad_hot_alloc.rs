//! Fixture: heap allocation on the summary hot paths. Never compiled.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub struct Wasteful {
    tuples: Vec<u64>,
}

impl Wasteful {
    pub fn insert(&mut self, item: u64) {
        let snapshot = self.tuples.clone();
        drop(snapshot);
        self.tuples.push(item);
    }

    pub fn query_rank(&self, r: u64) -> String {
        format!("rank {r}")
    }

    pub fn merge(&mut self, other: &Wasteful) {
        let copied = other.tuples.to_vec();
        self.tuples.extend(copied);
    }

    pub fn quantile(&self, _q: f64) -> Option<u64> {
        // Element clones and `.cloned()` are per-item currency: quiet.
        let first = self.tuples.first().cloned();
        first
    }

    pub fn item_array(&self) -> Vec<u64> {
        // Not a hot-path fn: wholesale clones are fine here.
        self.tuples.clone()
    }
}
