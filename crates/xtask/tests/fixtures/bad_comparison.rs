//! Fixture: a "summary" that leaves the comparison model four ways.
//! Never compiled — scanned by the rule tests in ../rules.rs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Add;

pub struct Sketch<T> {
    items: Vec<T>,
}

impl<T: Ord + Add<Output = T>> Sketch<T> {
    pub fn centroid_weight(&self, x: f64) -> u64 {
        x.to_bits()
    }

    pub fn sneak(&self, x: u64) -> u64 {
        unsafe { std::mem::transmute::<u64, u64>(x) }
    }

    pub fn invent(&self) -> Vec<u8> {
        from_label(b"made-up")
    }
}
