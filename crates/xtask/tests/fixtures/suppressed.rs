//! Fixture: every violation carries a suppression. Never compiled.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
// cqs-lint: allow-file(wall-clock)

use std::collections::HashMap; // cqs-lint: allow(hash-default)
use std::time::Instant;

pub struct Excused {
    counts: HashMap<u64, u64>, // cqs-lint: allow(hash-default)
}

impl Excused {
    pub fn insert(&mut self, item: u64) {
        // Invariant: counts is seeded in new(), so the entry exists.
        // cqs-lint: allow(hot-path-panic)
        let c = self.counts.get_mut(&0).expect("seeded");
        *c += item;
        let _t = Instant::now();
        // Snapshotting the table is part of this toy type's contract.
        // cqs-lint: allow(hot-path-alloc)
        let _snapshot = self.counts.clone();
    }
}
