//! Fixture: panicking constructs reachable from the guarded adversary
//! driver entry points (`try_run` and friends) — the driver-no-panic
//! reachability analysis must flag every one of them in a Core-role
//! crate, including helpers whose names no list mentions, and stay
//! quiet for functions the roots cannot reach. Never compiled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub struct Driver {
    steps: u64,
}

impl Driver {
    pub fn try_run(&mut self, k: u32) -> Result<u64, String> {
        // A raw unwrap in the guarded driver would escape as an unwind.
        let depth = k.checked_sub(1).unwrap();
        let _probe = self.final_rank_probe();
        self.try_adv(depth)
    }

    fn try_adv(&mut self, depth: u32) -> Result<u64, String> {
        if depth == 0 {
            return self.try_leaf();
        }
        unreachable!("depth bookkeeping broke");
    }

    fn try_leaf(&mut self) -> Result<u64, String> {
        self.steps = self.audit_helper();
        Ok(self.steps)
    }

    fn audit_helper(&self) -> u64 {
        // Not a `try_*` name: only call-graph reachability sees this.
        self.steps.checked_add(1).expect("audit overflow")
    }

    fn try_refine_from(&self) -> Result<u64, String> {
        Err("refine".to_string())
    }

    fn final_rank_probe(&self) -> u64 {
        self.steps.checked_mul(2).expect("probe overflow")
    }

    fn quantile_failure_witness(&self) -> u64 {
        // Witness extraction runs on driver output: also guarded.
        self.steps.checked_mul(3).expect("witness overflow")
    }

    pub fn run(&mut self) -> u64 {
        // The legacy panicking driver is not a root and nothing reaches
        // it from one: not flagged.
        self.steps.checked_add(1).unwrap()
    }

    fn helper_may_unwrap(&self) -> u64 {
        // Unreachable from every driver root: unwrap is allowed here.
        self.steps.checked_sub(1).unwrap()
    }
}
