//! Fixture: no crate attributes, panicking hot path, raw float equality.
//! Never compiled.

pub struct Fragile {
    items: Vec<u64>,
    weight: f64,
}

impl Fragile {
    pub fn insert(&mut self, item: u64) {
        let last = self.items.last().copied().unwrap();
        if self.weight == 1.0 {
            panic!("full");
        }
        self.items.push(item.max(last));
    }

    pub fn helper_may_unwrap(&self) -> u64 {
        // Not a hot-path fn name: unwrap is allowed here.
        self.items.first().copied().unwrap()
    }
}
