//! Fixture: a model-conformant summary skeleton. Never compiled.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub struct Tidy<T> {
    items: Vec<T>,
    ranks: BTreeMap<u64, u64>,
}

impl<T: Ord + Clone> Tidy<T> {
    pub fn insert(&mut self, item: T) {
        let pos = self.items.partition_point(|x| *x <= item);
        self.items.insert(pos, item);
    }

    pub fn query_rank(&self, r: u64) -> Option<&T> {
        self.items.get(r.saturating_sub(1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        let _t = Instant::now();
        assert_eq!(m[&1], 2);
    }
}
