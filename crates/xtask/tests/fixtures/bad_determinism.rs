//! Fixture: hidden inputs everywhere. Never compiled.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::Instant;

pub struct Flaky {
    counts: HashMap<u64, u64>,
}

impl Flaky {
    pub fn tick(&mut self) -> u128 {
        let mut rng = thread_rng();
        Instant::now().elapsed().as_nanos()
    }
}
