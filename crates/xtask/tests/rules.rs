//! Fixture-driven tests: every rule must fire on its violating fixture
//! and stay silent on the clean/suppressed ones. The fixtures under
//! `fixtures/` are scanned as text (never compiled) and are skipped by
//! the workspace walker, so they can be as broken as they like.

use cqs_xtask::lint::analysis::FileInput;
use cqs_xtask::lint::rules::{all_rules, analysis_rules};
use cqs_xtask::lint::{lint_inputs, lint_source};
use cqs_xtask::Severity;

const BAD_COMPARISON: &str = include_str!("fixtures/bad_comparison.rs");
const BAD_DETERMINISM: &str = include_str!("fixtures/bad_determinism.rs");
const BAD_ROBUSTNESS: &str = include_str!("fixtures/bad_robustness.rs");
const BAD_HOT_ALLOC: &str = include_str!("fixtures/bad_hot_alloc.rs");
const BAD_DRIVER: &str = include_str!("fixtures/bad_driver.rs");
const BAD_SNAPSHOT: &str = include_str!("fixtures/bad_snapshot_atomicity.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");

/// Lints a fixture as if it were `crates/gk/src/lib.rs` (Summary role,
/// the strictest configuration).
fn lint_as_summary(src: &str) -> Vec<cqs_xtask::lint::Diagnostic> {
    lint_source("gk", "src/lib.rs", src)
}

fn rules_fired(diags: &[cqs_xtask::lint::Diagnostic]) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn comparison_fixture_fires_all_four_rules() {
    let fired = rules_fired(&lint_as_summary(BAD_COMPARISON));
    for rule in ["item-arithmetic", "item-bits", "transmute", "item-mint"] {
        assert!(fired.contains(&rule), "{rule} did not fire: {fired:?}");
    }
}

#[test]
fn determinism_fixture_fires_all_three_rules() {
    let diags = lint_as_summary(BAD_DETERMINISM);
    let fired = rules_fired(&diags);
    for rule in ["hash-default", "ambient-rng", "wall-clock"] {
        assert!(fired.contains(&rule), "{rule} did not fire: {fired:?}");
    }
    // HashMap appears on both the use and the field line.
    assert!(diags.iter().filter(|d| d.rule == "hash-default").count() >= 2);
}

#[test]
fn determinism_fixture_is_fine_as_a_harness() {
    // bench/cli may time and hash; ambient RNG is still out.
    let diags = lint_source("bench", "src/lib.rs", BAD_DETERMINISM);
    let fired = rules_fired(&diags);
    assert!(!fired.contains(&"hash-default"), "{fired:?}");
    assert!(!fired.contains(&"wall-clock"), "{fired:?}");
    assert!(fired.contains(&"ambient-rng"), "{fired:?}");
}

#[test]
fn robustness_fixture_fires_attr_panic_and_float_rules() {
    let diags = lint_as_summary(BAD_ROBUSTNESS);
    let fired = rules_fired(&diags);
    for rule in [
        "forbid-unsafe",
        "missing-docs-attr",
        "hot-path-panic",
        "float-eq",
    ] {
        assert!(fired.contains(&rule), "{rule} did not fire: {fired:?}");
    }
    // unwrap() outside a hot-path fn must not fire.
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "hot-path-panic" && d.line > 17),
        "helper fn was wrongly treated as a hot path: {diags:?}"
    );
    // panic! and unwrap inside insert() both fire.
    assert!(diags.iter().filter(|d| d.rule == "hot-path-panic").count() >= 2);
}

#[test]
fn hot_alloc_fixture_fires_once_per_alloc_pattern() {
    let diags = lint_as_summary(BAD_HOT_ALLOC);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "hot-path-alloc")
        .collect();
    // Exactly three: container clone in insert, format! in query_rank,
    // to_vec in merge. quantile's element clone and item_array's
    // (non-hot-path) wholesale clone stay quiet.
    assert_eq!(hits.len(), 3, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    for f in ["insert", "query_rank", "merge"] {
        assert!(
            hits.iter().any(|d| d.message.contains(&format!("`{f}`"))),
            "no hot-path-alloc hit inside {f}: {hits:?}"
        );
    }
}

#[test]
fn hot_alloc_does_not_apply_to_harness_crates() {
    let diags = lint_source("bench", "src/lib.rs", BAD_HOT_ALLOC);
    assert!(
        !rules_fired(&diags).contains(&"hot-path-alloc"),
        "{diags:?}"
    );
}

#[test]
fn driver_fixture_fires_on_everything_reachable_from_the_roots() {
    let diags = lint_source("core", "src/lib.rs", BAD_DRIVER);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "driver-no-panic")
        .collect();
    // Exactly five: unwrap in try_run (a root), unreachable! in try_adv
    // and expect in final_rank_probe (both reached from try_run), expect
    // in audit_helper (a helper no name list mentions — only the call
    // graph finds it, via try_adv -> try_leaf), and expect in
    // quantile_failure_witness (a root). The legacy `run` and
    // helper_may_unwrap keep their unwraps: no root reaches them.
    assert_eq!(hits.len(), 5, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    for f in [
        "try_run",
        "try_adv",
        "audit_helper",
        "final_rank_probe",
        "quantile_failure_witness",
    ] {
        assert!(
            hits.iter().any(|d| d.message.contains(&format!("`{f}`"))),
            "no driver-no-panic hit inside {f}: {hits:?}"
        );
    }
    // The call chain is spelled out in the message.
    assert!(
        hits.iter().any(|d| d
            .message
            .contains("try_run -> try_adv -> try_leaf -> audit_helper")),
        "{hits:?}"
    );
    assert!(
        !hits
            .iter()
            .any(|d| d.message.contains("`run`") || d.message.contains("`helper_may_unwrap`")),
        "unreachable fns were flagged: {hits:?}"
    );
}

#[test]
fn driver_rule_does_not_apply_outside_core() {
    for krate in ["gk", "bench", "faults"] {
        let diags = lint_source(krate, "src/lib.rs", BAD_DRIVER);
        assert!(
            !rules_fired(&diags).contains(&"driver-no-panic"),
            "driver-no-panic fired for role of `{krate}`: {diags:?}"
        );
    }
}

#[test]
fn driver_rule_covers_snapshot_restore_roots() {
    // `read_sections` is a restore entry point: corrupt bytes must come
    // back as typed RestoreError values, so a panic reachable from it —
    // even in a helper only the call graph can see — fails the gate.
    let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\
        pub fn read_sections(bytes: &[u8]) -> Vec<u8> {\n    \
        decode_one(bytes)\n}\n\
        fn decode_one(bytes: &[u8]) -> Vec<u8> {\n    \
        bytes.split_first().unwrap();\n    bytes.to_vec()\n}\n";
    let diags = lint_source("snapshot", "src/wire.rs", src);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "driver-no-panic")
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(hits[0].message.contains("`decode_one`"), "{hits:?}");
    // The same source in a harness crate is not a restore path.
    let diags = lint_source("bench", "src/lib.rs", src);
    assert!(
        !rules_fired(&diags).contains(&"driver-no-panic"),
        "{diags:?}"
    );
}

#[test]
fn snapshot_atomicity_fires_on_direct_checkpoint_writes() {
    let diags = lint_source("bench", "src/checkpoint.rs", BAD_SNAPSHOT);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "snapshot-atomicity")
        .collect();
    // Exactly two: File::create inside save_checkpoint and fs::write on
    // ckpt_path. The plain report writer stays quiet.
    assert_eq!(hits.len(), 2, "{diags:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    assert!(
        hits.iter().any(|d| d.message.contains("`File::create`")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|d| d.message.contains("`fs::write`")),
        "{hits:?}"
    );
}

#[test]
fn snapshot_atomicity_exempts_only_the_atomic_helper() {
    // The temp+rename helper is the one file allowed to touch disk.
    let diags = lint_source("snapshot", "crates/snapshot/src/atomic.rs", BAD_SNAPSHOT);
    assert!(
        !rules_fired(&diags).contains(&"snapshot-atomicity"),
        "{diags:?}"
    );
    // Everywhere else in the snapshot crate, every byte written is wire
    // format: all three writes fire, token or not.
    let diags = lint_source("snapshot", "crates/snapshot/src/wire.rs", BAD_SNAPSHOT);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.rule == "snapshot-atomicity")
            .count(),
        3,
        "{diags:?}"
    );
}

/// A minimal spawn site: `run_cells` hands `Cell` values to a worker
/// pool, so `Cell` must carry an `assert_send` audit in its crate.
fn pool_inputs(with_audit: bool) -> Vec<FileInput> {
    let mut src = String::from(
        "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\
         pub struct Cell {\n    pub id: u64,\n}\n\
         pub fn run_cells(cells: Vec<Cell>) {\n    std::thread::scope(|s| {\n        \
         for c in &cells {\n            s.spawn(|| run_one(c));\n        }\n    });\n}\n\
         fn run_one(_c: &Cell) {}\n",
    );
    if with_audit {
        src.push_str(
            "fn sharding_send_audit() {\n    fn assert_send<T: Send>() {}\n    \
             assert_send::<Cell>();\n}\n",
        );
    }
    vec![FileInput {
        rel: "crates/bench/src/lib.rs".to_string(),
        crate_name: "bench".to_string(),
        role: cqs_xtask::lint::config::role_of("bench"),
        test_file: false,
        is_lib_root: true,
        src,
    }]
}

#[test]
fn sharding_send_sync_derives_pool_types_from_the_graph() {
    let report = lint_inputs(pool_inputs(false));
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "sharding-send-sync")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert!(hits[0].message.contains("`Cell`"), "{hits:?}");
    assert!(hits[0].message.contains("run_cells"), "{hits:?}");
    assert_eq!(hits[0].severity, Severity::Error);

    let report = lint_inputs(pool_inputs(true));
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.rule == "sharding-send-sync"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn sharding_send_sync_is_quiet_without_a_spawn_site() {
    let bare = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub struct Item;\n";
    assert!(
        !rules_fired(&lint_source("universe", "src/lib.rs", bare)).contains(&"sharding-send-sync")
    );
}

#[test]
fn missing_docs_is_a_warning_not_an_error() {
    let diags = lint_as_summary(BAD_ROBUSTNESS);
    let d = diags
        .iter()
        .find(|d| d.rule == "missing-docs-attr")
        .unwrap();
    assert_eq!(d.severity, Severity::Warning);
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn clean_fixture_is_clean_even_as_summary() {
    let diags = lint_as_summary(CLEAN);
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn suppressions_silence_each_diagnostic() {
    let diags = lint_as_summary(SUPPRESSED);
    assert!(
        diags.is_empty(),
        "suppressed fixture still flagged: {diags:?}"
    );
}

#[test]
fn diagnostics_carry_file_line_and_render() {
    let diags = lint_as_summary(BAD_DETERMINISM);
    let d = diags.iter().find(|d| d.rule == "hash-default").unwrap();
    assert_eq!(d.file, "src/lib.rs");
    assert!(d.line >= 1);
    let rendered = d.to_string();
    assert!(
        rendered.contains("error[hash-default]: src/lib.rs:"),
        "{rendered}"
    );
}

#[test]
fn registry_covers_every_fixture_rule() {
    let mut ids: Vec<&str> = all_rules().iter().map(|r| r.id).collect();
    ids.extend(analysis_rules().iter().map(|m| m.id));
    for rule in [
        "item-arithmetic",
        "item-bits",
        "transmute",
        "item-mint",
        "hash-default",
        "ambient-rng",
        "wall-clock",
        "forbid-unsafe",
        "missing-docs-attr",
        "hot-path-panic",
        "driver-no-panic",
        "hot-path-alloc",
        "sharding-send-sync",
        "float-eq",
        "snapshot-atomicity",
        "model-purity",
        "reachable-indexing",
        "unused-allow",
        "stale-baseline",
    ] {
        assert!(ids.contains(&rule), "registry lost rule {rule}");
    }
}
