#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-xtask — the model-conformance lint engine
//!
//! The lower bound of Cormode & Veselý holds only for summaries that are
//! *comparison-based* (Definition 2.1) and *deterministic*: Gupta,
//! Singhal & Wu (2024) show that leaving the comparison model breaks the
//! Ω((1/ε)·log εN) bound, and KLL evades it via randomness — which this
//! workspace deliberately freezes behind fixed seeds. The Rust type
//! system guards part of that boundary (summaries are generic over
//! `T: Ord` and instantiated with the opaque `cqs_universe::Item`),
//! but nothing in `cargo test` stops a future refactor from casting
//! items to bits, pulling in a randomly seeded `HashMap`, or branching
//! on wall-clock time.
//!
//! This crate is that missing enforcement layer: a std-only static
//! analysis engine. The per-file lexical rules (see [`lint::rules`])
//! check three families — **comparison-model** (summary crates must
//! treat items opaquely), **determinism** (library behaviour must be a
//! pure function of comparison outcomes, Lemma 3.4's
//! indistinguishability argument), and **robustness**
//! (`#![forbid(unsafe_code)]`, no raw float equality). On top of those,
//! a whole-workspace pass (see [`lint::analysis`]) tokenizes every
//! file, indexes its items, and builds a cross-crate call graph to run:
//!
//! * **purity certification** — a taint analysis proving each summary
//!   crate's item values flow only into `Ord`/`Eq`/`Clone` operations,
//!   emitting a per-crate `ModelCertificate` (and *refusing* one for
//!   the bounded-universe `cqs-qdigest`, which is the point: the lower
//!   bound only constrains certified crates);
//! * **panic reachability** — from the `try_*` driver entry points and
//!   the summary hot paths, replacing the old name-list heuristics;
//! * **shared-state audit** — derives the set of types riding the
//!   parallel sweep pool and checks their `assert_send` audits.
//!
//! Run it as `cargo run -p cqs-xtask -- lint` (add `--json` for the
//! machine-readable report, byte-stable for the committed
//! `lint-baseline.json`); it is also embedded in tier-1 via the root
//! package's `tests/conformance.rs`. Suppress a finding with a
//! documented `// cqs-lint: allow(<rule>)` comment on (or directly
//! above) the offending line, or `// cqs-lint: allow-file(<rule>)`
//! anywhere in the file — unused directives are themselves reported.
//! DESIGN.md's "Model enforcement" section maps every rule to the paper
//! condition it guards.

pub mod lint;

pub use lint::{run_workspace, LintReport, Severity};
