//! Comparison-model rules (Definition 2.1).
//!
//! A comparison-based summary may store, copy, and compare items — and
//! nothing else. Conditions (i)–(iv) of Definition 2.1 make the
//! summary's behaviour a function of the *ordering pattern* of the
//! stream alone; the lower bound's adversary (and the indistinguish-
//! ability argument behind Lemma 3.4) collapses the moment a summary
//! inspects an item's representation. These rules keep the summary
//! crates inside that model.

use super::super::config::Role;
use super::super::scanner::contains_word;
use super::{Rule, RuleCtx};
use crate::lint::{Diagnostic, Severity};

/// Trait bounds that would let a summary do more than compare its items.
/// `Ord`, `Clone`, `Eq` are the allowed vocabulary; anything arithmetic,
/// bitwise, hashing, or numeric-converting leaves the model.
const FORBIDDEN_BOUNDS: &[&str] = &[
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Rem",
    "Shl",
    "Shr",
    "BitAnd",
    "BitOr",
    "BitXor",
    "Hash",
    "ToPrimitive",
    "AsPrimitive",
    "NumCast",
    "Float",
];

/// Methods that read an item's bit representation.
const BIT_METHODS: &[&str] = &[
    "to_bits",
    "from_bits",
    "to_ne_bytes",
    "from_ne_bytes",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
];

/// Universe-construction entry points; only `cqs-universe` (and the
/// adversary harness that drives it) may mint items.
const MINT_FNS: &[&str] = &["from_label", "generate_increasing"];

static ITEM_ARITHMETIC: Rule = Rule {
    id: "item-arithmetic",
    severity: Severity::Error,
    rationale: "summary item types may only be bounded by comparison traits (Definition 2.1: \
                items are opaque; only <, =, > outcomes may influence behaviour)",
    applies: Role::comparison_rules,
    check: check_item_arithmetic,
};

static ITEM_BITS: Rule = Rule {
    id: "item-bits",
    severity: Severity::Error,
    rationale: "reading an item's bit pattern (to_bits/to_ne_bytes/...) leaves the comparison \
                model and voids the lower bound's adversary argument",
    applies: Role::comparison_rules,
    check: check_item_bits,
};

static TRANSMUTE: Rule = Rule {
    id: "transmute",
    severity: Severity::Error,
    rationale: "transmute can reinterpret items as numbers (and is unsafe besides); \
                never model-conformant",
    applies: |_| true,
    check: check_transmute,
};

static ITEM_MINT: Rule = Rule {
    id: "item-mint",
    severity: Severity::Error,
    rationale: "only cqs-universe may construct items; a summary that mints items can answer \
                queries with values never observed, outside Definition 2.1(iv)",
    applies: Role::comparison_rules,
    check: check_item_mint,
};

/// The comparison-model rule set.
pub fn rules() -> Vec<&'static Rule> {
    vec![&ITEM_ARITHMETIC, &ITEM_BITS, &TRANSMUTE, &ITEM_MINT]
}

fn check_item_arithmetic(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        // Bounds appear in generics and where-clauses; an `impl Add for`
        // on an internal numeric type would also (rightly) be flagged —
        // a summary crate has no business defining arithmetic.
        for bound in FORBIDDEN_BOUNDS {
            if contains_word(&line.code, bound) {
                ctx.emit(
                    out,
                    &ITEM_ARITHMETIC,
                    line.number,
                    format!(
                        "non-comparison trait `{bound}` in a summary crate; items admit only \
                         Ord/Eq/Clone"
                    ),
                );
                break;
            }
        }
    }
}

fn check_item_bits(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        for m in BIT_METHODS {
            if contains_word(&line.code, m) {
                ctx.emit(
                    out,
                    &ITEM_BITS,
                    line.number,
                    format!(
                        "`{m}` inspects a value's representation; summaries must treat \
                             items opaquely"
                    ),
                );
                break;
            }
        }
    }
}

fn check_transmute(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if contains_word(&line.code, "transmute") {
            ctx.emit(
                out,
                &TRANSMUTE,
                line.number,
                "mem::transmute is forbidden everywhere in this workspace".to_string(),
            );
        }
    }
}

fn check_item_mint(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        for f in MINT_FNS {
            if contains_word(&line.code, f) {
                ctx.emit(
                    out,
                    &ITEM_MINT,
                    line.number,
                    format!(
                        "`{f}` constructs universe items; summaries may only store and \
                             compare what they are given"
                    ),
                );
                break;
            }
        }
    }
}
