//! Determinism rules (Lemma 3.4 / Section 6.3).
//!
//! The adversary's indistinguishability argument requires that the
//! summary's state be a pure function of the comparison outcomes it has
//! observed. Per-process hash seeding, ambient randomness, and
//! wall-clock reads all smuggle in hidden inputs: two runs on the same
//! ordering pattern could diverge, and the Lemma 3.4 bookkeeping (which
//! replays decisions) would silently desynchronise. Randomised
//! algorithms (KLL, reservoir sampling) are supported — but only via
//! explicitly seeded in-tree PRNGs (`cqs_core::SplitMix64`), which is
//! exactly the Section 6.3 derandomisation discipline.

use super::super::config::Role;
use super::super::scanner::contains_word;
use super::{Rule, RuleCtx};
use crate::lint::{Diagnostic, Severity};

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const RNG_SOURCES: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];
const CLOCKS: &[&str] = &["Instant", "SystemTime"];

static HASH_DEFAULT: Rule = Rule {
    id: "hash-default",
    severity: Severity::Error,
    rationale: "std HashMap/HashSet seed their hasher per process, so iteration order is \
                nondeterministic; use BTreeMap/BTreeSet (also the comparison-model-native \
                choice)",
    applies: Role::determinism_rules,
    check: check_hash_default,
};

static AMBIENT_RNG: Rule = Rule {
    id: "ambient-rng",
    severity: Severity::Error,
    rationale: "ambient entropy (thread_rng/OsRng/...) makes runs irreproducible; randomised \
                summaries must take an explicit seed (Section 6.3 derandomisation). Applies \
                to harness crates too: EXPERIMENTS.md numbers must be regenerable",
    applies: |_| true,
    check: check_ambient_rng,
};

static WALL_CLOCK: Rule = Rule {
    id: "wall-clock",
    severity: Severity::Error,
    rationale: "Instant/SystemTime reads are hidden inputs; library behaviour must depend \
                only on the stream's ordering pattern",
    applies: Role::wall_clock_rule,
    check: check_wall_clock,
};

/// The determinism rule set.
pub fn rules() -> Vec<&'static Rule> {
    vec![&HASH_DEFAULT, &AMBIENT_RNG, &WALL_CLOCK]
}

fn check_words(
    ctx: &RuleCtx<'_>,
    rule: &'static Rule,
    words: &[&str],
    msg: fn(&str) -> String,
    out: &mut Vec<Diagnostic>,
) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        for w in words {
            if contains_word(&line.code, w) {
                ctx.emit(out, rule, line.number, msg(w));
                break;
            }
        }
    }
}

fn check_hash_default(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    check_words(
        ctx,
        &HASH_DEFAULT,
        HASH_TYPES,
        |w| format!("`{w}` has a per-process random hasher; use the BTree equivalent"),
        out,
    );
}

fn check_ambient_rng(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    check_words(
        ctx,
        &AMBIENT_RNG,
        RNG_SOURCES,
        |w| format!("`{w}` draws ambient entropy; thread a seeded cqs_core::SplitMix64 instead"),
        out,
    );
}

fn check_wall_clock(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    check_words(
        ctx,
        &WALL_CLOCK,
        CLOCKS,
        |w| format!("`{w}` reads the wall clock; only harness crates may time things"),
        out,
    );
}
