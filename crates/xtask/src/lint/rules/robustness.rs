//! Robustness rules (the lexical remainder).
//!
//! The adversary exists to feed summaries their worst case; a summary
//! that panics mid-attack has not "used little space", it has failed.
//! The panic rules themselves (`driver-no-panic`, `hot-path-panic`) and
//! the shared-state audit (`sharding-send-sync`) moved to the
//! call-graph [`analysis`](super::super::analysis) passes — name lists
//! could not see helpers, and the hand-maintained type table could not
//! see new pool call sites. What remains lexical here: memory safety
//! must be declared at the crate root, raw float equality is forbidden
//! (`OrdF64` in cqs-streams exists precisely so ordering and equality
//! agree via `total_cmp`), and hot paths should not heap-allocate per
//! call — the batched insert APIs and reusable scratch buffers exist so
//! that they never have to.

use super::super::config::{Role, HOT_PATH_FNS};
use super::super::scanner::contains_word;
use super::{Rule, RuleCtx};
use crate::lint::{Diagnostic, Severity};

static FORBID_UNSAFE: Rule = Rule {
    id: "forbid-unsafe",
    severity: Severity::Error,
    rationale: "every library crate must declare #![forbid(unsafe_code)] so the no-unsafe \
                guarantee is local and survives workspace-config drift",
    applies: |_| true,
    check: check_forbid_unsafe,
};

static MISSING_DOCS_ATTR: Rule = Rule {
    id: "missing-docs-attr",
    severity: Severity::Warning,
    rationale: "library crates should carry #![warn(missing_docs)]; the paper-facing API is \
                the documentation of record",
    applies: |_| true,
    check: check_missing_docs_attr,
};

static HOT_PATH_ALLOC: Rule = Rule {
    id: "hot-path-alloc",
    severity: Severity::Warning,
    rationale: "insert/query hot paths should not heap-allocate per call (to_vec, format!, \
                wholesale container clones); use insert_sorted_run batching and scratch buffers",
    applies: Role::hot_path_rules,
    check: check_hot_path_alloc,
};

static FLOAT_EQ: Rule = Rule {
    id: "float-eq",
    severity: Severity::Error,
    rationale: "==/!= against float literals or NaN/INFINITY is order-unstable; use OrdF64 \
                (total_cmp) or an epsilon comparison",
    applies: |_| true,
    check: check_float_eq,
};

static SNAPSHOT_ATOMICITY: Rule = Rule {
    id: "snapshot-atomicity",
    severity: Severity::Error,
    rationale: "checkpoint/snapshot files must go through cqs_snapshot::atomic (write a temp \
                sibling, fsync-free rename); a direct File::create/fs::write on a checkpoint \
                path leaves a torn file if the process dies mid-write",
    applies: |_| true,
    check: check_snapshot_atomicity,
};

/// The robustness rule set.
pub fn rules() -> Vec<&'static Rule> {
    vec![
        &FORBID_UNSAFE,
        &MISSING_DOCS_ATTR,
        &HOT_PATH_ALLOC,
        &FLOAT_EQ,
        &SNAPSHOT_ATOMICITY,
    ]
}

fn check_forbid_unsafe(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_root {
        return;
    }
    let found = ctx
        .file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !found {
        ctx.emit(
            out,
            &FORBID_UNSAFE,
            1,
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        );
    }
}

fn check_missing_docs_attr(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_root {
        return;
    }
    let found = ctx.file.lines.iter().any(|l| {
        l.code.contains("#![warn(missing_docs)]") || l.code.contains("#![deny(missing_docs)]")
    });
    if !found {
        ctx.emit(
            out,
            &MISSING_DOCS_ATTR,
            1,
            "crate root lacks #![warn(missing_docs)]".to_string(),
        );
    }
}

fn check_hot_path_alloc(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        if !line.fns.iter().any(|f| HOT_PATH_FNS.contains(&f.as_str())) {
            continue;
        }
        let hot = line.fns.last().map(String::as_str).unwrap_or("?");
        let msg = if contains_word(&line.code, "to_vec") {
            Some(format!(
                "`to_vec` inside `{hot}` copies a whole container per call"
            ))
        } else if line.code.contains("format!") {
            Some(format!(
                "`format!` inside `{hot}` heap-allocates a String per call"
            ))
        } else {
            container_field_clone(&line.code).map(|field| {
                format!("`.{field}.clone()` inside `{hot}` looks like a wholesale container copy")
            })
        };
        if let Some(m) = msg {
            ctx.emit(out, &HOT_PATH_ALLOC, line.number, m);
        }
    }
}

/// Detects `a.b.clone()` where the receiver is a plain field path (no
/// indexing, no calls) and the cloned field's name looks like a
/// container (plural, or a known container word). Per-item clones are
/// the currency of a comparison-based summary, so `item.clone()` (one
/// segment), `t.v.clone()` (singular field), and
/// `self.tuples[i].v.clone()` (indexed element) all stay quiet; only
/// wholesale container copies are flagged.
fn container_field_clone(code: &str) -> Option<&str> {
    const CONTAINER_HINTS: &[&str] = &["buffer", "reservoir", "queue", "heap", "pool", "cache"];
    let b = code.as_bytes();
    let mut search = 0;
    while let Some(rel) = code[search..].find(".clone()") {
        let dot = search + rel;
        search = dot + ".clone()".len();
        // Walk the receiver chain backwards: ident ('.' ident)*.
        let mut end = dot;
        let mut segments = 0usize;
        let mut field: Option<&str> = None;
        loop {
            let mut start = end;
            while start > 0 && is_ident(b[start - 1]) {
                start -= 1;
            }
            if start == end {
                // Not a plain ident segment: indexing (`]`), a call
                // (`)`), or the start of the line. The chain is either
                // broken (element access → quiet) or complete.
                break;
            }
            segments += 1;
            if field.is_none() {
                field = Some(&code[start..end]);
            }
            if start > 0 && b[start - 1] == b'.' {
                end = start - 1;
            } else {
                break;
            }
        }
        if segments >= 2 {
            if let Some(f) = field {
                let plural = f.len() >= 3 && f.ends_with('s') && !f.ends_with("ss");
                if plural || CONTAINER_HINTS.contains(&f) {
                    return Some(f);
                }
            }
        }
    }
    None
}

/// The one file allowed to open checkpoint paths directly: the
/// temp+rename helper everything else must route through.
const ATOMIC_HELPER: &str = "crates/snapshot/src/atomic.rs";

/// Tokens that mark a write target as recovery-critical. CSV/JSON
/// result emitters (streams `report.rs`, `perf_baseline` merge) stay
/// quiet: losing a report re-runs a sweep, losing a checkpoint torn
/// mid-write defeats the recovery machinery it feeds.
const CKPT_TOKENS: &[&str] = &["checkpoint", "snapshot", "ckpt", "cqss"];

fn check_snapshot_atomicity(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.test_file || ctx.path.ends_with(ATOMIC_HELPER) {
        return;
    }
    for line in &ctx.file.lines {
        if line.in_test {
            continue;
        }
        if !(line.code.contains("File::create") || line.code.contains("fs::write")) {
            continue;
        }
        let lower = line.code.to_ascii_lowercase();
        let on_ckpt_line = CKPT_TOKENS.iter().any(|t| lower.contains(t));
        let in_ckpt_fn = line.fns.iter().any(|f| {
            let f = f.to_ascii_lowercase();
            CKPT_TOKENS.iter().any(|t| f.contains(t))
        });
        // Inside the snapshot crate every byte written is wire format,
        // so any direct write there is a violation regardless of name.
        if on_ckpt_line || in_ckpt_fn || ctx.crate_name == "snapshot" {
            let sink = if line.code.contains("File::create") {
                "File::create"
            } else {
                "fs::write"
            };
            ctx.emit(
                out,
                &SNAPSHOT_ATOMICITY,
                line.number,
                format!(
                    "`{sink}` on a checkpoint/snapshot path bypasses the temp+rename helper \
                     (cqs_snapshot::atomic::write_atomic / save_rotating)"
                ),
            );
        }
    }
}

fn check_float_eq(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for line in &ctx.file.lines {
        if line.in_test || ctx.test_file {
            continue;
        }
        let nan_like = (contains_word(&line.code, "NAN") || contains_word(&line.code, "INFINITY"))
            && (line.code.contains("==") || line.code.contains("!="));
        if nan_like || has_float_literal_eq(&line.code) {
            ctx.emit(
                out,
                &FLOAT_EQ,
                line.number,
                "raw float equality; compare via OrdF64/total_cmp or an epsilon".to_string(),
            );
        }
    }
}

/// Detects `==` / `!=` with a float literal (`1.0`, `.5`-free form: must
/// start with a digit and contain a `.`) on either side. Tuple-field
/// accesses like `x.0 == y` do not count: the literal must not be
/// preceded by an identifier character or `.`.
fn has_float_literal_eq(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        if (b[i] == b'=' || b[i] == b'!') && b[i + 1] == b'=' {
            // Skip `<=`, `>=`, and the `=` of a preceding `==`.
            let prev = if i > 0 { b[i - 1] } else { b' ' };
            if b[i] == b'=' && (prev == b'<' || prev == b'>' || prev == b'=' || prev == b'!') {
                i += 1;
                continue;
            }
            if float_literal_before(b, i) || float_literal_after(b, i + 2) {
                return true;
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn float_literal_before(b: &[u8], op: usize) -> bool {
    let mut j = op;
    while j > 0 && b[j - 1] == b' ' {
        j -= 1;
    }
    let end = j;
    let mut saw_dot = false;
    let mut saw_digit = false;
    while j > 0 && (b[j - 1].is_ascii_digit() || b[j - 1] == b'.' || b[j - 1] == b'_') {
        saw_dot |= b[j - 1] == b'.';
        saw_digit |= b[j - 1].is_ascii_digit();
        j -= 1;
    }
    if j == end || !saw_dot || !saw_digit {
        return false;
    }
    // Literal must stand alone: `self.0` has an identifier before the run.
    !(j > 0 && (is_ident(b[j - 1]) || b[j - 1] == b'.'))
}

fn float_literal_after(b: &[u8], mut j: usize) -> bool {
    while j < b.len() && b[j] == b' ' {
        j += 1;
    }
    if j < b.len() && b[j] == b'-' {
        j += 1;
    }
    if j >= b.len() || !b[j].is_ascii_digit() {
        return false;
    }
    let mut saw_dot = false;
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.' || b[j] == b'_') {
        if b[j] == b'.' {
            // `1..n` is a range, not a float.
            if b.get(j + 1) == Some(&b'.') {
                return false;
            }
            saw_dot = true;
        }
        j += 1;
    }
    saw_dot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_clone_detection() {
        assert_eq!(
            container_field_clone("self.tuples = other.tuples.clone();"),
            Some("tuples")
        );
        assert_eq!(
            container_field_clone("let s = self.items.clone();"),
            Some("items")
        );
        assert_eq!(
            container_field_clone("let r = self.reservoir.clone();"),
            Some("reservoir")
        );
        // Single-item clones and element access stay quiet.
        assert_eq!(container_field_clone("let v = item.clone();"), None);
        assert_eq!(
            container_field_clone("best.map(|(t, _)| t.v.clone())"),
            None
        );
        assert_eq!(
            container_field_clone("let x = self.tuples[i].v.clone();"),
            None
        );
        assert_eq!(container_field_clone("return self.min.clone();"), None);
        // Method-call receivers are unknowable: stay quiet.
        assert_eq!(container_field_clone("self.rows().items.clone()"), None);
        // `.cloned()` is not `.clone()`.
        assert_eq!(container_field_clone("self.items.first().cloned()"), None);
    }

    #[test]
    fn float_literal_detection() {
        assert!(has_float_literal_eq("if x == 1.0 {"));
        assert!(has_float_literal_eq("if 0.5 != y {"));
        assert!(has_float_literal_eq("x == -2.75"));
        assert!(!has_float_literal_eq("if x == 1 {"));
        assert!(!has_float_literal_eq("if self.0 == y {"));
        assert!(!has_float_literal_eq("for i in 1..n {"));
        assert!(!has_float_literal_eq("if a <= 1.0 {"));
        assert!(!has_float_literal_eq("if a >= 2.5 {"));
    }
}
