//! The three rule families.
//!
//! Every rule has a kebab-case id (used in diagnostics and in
//! `// cqs-lint: allow(<id>)` suppressions), a severity, and a one-line
//! rationale tied to the paper. `all_rules()` is the registry the CLI's
//! `rules` subcommand prints and the engine iterates.

pub mod comparison;
pub mod determinism;
pub mod robustness;

use super::config::Role;
use super::scanner::ScannedFile;
use super::{Diagnostic, Severity};

/// A single lint rule.
pub struct Rule {
    /// Stable kebab-case identifier, e.g. `hash-default`.
    pub id: &'static str,
    /// Diagnostic severity: errors fail the gate, warnings are reported.
    pub severity: Severity,
    /// One-line description shown by `cargo run -p cqs-xtask -- rules`.
    pub rationale: &'static str,
    /// Whether the rule applies to a crate with this role at all.
    pub applies: fn(Role) -> bool,
    /// The check itself: emit diagnostics for one scanned file.
    pub check: fn(&RuleCtx<'_>, &mut Vec<Diagnostic>),
}

/// Everything a rule sees about one file.
pub struct RuleCtx<'a> {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: &'a str,
    /// Crate directory name (`"."` for the root package) — the key the
    /// per-crate rule tables (e.g. `SEND_AUDITED_TYPES`) are indexed by.
    pub crate_name: &'a str,
    /// Role of the owning crate.
    pub role: Role,
    /// The scanned file.
    pub file: &'a ScannedFile,
    /// True for files under `tests/`, `benches/`, or `examples/` of a
    /// crate — test-only code, exempt from library rules.
    pub test_file: bool,
    /// True for `src/lib.rs` (file-level attribute rules anchor here).
    pub is_lib_root: bool,
}

impl RuleCtx<'_> {
    /// Helper: push a diagnostic. Suppression is *not* checked here —
    /// the engine filters findings against `cqs-lint: allow` directives
    /// centrally, so it can also report unused directives.
    pub fn emit(&self, out: &mut Vec<Diagnostic>, rule: &Rule, line: usize, message: String) {
        out.push(Diagnostic {
            file: self.path.to_string(),
            line,
            rule: rule.id,
            severity: rule.severity,
            message,
            baselined: false,
        });
    }
}

/// Metadata for a diagnostic id that is produced by the whole-workspace
/// analyses (or the engine itself) rather than a per-file [`Rule`]. The
/// CLI's `rules` subcommand prints these alongside the lexical registry
/// so every id that can appear in a report is documented in one place.
pub struct RuleMeta {
    /// Stable kebab-case identifier.
    pub id: &'static str,
    /// Diagnostic severity.
    pub severity: Severity,
    /// One-line description.
    pub rationale: &'static str,
}

/// Ids emitted by the call-graph analyses and the engine.
pub fn analysis_rules() -> &'static [RuleMeta] {
    const METAS: &[RuleMeta] = &[
        RuleMeta {
            id: "model-purity",
            severity: Severity::Error,
            rationale: "taint analysis over the call graph: item values in a summary crate \
                        may flow only into Ord/Eq/Clone operations (Definition 2.1); any \
                        arithmetic/bit sink refuses the crate's ModelCertificate",
        },
        RuleMeta {
            id: "driver-no-panic",
            severity: Severity::Error,
            rationale: "panic reachability from the try_* driver entry points: every helper \
                        the guarded driver can reach must return typed AdversaryError values, \
                        never unwind",
        },
        RuleMeta {
            id: "hot-path-panic",
            severity: Severity::Error,
            rationale: "panic reachability from the summary hot paths (insert/query/merge): \
                        unwrap/expect/panic! anywhere the hot path can reach fails under \
                        adversarial input",
        },
        RuleMeta {
            id: "reachable-indexing",
            severity: Severity::Warning,
            rationale: "slice/map indexing reachable from a hot path or the driver panics \
                        out-of-bounds; reviewed sites are ratcheted via lint-baseline.json",
        },
        RuleMeta {
            id: "sharding-send-sync",
            severity: Severity::Error,
            rationale: "types that ride the cqs-bench parallel sweep pool are derived from \
                        the call graph (spawn sites and their callers); each must keep a \
                        compile-time assert_send audit line in its defining crate",
        },
        RuleMeta {
            id: "unused-allow",
            severity: Severity::Warning,
            rationale: "a cqs-lint: allow(...) directive that matches no finding is dead \
                        weight and hides future regressions at that site",
        },
        RuleMeta {
            id: "stale-baseline",
            severity: Severity::Warning,
            rationale: "a lint-baseline.json entry that no longer fires should be removed \
                        (refresh with --update-baseline) so the baseline only shrinks",
        },
    ];
    METAS
}

/// The full registry, in reporting order.
pub fn all_rules() -> Vec<&'static Rule> {
    let mut v: Vec<&'static Rule> = Vec::new();
    v.extend(comparison::rules());
    v.extend(determinism::rules());
    v.extend(robustness::rules());
    v
}

/// Runs every applicable rule over one file.
pub fn check_file(ctx: &RuleCtx<'_>, out: &mut Vec<Diagnostic>) {
    for rule in all_rules() {
        if (rule.applies)(ctx.role) {
            (rule.check)(ctx, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let rules = all_rules();
        let mut seen = std::collections::BTreeSet::new();
        for r in &rules {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {} is not kebab-case",
                r.id
            );
        }
        for m in analysis_rules() {
            assert!(seen.insert(m.id), "duplicate rule id {}", m.id);
            assert!(
                m.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {} is not kebab-case",
                m.id
            );
        }
        assert!(
            rules.len() + analysis_rules().len() >= 15,
            "expected the full registry"
        );
    }
}
