//! Token stream over scanner-cleaned source.
//!
//! The [`scanner`](super::scanner) already blanks comments and literal
//! *contents* (so nothing inside a string can ever look like code); this
//! module turns the cleaned lines into a flat token stream the item
//! indexer and call-graph builder consume. Tokens carry their 1-based
//! source line so every downstream diagnostic can point at real code.
//!
//! The stream is deliberately coarse: identifiers, numbers, lifetimes,
//! and punctuation. String/char literal *quotes* are dropped entirely
//! (their contents are already spaces), and only the three punctuation
//! pairs that change parsing decisions (`::`, `->`, `=>`) are fused
//! into single tokens — `<`/`>` stay single characters so generic-depth
//! tracking in [`items`](super::items) can balance them.

use super::scanner::ScannedFile;

/// What kind of lexeme a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `insert`, `T`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`) — kept distinct so it never looks
    /// like an identifier in type position.
    Lifetime,
    /// Numeric literal (`1`, `0.5`, `0xFF`, `1u64`).
    Number,
    /// Punctuation: single characters plus the fused `::`, `->`, `=>`.
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// The token text, exactly as it appears in the cleaned source.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Tokenizes a scanned file into a flat stream.
pub fn tokenize(file: &ScannedFile) -> Vec<Token> {
    let mut out = Vec::new();
    for line in &file.lines {
        let bytes = line.code.as_bytes();
        let n = bytes.len();
        let mut i = 0;
        while i < n {
            let c = bytes[i];
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text: line.code[start..i].to_string(),
                    line: line.number,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                i += 1;
                while i < n {
                    let b = bytes[i];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        i += 1;
                    } else if b == b'.' {
                        // `1..n` is a range, not a float continuation.
                        if bytes.get(i + 1) == Some(&b'.') {
                            break;
                        }
                        // `1.max(2)`: a method call on an integer, not a
                        // float — only digits may follow the dot.
                        match bytes.get(i + 1) {
                            Some(d) if d.is_ascii_digit() => i += 1,
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Number,
                    text: line.code[start..i].to_string(),
                    line: line.number,
                });
                continue;
            }
            if c == b'\'' {
                // Lifetime if an identifier follows directly; otherwise a
                // (blanked) char-literal quote — drop it.
                if i + 1 < n && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_') {
                    let start = i;
                    i += 1;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text: line.code[start..i].to_string(),
                        line: line.number,
                    });
                } else {
                    i += 1;
                }
                continue;
            }
            if c == b'"' {
                // Blanked string quote: contents are already spaces, so
                // the quote itself carries no information.
                i += 1;
                continue;
            }
            // Fused two-character puncts that change parsing decisions.
            let two = if i + 1 < n { &line.code[i..i + 2] } else { "" };
            if two == "::" || two == "->" || two == "=>" {
                out.push(Token {
                    kind: TokKind::Punct,
                    text: two.to_string(),
                    line: line.number,
                });
                i += 2;
                continue;
            }
            out.push(Token {
                kind: TokKind::Punct,
                text: line.code[i..i + 1].to_string(),
                line: line.number,
            });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::scanner::scan;
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&scan(src))
    }

    #[test]
    fn idents_numbers_puncts() {
        let t = toks("fn f(x: u64) -> u64 { x + 1 }\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "f", "(", "x", ":", "u64", ")", "->", "u64", "{", "x", "+", "1", "}"]
        );
        assert_eq!(t[8].kind, TokKind::Ident);
        assert_eq!(t[7].kind, TokKind::Punct);
    }

    #[test]
    fn string_and_comment_contents_vanish() {
        let t = toks("call(\"unwrap()\"); // unwrap()\n");
        assert!(!t.iter().any(|t| t.text == "unwrap"));
        assert!(t.iter().any(|t| t.is_ident("call")));
    }

    #[test]
    fn lifetimes_are_not_idents() {
        let t = toks("fn f<'a>(x: &'a str) {}\n");
        let lt: Vec<&Token> = t.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lt.len(), 2);
        assert_eq!(lt[0].text, "'a");
    }

    #[test]
    fn char_literal_quotes_are_dropped() {
        let t = toks("let c = 'x'; let d = '\\n';\n");
        assert!(!t.iter().any(|t| t.text.contains('\'')));
    }

    #[test]
    fn path_and_arrow_are_fused() {
        let t = toks("a::b(x) -> c => d\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"::"));
        assert!(texts.contains(&"->"));
        assert!(texts.contains(&"=>"));
    }

    #[test]
    fn ranges_and_method_calls_on_numbers() {
        let t = toks("for i in 1..n { x.max(2.5); 1.max(2) }\n");
        assert!(t.iter().any(|t| t.kind == TokKind::Number && t.text == "1"));
        assert!(t
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "2.5"));
        assert!(t.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn lines_are_tracked() {
        let t = toks("a\nb\nc\n");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 3);
    }
}
