//! The committed findings baseline (`lint-baseline.json`).
//!
//! The reachability and purity analyses are deliberately
//! over-approximate; the workspace carries a reviewed residue of
//! warning-level findings (mostly `reachable-indexing` sites whose
//! bounds are locally checked). Those live in `lint-baseline.json` at
//! the workspace root: a finding whose `(rule, file, message)` key —
//! line numbers excluded, so pure line drift never churns the file —
//! appears there is *baselined*: still reported in `--json`, but it
//! neither fails the gate nor counts as new.
//!
//! Refresh with `cargo run -p cqs-xtask -- lint --update-baseline`
//! after reviewing each finding; stale entries (baselined findings that
//! no longer fire) are reported as `stale-baseline` warnings so the
//! file shrinks as the code improves. The parser below reads only the
//! subset of JSON the renderer emits (one `{"rule": …, "file": …,
//! "message": …}` object per line).

use std::collections::BTreeSet;
use std::path::Path;

use super::json::escape;
use super::{Diagnostic, LintReport, Severity};

/// Baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// A set of accepted findings keyed by (rule, file, message).
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Loads the baseline next to `root`; `Ok(None)` when absent.
    pub fn load(root: &Path) -> Result<Option<Baseline>, String> {
        let path = root.join(BASELINE_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks matching diagnostics as baselined; returns stale entries
    /// (baselined findings that no longer fire) and appends a
    /// `stale-baseline` warning for each.
    pub fn apply(&self, report: &mut LintReport) -> usize {
        let mut live: BTreeSet<&(String, String, String)> = BTreeSet::new();
        for d in &mut report.diagnostics {
            let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
            if let Some(entry) = self.entries.get(&key) {
                d.baselined = true;
                live.insert(entry);
            }
        }
        let stale: Vec<&(String, String, String)> =
            self.entries.iter().filter(|e| !live.contains(e)).collect();
        for (rule, file, message) in &stale {
            report.diagnostics.push(Diagnostic {
                file: BASELINE_FILE.to_string(),
                line: 0,
                rule: "stale-baseline",
                severity: Severity::Warning,
                message: format!(
                    "baselined finding no longer fires (refresh with --update-baseline): \
                     {rule} @ {file}: {message}"
                ),
                baselined: false,
            });
        }
        stale.len()
    }
}

/// Renders the current findings as a baseline file (deterministic:
/// sorted by key, one entry object per line).
pub fn render(report: &LintReport) -> String {
    let mut keys: BTreeSet<(&str, &str, &str)> = BTreeSet::new();
    for d in &report.diagnostics {
        if d.rule == "stale-baseline" {
            continue;
        }
        keys.insert((d.rule, &d.file, &d.message));
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    let lines: Vec<String> = keys
        .iter()
        .map(|(rule, file, message)| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"message\": \"{}\"}}",
                escape(rule),
                escape(file),
                escape(message)
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the renderer's output format: extracts `"rule"`, `"file"`,
/// and `"message"` string fields from each single-line entry object.
fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries = BTreeSet::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"rule\"") {
            continue;
        }
        let rule = field(line, "rule").ok_or_else(|| format!("line {}: no rule", n + 1))?;
        let file = field(line, "file").ok_or_else(|| format!("line {}: no file", n + 1))?;
        let message =
            field(line, "message").ok_or_else(|| format!("line {}: no message", n + 1))?;
        entries.insert((rule, file, message));
    }
    Ok(Baseline { entries })
}

/// Extracts and unescapes the string value of `"key": "..."`.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let next = *bytes.get(i + 1)?;
                match next {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = line.get(i + 2..i + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 6;
                        continue;
                    }
                    c => out.push(c as char),
                }
                i += 2;
            }
            _ => {
                // Multi-byte chars: copy the full char.
                let c = line[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, message: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: 7,
            rule,
            severity: Severity::Warning,
            message: message.to_string(),
            baselined: false,
        }
    }

    #[test]
    fn roundtrip_marks_baselined() {
        let mut report = LintReport {
            diagnostics: vec![diag("reachable-indexing", "a.rs", "indexing in `f`")],
            ..Default::default()
        };
        let text = render(&report);
        let b = parse(&text).unwrap();
        assert_eq!(b.len(), 1);
        let stale = b.apply(&mut report);
        assert_eq!(stale, 0);
        assert!(report.diagnostics[0].baselined);
    }

    #[test]
    fn stale_entries_warn() {
        let text = render(&LintReport {
            diagnostics: vec![diag("reachable-indexing", "gone.rs", "old finding")],
            ..Default::default()
        });
        let b = parse(&text).unwrap();
        let mut report = LintReport::default();
        let stale = b.apply(&mut report);
        assert_eq!(stale, 1);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "stale-baseline"));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut report = LintReport {
            diagnostics: vec![diag("model-purity", "x.rs", "weird \"quoted\" \\ message")],
            ..Default::default()
        };
        let text = render(&report);
        let b = parse(&text).unwrap();
        b.apply(&mut report);
        assert!(report.diagnostics[0].baselined, "{text}");
    }

    #[test]
    fn missing_file_is_none() {
        let got = Baseline::load(Path::new("/nonexistent-dir-for-cqs-test")).unwrap();
        assert!(got.is_none());
    }
}
