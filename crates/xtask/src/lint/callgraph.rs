//! Cross-crate call graph over the item index.
//!
//! Call sites are recognised token-wise inside function bodies
//! (`name(...)`, `recv.name(...)`, `Type::name(...)`, and bare
//! `Type::name` function references) and resolved *by name* against the
//! whole-workspace [`ItemIndex`] — deliberately over-approximate: a
//! method call on an unknown receiver resolves to every workspace
//! method of that name, so reachability never misses a workspace callee
//! because the receiver type was not inferable.
//!
//! Two guards keep the over-approximation useful:
//!
//! * `self.name(...)` and `Type::name(...)` resolve *precisely* (same
//!   impl type / named type first, falling back to the open set);
//! * calls to [`COMMON_METHOD_NAMES`](super::config::COMMON_METHOD_NAMES)
//!   (`push`, `insert`, `len`, ... — names shared with the std
//!   containers) on an *unknown* receiver are recorded as unresolved
//!   assumptions instead of fanning out to every same-named workspace
//!   function. This is the documented unknown-callee policy: external
//!   (std) code is assumed non-panicking and item-opaque, and every such
//!   assumption is counted and surfaced in the JSON report.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use super::config::COMMON_METHOD_NAMES;
use super::items::{FnId, ItemIndex};
use super::tokens::{TokKind, Token};

/// One resolved (or unresolved) call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// Workspace functions this call may dispatch to (empty when the
    /// callee is external/unresolved).
    pub targets: Vec<FnId>,
    /// True when the call site sits inside a `catch_unwind(...)`
    /// argument — a panic there cannot escape, so panic reachability
    /// stops at this edge (purity does not: items still flow through).
    pub guarded: bool,
}

/// The workspace call graph: per-function call sites.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing call sites per [`FnId`].
    pub calls: Vec<Vec<Call>>,
}

impl CallGraph {
    /// Unresolved call names for one function (external callees assumed
    /// total/opaque — the analysis assumptions).
    pub fn unresolved_names(&self, id: FnId) -> BTreeSet<&str> {
        self.calls[id]
            .iter()
            .filter(|c| c.targets.is_empty())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Total number of unresolved call sites across the workspace.
    pub fn unresolved_count(&self) -> usize {
        self.calls
            .iter()
            .flatten()
            .filter(|c| c.targets.is_empty())
            .count()
    }

    /// BFS from `roots`; returns each reached function mapped to its
    /// predecessor on one shortest path (roots map to themselves).
    /// Deterministic: roots are visited in sorted order, call sites in
    /// source order.
    pub fn reachable_from(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        let mut sorted: Vec<FnId> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for r in sorted {
            parent.insert(r, r);
            queue.push_back(r);
        }
        while let Some(f) = queue.pop_front() {
            for call in &self.calls[f] {
                for &t in &call.targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(f);
                        queue.push_back(t);
                    }
                }
            }
        }
        parent
    }

    /// Renders the root → ... → `target` chain for diagnostics.
    pub fn path_to(
        &self,
        parent: &BTreeMap<FnId, FnId>,
        index: &ItemIndex,
        target: FnId,
    ) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&id| index.fns[id].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// How a call site names its callee.
enum Receiver<'a> {
    /// `name(...)` — a free-function call.
    Free,
    /// `self.name(...)` — a method on the enclosing impl type.
    SelfDot,
    /// `expr.name(...)` — a method on an unknown receiver.
    Unknown,
    /// `Qual::name(...)` or `Qual::name` — a path-qualified call/ref.
    Path(&'a str),
}

/// Keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum",
    "where", "dyn", "unsafe", "static", "const", "type", "extern", "true", "false", "super",
    "crate",
];

/// Builds the call graph from every file's tokens + owner map.
///
/// `files` yields `(tokens, owner)` pairs in walk order; `owner` maps
/// each token to its innermost enclosing function (see
/// [`ItemIndex::add_file`](super::items::ItemIndex::add_file)).
pub fn build<'a>(
    index: &ItemIndex,
    files: impl Iterator<Item = (&'a [Token], &'a [Option<FnId>])>,
) -> CallGraph {
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (id, f) in index.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    let mut graph = CallGraph {
        calls: vec![Vec::new(); index.fns.len()],
    };
    for (toks, owner) in files {
        scan_file(index, &by_name, toks, owner, &mut graph);
    }
    graph
}

/// Marks every token inside a `catch_unwind(...)` argument list.
fn guard_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for j in 0..toks.len() {
        if !toks[j].is_ident("catch_unwind") {
            continue;
        }
        if !matches!(toks.get(j + 1), Some(n) if n.is_punct("(")) {
            continue;
        }
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().skip(j + 1) {
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            mask[k] = true;
        }
    }
    mask
}

fn scan_file(
    index: &ItemIndex,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    toks: &[Token],
    owner: &[Option<FnId>],
    graph: &mut CallGraph,
) {
    let guarded = guard_mask(toks);
    for j in 0..toks.len() {
        let Some(caller) = owner.get(j).copied().flatten() else {
            continue;
        };
        let t = &toks[j];
        if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next_is_call = matches!(toks.get(j + 1), Some(n) if n.is_punct("("));
        let prev = j.checked_sub(1).map(|p| &toks[p]);
        let prev_is_path = matches!(prev, Some(p) if p.is_punct("::"));
        let prev_is_dot = matches!(prev, Some(p) if p.is_punct("."));

        // `fn name(` is a definition, not a call.
        if matches!(prev, Some(p) if p.is_ident("fn")) {
            continue;
        }

        let receiver = if prev_is_dot {
            match j.checked_sub(2).map(|p| &toks[p]) {
                Some(r) if r.is_ident("self") => {
                    // `a.self.b` cannot occur; `self.m(...)` it is —
                    // unless `self` is itself a field access (`x.self`
                    // is not Rust), so this is safe.
                    Receiver::SelfDot
                }
                _ => Receiver::Unknown,
            }
        } else if prev_is_path {
            match j.checked_sub(2).map(|p| &toks[p]) {
                Some(q) if q.kind == TokKind::Ident => Receiver::Path(q.text.as_str()),
                _ => Receiver::Free,
            }
        } else {
            Receiver::Free
        };

        if next_is_call {
            // Skip capitalized free calls: tuple-struct / enum-variant
            // constructors (`Some(`, `Ok(`, `Interval(`) are not fns we
            // index. Path-qualified and method calls keep going — their
            // names are lowercase methods.
            if matches!(receiver, Receiver::Free)
                && t.text
                    .chars()
                    .next()
                    .map(char::is_uppercase)
                    .unwrap_or(false)
            {
                continue;
            }
        } else {
            // Not a direct call: only `Qual::name` function references
            // (fn-as-value) create edges, and only for known fn names.
            let lowercase_start = t
                .text
                .chars()
                .next()
                .map(|c| c.is_lowercase() || c == '_')
                .unwrap_or(false);
            if !(prev_is_path && lowercase_start && by_name.contains_key(t.text.as_str())) {
                continue;
            }
        }

        let targets = resolve(index, by_name, &t.text, &receiver, caller);
        graph.calls[caller].push(Call {
            name: t.text.clone(),
            line: t.line,
            targets,
            guarded: guarded[j],
        });
    }
}

/// Resolution policy (see module docs).
fn resolve(
    index: &ItemIndex,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    name: &str,
    receiver: &Receiver<'_>,
    caller: FnId,
) -> Vec<FnId> {
    let Some(all) = by_name.get(name) else {
        return Vec::new(); // external (std) callee
    };
    let caller_in_test = index.fns[caller].in_test;
    let live: Vec<FnId> = all
        .iter()
        .copied()
        .filter(|&id| caller_in_test || !index.fns[id].in_test)
        .collect();
    if live.is_empty() {
        return Vec::new();
    }
    let common = COMMON_METHOD_NAMES.contains(&name);
    let filtered: Vec<FnId> = match receiver {
        Receiver::SelfDot => {
            let self_ty = index.fns[caller].self_type.as_deref();
            live.iter()
                .copied()
                .filter(|&id| self_ty.is_some() && index.fns[id].self_type.as_deref() == self_ty)
                .collect()
        }
        Receiver::Path(q) if *q == "Self" => {
            let self_ty = index.fns[caller].self_type.as_deref();
            live.iter()
                .copied()
                .filter(|&id| self_ty.is_some() && index.fns[id].self_type.as_deref() == self_ty)
                .collect()
        }
        Receiver::Path(q) => {
            let by_type: Vec<FnId> = live
                .iter()
                .copied()
                .filter(|&id| index.fns[id].self_type.as_deref() == Some(*q))
                .collect();
            if !by_type.is_empty() {
                by_type
            } else {
                // `module::free_fn(...)`: fall back to free functions.
                live.iter()
                    .copied()
                    .filter(|&id| index.fns[id].self_type.is_none())
                    .collect()
            }
        }
        Receiver::Free => live
            .iter()
            .copied()
            .filter(|&id| index.fns[id].self_type.is_none())
            .collect(),
        Receiver::Unknown => {
            if common {
                // Unknown receiver + std-colliding name: assume external.
                return Vec::new();
            }
            let methods: Vec<FnId> = live
                .iter()
                .copied()
                .filter(|&id| index.fns[id].is_method)
                .collect();
            let pool = if methods.is_empty() {
                live.clone()
            } else {
                methods
            };
            // Receivers are usually of a local type: prefer same-crate
            // candidates to keep trait-method fan-out from linking every
            // summary crate to every other.
            let caller_crate = &index.fns[caller].crate_name;
            let same_crate: Vec<FnId> = pool
                .iter()
                .copied()
                .filter(|&id| &index.fns[id].crate_name == caller_crate)
                .collect();
            if same_crate.is_empty() {
                pool
            } else {
                same_crate
            }
        }
    };
    if !filtered.is_empty() {
        return filtered;
    }
    // Precise filter came up empty: open set unless the name is a
    // std-colliding one (then assume external).
    if common {
        Vec::new()
    } else {
        live
    }
}

#[cfg(test)]
mod tests {
    use super::super::items::ItemIndex;
    use super::super::scanner::scan;
    use super::super::tokens::tokenize;
    use super::*;

    struct Built {
        index: ItemIndex,
        graph: CallGraph,
    }

    fn build_one(src: &str) -> Built {
        let scanned = scan(src);
        let toks = tokenize(&scanned);
        let mut index = ItemIndex::default();
        let items = index.add_file("core", "src/lib.rs", &toks, &scanned, false);
        let graph = build(&index, std::iter::once((&toks[..], &items.owner[..])));
        Built { index, graph }
    }

    fn id_of(b: &Built, name: &str) -> FnId {
        b.index.fns.iter().position(|f| f.name == name).unwrap()
    }

    fn callees(b: &Built, name: &str) -> Vec<String> {
        let id = id_of(b, name);
        let mut out: Vec<String> = b.graph.calls[id]
            .iter()
            .flat_map(|c| c.targets.iter().map(|&t| b.index.fns[t].name.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn free_calls_resolve() {
        let b = build_one("fn a() { b(); }\nfn b() {}\n");
        assert_eq!(callees(&b, "a"), vec!["b"]);
    }

    #[test]
    fn self_method_calls_resolve_within_impl() {
        let src = "struct S;\nstruct T;\n\
                   impl S { fn go(&self) { self.step(); } fn step(&self) {} }\n\
                   impl T { fn step(&self) {} }\n";
        let b = build_one(src);
        let go = id_of(&b, "go");
        let step_targets: Vec<&str> = b.graph.calls[go]
            .iter()
            .flat_map(|c| c.targets.iter().map(|&t| b.index.fns[t].qual.as_str()))
            .collect();
        assert_eq!(step_targets, vec!["core/S::step"]);
    }

    #[test]
    fn unknown_receiver_fans_out_to_all_methods() {
        let src = "struct A;\nstruct B;\n\
                   impl A { fn probe(&self) {} }\n\
                   impl B { fn probe(&self) {} }\n\
                   fn driver(x: &A) { x.probe(); }\n";
        let b = build_one(src);
        assert_eq!(callees(&b, "driver"), vec!["probe"]);
        let driver = id_of(&b, "driver");
        assert_eq!(b.graph.calls[driver][0].targets.len(), 2);
    }

    #[test]
    fn common_names_on_unknown_receivers_stay_unresolved() {
        let src = "struct S { v: Vec<u64> }\n\
                   impl S { fn insert(&mut self, x: u64) { self.v.push(x); } }\n\
                   fn f(s: &mut Vec<u64>) { s.push(1); }\n";
        let b = build_one(src);
        let f = id_of(&b, "f");
        assert!(b.graph.calls[f].iter().all(|c| c.targets.is_empty()));
        assert_eq!(b.graph.unresolved_names(f).len(), 1);
    }

    #[test]
    fn path_calls_prefer_the_named_type() {
        let src = "struct S;\nimpl S { fn make() -> S { S } }\nfn f() { let _ = S::make(); }\n";
        let b = build_one(src);
        assert_eq!(callees(&b, "f"), vec!["make"]);
    }

    #[test]
    fn fn_references_create_edges() {
        let src = "struct S;\nimpl S { fn hook() {} }\nfn f() { run(S::hook); }\nfn run(g: fn()) { g(); }\n";
        let b = build_one(src);
        assert!(callees(&b, "f").contains(&"hook".to_string()));
    }

    #[test]
    fn test_fns_are_not_targets_of_lib_callers() {
        let src = "fn lib() { probe(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn probe() {}\n    fn t() { probe(); }\n}\n";
        let b = build_one(src);
        assert!(callees(&b, "lib").is_empty());
        assert_eq!(callees(&b, "t"), vec!["probe"]);
    }

    #[test]
    fn reachability_and_paths() {
        let b = build_one("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn d() {}\n");
        let a = id_of(&b, "a");
        let c = id_of(&b, "c");
        let d = id_of(&b, "d");
        let parent = b.graph.reachable_from(&[a]);
        assert!(parent.contains_key(&c));
        assert!(!parent.contains_key(&d));
        assert_eq!(b.graph.path_to(&parent, &b.index, c), "a -> b -> c");
    }

    #[test]
    fn variant_constructors_are_not_calls() {
        let src = "enum E { V(u64) }\nfn f() -> E { E::V(1) }\nfn g() { let _ = Some(2); }\n";
        let b = build_one(src);
        assert!(callees(&b, "f").is_empty());
        assert!(callees(&b, "g").is_empty());
    }
}
