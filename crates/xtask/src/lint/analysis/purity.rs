//! Comparison-model purity certification (Definition 2.1).
//!
//! For every [`Role::Summary`] crate the analysis proves — up to the
//! documented approximations — that item values flow only into
//! `Ord`/`Eq`/`Clone` operations along all reachable call paths, and
//! emits a [`ModelCertificate`]. The old lexical rules (`item-bits`,
//! `item-arithmetic`) only see one line at a time; this pass follows an
//! item through helper functions, across crates, via the call graph.
//!
//! **Taint seeding.** In each summary crate, every non-test function's
//! parameters whose type mentions `Item` or an in-scope generic type
//! parameter are tainted — those are the item *values*. `self` and
//! `&Self` are deliberately **not** seeded: a summary's state mixes
//! items with counts (`g`, `Δ`, level sizes), and Definition 2.1 only
//! constrains the items — rank bookkeeping arithmetic is the whole
//! point of a quantile summary. Field-level flows out of `self` are
//! covered by the lexical `item-bits`/`item-arithmetic` rules, which
//! scan every summary-crate line regardless of reachability.
//!
//! **Propagation.** `let`/`for` bindings whose right-hand side mentions
//! a tainted name taint the bound names (return-value taint falls out of
//! this: `let y = helper(x)` taints `y` because `x` is in the RHS).
//! Call arguments containing tainted names taint the callee's matching
//! parameters; tainted method receivers taint the callee's `self`. The
//! fixpoint crosses crate boundaries — a harness helper that bit-reads
//! a summary's item is a violation *of the summary's certificate*.
//!
//! **Sinks.** Binary arithmetic (`+ - * / % ^`, shifts), `as` casts, and
//! the representation-reading methods (`to_bits`, `to_ne_bytes`, ...)
//! on a tainted receiver chain. Comparisons (`< > <= >= == !=`) are the
//! allowed vocabulary and never sink.
//!
//! **Assumptions.** A call that resolves to no workspace function
//! (std, or a std-colliding name on an unknown receiver — see the
//! call-graph policy) with tainted arguments is *assumed* item-opaque;
//! each such site is counted on the certificate so the trust boundary
//! is visible. Closure parameters and `match` bindings are not tracked
//! (the lexical rules still cover summary-crate bodies line-by-line).
//!
//! `cqs-qdigest` is a bounded-universe sketch
//! ([`Role::BoundedUniverse`]): it consumes concrete `u64` keys and is
//! *refused* a certificate by role — that contrast (the Ω((1/ε)·log εN)
//! bound does not constrain it, per arXiv 2404.03847) is the point.

use std::collections::{BTreeMap, BTreeSet};

use super::super::config::Role;
use super::super::items::FnId;
use super::super::tokens::{TokKind, Token};
use super::super::{Diagnostic, Severity};
use super::{AnalysisResult, Workspace};

/// Methods that read a value's bit representation (kept in sync with
/// the lexical `item-bits` rule).
const BIT_METHODS: &[&str] = &[
    "to_bits",
    "from_bits",
    "to_ne_bytes",
    "from_ne_bytes",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
];

/// Binary operators that leave the comparison model when applied to an
/// item. `<`/`>` are comparisons unless doubled into a shift.
const ARITH_OPS: &[&str] = &["+", "-", "/", "%", "^"];

/// The allowed vocabulary on items (Definition 2.1): comparison,
/// equality, cloning. External calls to these with tainted arguments
/// are model-conformant by definition, not assumptions.
const ALLOWED_METHODS: &[&str] = &[
    "clone",
    "clone_from",
    "cmp",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "max",
    "min",
    "ne",
    "partial_cmp",
];

/// Certificate status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertStatus {
    /// No model-leaving flow found along any reachable path.
    Certified,
    /// At least one violation (or a role-level refusal).
    Refused,
}

/// A per-crate comparison-model purity certificate.
#[derive(Clone, Debug)]
pub struct ModelCertificate {
    /// Crate directory name (`gk`, `kll`, ...).
    pub crate_name: String,
    /// Certified or refused.
    pub status: CertStatus,
    /// Refusal reasons (empty when certified).
    pub reasons: Vec<String>,
    /// Item-carrying functions traversed by the taint fixpoint.
    pub fns_analyzed: usize,
    /// External calls with tainted arguments assumed item-opaque.
    pub assumptions: usize,
}

/// Runs certification for every purity-certified crate (summaries and
/// the service facade — see [`Role::purity_certified`]), plus the
/// by-construction refusal for bounded-universe sketches.
pub fn run(ws: &Workspace, out: &mut AnalysisResult) {
    let mut crates: BTreeSet<(&str, Role)> = BTreeSet::new();
    for f in &ws.files {
        if f.role.purity_certified() || f.role == Role::BoundedUniverse {
            crates.insert((f.crate_name.as_str(), f.role));
        }
    }
    for (name, role) in crates {
        if role == Role::BoundedUniverse {
            out.certificates.push(ModelCertificate {
                crate_name: name.to_string(),
                status: CertStatus::Refused,
                reasons: vec![
                    "bounded-universe sketch: consumes concrete u64 keys, outside the \
                     comparison model (Definition 2.1); the lower bound does not apply"
                        .to_string(),
                ],
                fns_analyzed: 0,
                assumptions: 0,
            });
            continue;
        }
        certify(ws, name, out);
    }
}

/// Entry-taint state for one function: names tainted on entry.
type Entry = BTreeSet<String>;

fn certify(ws: &Workspace, crate_name: &str, out: &mut AnalysisResult) {
    let mut entry: BTreeMap<FnId, Entry> = BTreeMap::new();
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut work: Vec<FnId> = Vec::new();

    for (id, f) in ws.index.fns.iter().enumerate() {
        if f.crate_name != crate_name || f.in_test || f.body.is_none() {
            continue;
        }
        let mut taint = Entry::new();
        for p in &f.params {
            if p.name != "self" && item_valued(&p.ty, &f.generics) {
                taint.insert(p.name.clone());
            }
        }
        if !taint.is_empty() {
            entry.insert(id, taint);
            parent.insert(id, id);
            work.push(id);
        }
    }

    let mut fns_analyzed: BTreeSet<FnId> = BTreeSet::new();
    let mut assumptions = 0usize;
    let mut violations: BTreeMap<(String, usize, String), ()> = BTreeMap::new();

    while let Some(id) = work.pop() {
        fns_analyzed.insert(id);
        let taint = entry.get(&id).cloned().unwrap_or_default();
        let scan = scan_body(ws, id, &taint);
        for (line, msg) in scan.violations {
            let file = ws.index.fns[id].file.clone();
            let chain = path_of(&parent, ws, id);
            violations.insert((file, line, format!("{msg} (item flow: {chain})")), ());
        }
        assumptions += scan.assumptions;
        for (target, names) in scan.propagations {
            let e = entry.entry(target).or_default();
            let before = e.len();
            e.extend(names);
            if e.len() > before {
                parent.entry(target).or_insert(id);
                if !work.contains(&target) {
                    work.push(target);
                }
            }
        }
    }

    let mut reasons: Vec<String> = Vec::new();
    for ((file, line, msg), ()) in &violations {
        reasons.push(msg.clone());
        out.diagnostics.push(Diagnostic {
            file: file.clone(),
            line: *line,
            rule: "model-purity",
            severity: Severity::Error,
            message: format!("[cqs-{crate_name}] {msg}"),
            baselined: false,
        });
    }
    out.certificates.push(ModelCertificate {
        crate_name: crate_name.to_string(),
        status: if reasons.is_empty() {
            CertStatus::Certified
        } else {
            CertStatus::Refused
        },
        reasons,
        fns_analyzed: fns_analyzed.len(),
        assumptions,
    });
}

/// Containers that are transparent for item-valuedness: a `Vec<T>` or
/// `Option<T>` of items still *is* items — nothing but items comes out
/// of it.
const TRANSPARENT_TYPES: &[&str] = &["Arc", "Box", "Cow", "Option", "Rc", "Vec", "VecDeque"];

/// Whether a parameter type is *item-valued*: it mentions the concrete
/// `Item` or an in-scope generic type parameter, and every other type
/// name in it is a transparent container. `&GkSummary<T>`, `Buffer<T>`,
/// and `&[GkTuple<T>]` are **not** item-valued — those structs carry
/// rank bookkeeping (`g`, `Δ`, `n`) alongside items, and Definition 2.1
/// only constrains the items; reading `other.n` off a merged-in summary
/// is legitimate count arithmetic. `Self` is excluded for the same
/// reason (see the module docs on seeding).
fn item_valued(ty: &[String], generics: &[String]) -> bool {
    let mut saw_item = false;
    for t in ty {
        let ident_like = t
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false);
        if !ident_like {
            continue; // `&`, `[`, lifetimes, angle brackets.
        }
        if t == "Item" || generics.iter().any(|g| g == t) {
            saw_item = true;
        } else if !TRANSPARENT_TYPES.contains(&t.as_str()) && t != "mut" && t != "dyn" {
            return false;
        }
    }
    saw_item
}

fn path_of(parent: &BTreeMap<FnId, FnId>, ws: &Workspace, id: FnId) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| ws.index.fns[f].qual.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

struct BodyScan {
    violations: Vec<(usize, String)>,
    propagations: Vec<(FnId, BTreeSet<String>)>,
    assumptions: usize,
}

/// Analyzes one function body under the given entry taints.
fn scan_body(ws: &Workspace, id: FnId, entry: &Entry) -> BodyScan {
    let toks = ws.body_tokens(id);
    let qual = &ws.index.fns[id].qual;
    let tainted = local_taint(toks, entry);
    let mut scan = BodyScan {
        violations: Vec::new(),
        propagations: Vec::new(),
        assumptions: 0,
    };

    // Sinks on tainted names.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if tainted.contains(&t.text) {
            if let Some(op) = arith_at(toks, i) {
                scan.violations.push((
                    t.line,
                    format!("`{op}` arithmetic on item-tainted `{}` in `{qual}`", t.text),
                ));
            }
            if matches!(toks.get(i + 1), Some(n) if n.is_ident("as")) {
                scan.violations.push((
                    t.line,
                    format!("`as` cast of item-tainted `{}` in `{qual}`", t.text),
                ));
            }
        }
        // Representation-reading methods on a tainted receiver chain.
        if BIT_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct(".")
            && receiver_chain_tainted(toks, i - 2, &tainted)
        {
            scan.violations.push((
                t.line,
                format!(
                    "`{}` reads the representation of an item-tainted value in `{qual}`",
                    t.text
                ),
            ));
        }
    }

    // Call-site taint propagation.
    let calls = &ws.graph.calls[id];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            continue;
        }
        let Some(call) = calls.iter().find(|c| c.name == t.text && c.line == t.line) else {
            continue;
        };
        let receiver_tainted =
            i >= 2 && toks[i - 1].is_punct(".") && receiver_chain_tainted(toks, i - 2, &tainted);
        let args = split_args(toks, i + 1);
        let arg_tainted: Vec<bool> = args
            .iter()
            .map(|span| {
                toks[span.0..span.1]
                    .iter()
                    .any(|a| a.kind == TokKind::Ident && tainted.contains(&a.text))
            })
            .collect();
        if !receiver_tainted && !arg_tainted.iter().any(|&b| b) {
            continue;
        }
        if call.targets.is_empty() {
            if !ALLOWED_METHODS.contains(&call.name.as_str()) {
                scan.assumptions += 1;
            }
            continue;
        }
        for &target in &call.targets {
            let tf = &ws.index.fns[target];
            let mut names = BTreeSet::new();
            let offset = usize::from(tf.is_method);
            if receiver_tainted && tf.is_method {
                names.insert("self".to_string());
            }
            for (k, &is_tainted) in arg_tainted.iter().enumerate() {
                if is_tainted {
                    if let Some(p) = tf.params.get(k + offset) {
                        if p.name != "_" {
                            names.insert(p.name.clone());
                        }
                    }
                }
            }
            if !names.is_empty() {
                scan.propagations.push((target, names));
            }
        }
    }
    scan
}

/// Local taint fixpoint: `let` and `for` bindings whose RHS mentions a
/// tainted name taint the bound pattern names.
fn local_taint(toks: &[Token], entry: &Entry) -> Entry {
    let mut tainted = entry.clone();
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_ident("let") {
                let in_cond =
                    i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
                let (names, after_pat) = pattern_names(toks, i + 1, "=");
                if matches!(toks.get(after_pat), Some(eq) if eq.is_punct("=")) {
                    let end = rhs_end(toks, after_pat + 1, in_cond);
                    if rhs_mentions_tainted(toks, after_pat + 1, end, &tainted) {
                        for n in names {
                            changed |= tainted.insert(n);
                        }
                    }
                    i = end;
                    continue;
                }
                i = after_pat;
                continue;
            }
            if t.is_ident("for") && i + 1 < toks.len() && !toks[i + 1].is_punct("<") {
                let (names, after_pat) = pattern_names(toks, i + 1, "in");
                if matches!(toks.get(after_pat), Some(k) if k.is_ident("in")) {
                    let end = rhs_end(toks, after_pat + 1, true);
                    if rhs_mentions_tainted(toks, after_pat + 1, end, &tainted) {
                        for n in names {
                            changed |= tainted.insert(n);
                        }
                    }
                    i = end;
                    continue;
                }
                i = after_pat;
                continue;
            }
            i += 1;
        }
        if !changed {
            return tainted;
        }
    }
}

/// Whether the token range `[start, end)` mentions a tainted name
/// *outside* a comparison. A comparison produces a `bool` — the allowed
/// vocabulary of Definition 2.1 — so bindings like
/// `let cum = ws.iter().filter(|(x, _)| x <= q).count();` derive a
/// *rank* from the item, not the item itself, and carry no taint.
fn rhs_mentions_tainted(toks: &[Token], start: usize, end: usize, tainted: &Entry) -> bool {
    for j in start..end.min(toks.len()) {
        let t = &toks[j];
        if t.kind == TokKind::Ident && tainted.contains(&t.text) && !comparison_adjacent(toks, j) {
            return true;
        }
    }
    false
}

/// Whether the ident at `j` sits immediately beside a comparison
/// operator (`< > <= >= == !=`). Doubled `<`/`>` are shifts, not
/// comparisons — shifts on a tainted name are caught by the arithmetic
/// sink anyway.
fn comparison_adjacent(toks: &[Token], j: usize) -> bool {
    if let Some(n) = toks.get(j + 1) {
        if n.kind == TokKind::Punct {
            match n.text.as_str() {
                "<" | ">" if !matches!(toks.get(j + 2), Some(m) if m.text == n.text) => {
                    return true;
                }
                "=" | "!" if matches!(toks.get(j + 2), Some(m) if m.is_punct("=")) => {
                    return true;
                }
                _ => {}
            }
        }
    }
    if j >= 1 {
        let p = &toks[j - 1];
        if (p.is_punct("<") || p.is_punct(">"))
            && !(j >= 2 && toks[j - 2].kind == TokKind::Punct && toks[j - 2].text == p.text)
        {
            return true;
        }
        if p.is_punct("=")
            && j >= 2
            && toks[j - 2].kind == TokKind::Punct
            && matches!(toks[j - 2].text.as_str(), "<" | ">" | "=" | "!")
        {
            return true;
        }
    }
    false
}

/// Collects lowercase binding names in a pattern, stopping at the
/// top-level `stop` token (`=` or `in`); returns (names, stop index).
fn pattern_names(toks: &[Token], mut i: usize, stop: &str) -> (Vec<String>, usize) {
    let mut names = Vec::new();
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if depth == 0 && ((stop == "=" && t.is_punct("=")) || (stop == "in" && t.is_ident("in"))) {
            return (names, i);
        }
        // A `let` with no initializer, or a malformed pattern: bail.
        if depth == 0 && (t.is_punct(";") || t.is_punct("{") && stop == "in") {
            return (names, i);
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {
                if t.kind == TokKind::Ident
                    && t.text
                        .chars()
                        .next()
                        .map(|c| c.is_lowercase() || c == '_')
                        .unwrap_or(false)
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                {
                    names.push(t.text.clone());
                }
            }
        }
        i += 1;
    }
    (names, i)
}

/// End of a binding's right-hand side: the top-level `;` (or `{` for
/// `if let` / `while let` / `for` headers, where struct literals cannot
/// appear unparenthesized).
fn rhs_end(toks: &[Token], mut i: usize, stop_at_brace: bool) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if !stop_at_brace => depth += 1,
            "}" if !stop_at_brace => depth -= 1,
            _ => {}
        }
        if depth <= 0 {
            if t.is_punct(";") {
                return i + 1;
            }
            if stop_at_brace && t.is_punct("{") {
                return i;
            }
            if depth < 0 {
                return i;
            }
        }
        i += 1;
    }
    i
}

/// Whether the token at `i` participates in binary arithmetic (or a
/// shift, or unary negation) — returns the operator for the message.
fn arith_at(toks: &[Token], i: usize) -> Option<String> {
    let next = toks.get(i + 1);
    if let Some(n) = next {
        if n.kind == TokKind::Punct {
            let s = n.text.as_str();
            if ARITH_OPS.contains(&s) {
                return Some(s.to_string());
            }
            if s == "*" {
                return Some("*".to_string());
            }
            if (s == "<" || s == ">") && matches!(toks.get(i + 2), Some(m) if m.text == n.text) {
                return Some(format!("{s}{s}"));
            }
        }
    }
    if i > 0 && toks[i - 1].kind == TokKind::Punct {
        let s = toks[i - 1].text.as_str();
        if ARITH_OPS.contains(&s) {
            return Some(s.to_string());
        }
        if s == "*" && i >= 2 {
            // `a * x` is arithmetic; `*x` is a deref (allowed). A
            // keyword before the star (`if *q < ...`, `return *q`) can
            // only open a deref, never a product.
            let before = &toks[i - 2];
            let keyword = matches!(
                before.text.as_str(),
                "if" | "while"
                    | "match"
                    | "return"
                    | "in"
                    | "else"
                    | "break"
                    | "continue"
                    | "loop"
                    | "move"
                    | "unsafe"
                    | "await"
            );
            let binary = (matches!(before.kind, TokKind::Ident | TokKind::Number) && !keyword)
                || before.is_punct(")")
                || before.is_punct("]");
            if binary {
                return Some("*".to_string());
            }
        }
    }
    None
}

/// Walks a method receiver chain backwards from `i` (the token before
/// the `.`); true when any chain segment is a tainted name.
fn receiver_chain_tainted(toks: &[Token], mut i: usize, tainted: &Entry) -> bool {
    loop {
        // Skip a balanced `(...)` or `[...]` group backwards.
        let t = &toks[i];
        if t.is_punct(")") || t.is_punct("]") {
            let (open, close) = if t.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let mut depth = 0i32;
            loop {
                let u = &toks[i];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return false;
                }
                i -= 1;
            }
            if i == 0 {
                return false;
            }
            i -= 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if tainted.contains(&t.text) {
                return true;
            }
            if i >= 2 && toks[i - 1].is_punct(".") {
                i -= 2;
                continue;
            }
            return false;
        }
        return false;
    }
}

/// Splits the argument list starting at the `(` token index into
/// half-open token spans, one per top-level comma segment.
fn split_args(toks: &[Token], open: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if i > start {
                        spans.push((start, i));
                    }
                    return spans;
                }
            }
            "," if depth == 1 => {
                spans.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    spans
}
