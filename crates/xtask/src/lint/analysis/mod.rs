//! Whole-workspace analyses on top of the call graph.
//!
//! The per-file [`rules`](super::rules) see one scanned file at a time;
//! the analyses here see the whole workspace at once: every file's token
//! stream, the cross-file [`ItemIndex`](super::items::ItemIndex), and
//! the [`CallGraph`](super::callgraph::CallGraph) over it. Three passes:
//!
//! * [`purity`] — comparison-model purity certification per summary
//!   crate (taint item values, follow them through calls, refuse the
//!   certificate on any representation-reading sink);
//! * [`panics`] — panic reachability from the driver entry points and
//!   the summary hot paths (replaces the old name-list heuristics);
//! * [`shared`] — derives the set of types that ride the parallel sweep
//!   pool and checks each has a compile-time `assert_send` audit.

pub mod panics;
pub mod purity;
pub mod shared;

use std::collections::BTreeMap;

use super::callgraph::{self, CallGraph};
use super::config::Role;
use super::items::{FnId, ItemIndex};
use super::scanner::{self, ScannedFile};
use super::tokens::{self, Token};
use super::Diagnostic;

pub use purity::{CertStatus, ModelCertificate};

/// One workspace source file with everything the analyses need.
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name (`"."` for the root package).
    pub crate_name: String,
    /// The crate's role.
    pub role: Role,
    /// True for files under `tests/`, `benches/`, or `examples/`.
    pub test_file: bool,
    /// True for the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Scanner output (cleaned lines, allows, test regions).
    pub scanned: ScannedFile,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Per-file item info (local fns + token owner map).
    pub items: super::items::FileItems,
}

/// Raw input for [`Workspace::build`].
pub struct FileInput {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name.
    pub crate_name: String,
    /// The crate's role.
    pub role: Role,
    /// True for files under `tests/`/`benches/`/`examples/`.
    pub test_file: bool,
    /// True for the crate's `src/lib.rs`.
    pub is_lib_root: bool,
    /// Source text.
    pub src: String,
}

/// The analyzed workspace: files, item index, call graph.
pub struct Workspace {
    /// All files, in walk order.
    pub files: Vec<SourceFile>,
    /// The whole-workspace item index.
    pub index: ItemIndex,
    /// The call graph over it.
    pub graph: CallGraph,
    by_rel: BTreeMap<String, usize>,
}

impl Workspace {
    /// Scans, tokenizes, indexes, and graph-builds every input file.
    pub fn build(inputs: Vec<FileInput>) -> Workspace {
        let mut index = ItemIndex::default();
        let mut files = Vec::with_capacity(inputs.len());
        for input in inputs {
            let scanned = scanner::scan(&input.src);
            let toks = tokens::tokenize(&scanned);
            let items = index.add_file(
                &input.crate_name,
                &input.rel,
                &toks,
                &scanned,
                input.test_file,
            );
            files.push(SourceFile {
                rel: input.rel,
                crate_name: input.crate_name,
                role: input.role,
                test_file: input.test_file,
                is_lib_root: input.is_lib_root,
                scanned,
                tokens: toks,
                items,
            });
        }
        let graph = callgraph::build(
            &index,
            files.iter().map(|f| (&f.tokens[..], &f.items.owner[..])),
        );
        let by_rel = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel.clone(), i))
            .collect();
        Workspace {
            files,
            index,
            graph,
            by_rel,
        }
    }

    /// The file a function was defined in.
    pub fn file_of_fn(&self, id: FnId) -> &SourceFile {
        let rel = &self.index.fns[id].file;
        &self.files[self.by_rel[rel]]
    }

    /// The file at a workspace-relative path, if indexed.
    pub fn file_at(&self, rel: &str) -> Option<&SourceFile> {
        self.by_rel.get(rel).map(|&i| &self.files[i])
    }

    /// A function's body tokens (empty for bodiless declarations).
    pub fn body_tokens(&self, id: FnId) -> &[Token] {
        match self.index.fns[id].body {
            Some((start, end)) => &self.file_of_fn(id).tokens[start..end],
            None => &[],
        }
    }

    /// The role of the crate a function belongs to.
    pub fn role_of_fn(&self, id: FnId) -> Role {
        super::config::role_of(&self.index.fns[id].crate_name)
    }
}

/// Everything the analyses produce.
#[derive(Debug, Default)]
pub struct AnalysisResult {
    /// Findings, unsorted (the engine sorts the merged report).
    pub diagnostics: Vec<Diagnostic>,
    /// One purity certificate per summary / bounded-universe crate.
    pub certificates: Vec<ModelCertificate>,
}

/// Runs all three analyses.
pub fn run(ws: &Workspace) -> AnalysisResult {
    let mut out = AnalysisResult::default();
    purity::run(ws, &mut out);
    panics::run(ws, &mut out.diagnostics);
    shared::run(ws, &mut out.diagnostics);
    out
}
