//! Panic reachability from the driver entry points and hot paths.
//!
//! The old `driver-no-panic` / `hot-path-panic` rules matched function
//! *names* against hand-maintained lists — a helper called from
//! `try_run` but not on the list was silently unchecked (reachability
//! found `audit_node`, `size_divergence`, `payload_string`, and
//! `compute_gap_scratch` exactly that way). This pass walks the call
//! graph instead:
//!
//! * **driver**: from the `try_*` entry points and witness extractors
//!   ([`DRIVER_ROOT_FNS`](super::super::config::DRIVER_ROOT_FNS)),
//!   staying inside driver-role crates — summary code the driver invokes
//!   is *allowed* to panic; that is what the `catch_unwind` guards and
//!   the typed `AdversaryError` surface are for;
//! * **hot path**: from every summary function named in
//!   [`HOT_PATH_FNS`](super::super::config::HOT_PATH_FNS), following
//!   calls into any library crate (a substrate helper that unwraps is a
//!   hot-path panic the name list could never see).
//!
//! Unknown callees (std, or gated std-colliding names) are assumed
//! non-panicking — the same conservative policy the purity analysis
//! counts as assumptions. Panicking constructs: `unwrap`/`expect`
//! method calls and `panic!`-family macros (errors), plus slice/map
//! indexing (`x[i]`), reported separately as the warning-severity
//! `reachable-indexing` rule since indexing against a checked local
//! invariant is pervasive and is ratcheted via the committed baseline.
//! `assert!`/`debug_assert!` remain allowed: they state invariants, and
//! the driver documents its asserts as the model-violation backstop.

use std::collections::BTreeMap;

use super::super::config::{Role, DRIVER_ROOT_FNS, HOT_PATH_FNS};
use super::super::items::FnId;
use super::super::tokens::{TokKind, Token};
use super::super::{Diagnostic, Severity};
use super::Workspace;

/// `.unwrap()` / `.expect(...)` method names.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panicking macro names (matched as `name!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs both reachability analyses.
pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let driver_roots: Vec<FnId> = (0..ws.index.fns.len())
        .filter(|&id| {
            let f = &ws.index.fns[id];
            !f.in_test
                && f.body.is_some()
                && DRIVER_ROOT_FNS.contains(&f.name.as_str())
                && ws.role_of_fn(id).driver_rules()
        })
        .collect();
    let hot_roots: Vec<FnId> = (0..ws.index.fns.len())
        .filter(|&id| {
            let f = &ws.index.fns[id];
            !f.in_test
                && f.body.is_some()
                && HOT_PATH_FNS.contains(&f.name.as_str())
                && ws.role_of_fn(id).hot_path_rules()
        })
        .collect();

    check(
        ws,
        &driver_roots,
        |role| role.driver_rules(),
        "driver-no-panic",
        "driver entry",
        "the guarded driver must return typed AdversaryError values, never unwind",
        out,
    );
    check(
        ws,
        &hot_roots,
        |role| !matches!(role, Role::Harness | Role::Tooling),
        "hot-path-panic",
        "hot path",
        "summary hot paths must not panic on adversarial input",
        out,
    );
}

/// BFS from `roots`, following edges only into crates `follow` admits,
/// then scans every reached body for panic sites.
#[allow(clippy::too_many_arguments)]
fn check(
    ws: &Workspace,
    roots: &[FnId],
    follow: fn(Role) -> bool,
    rule: &'static str,
    root_kind: &str,
    why: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
    let mut sorted = roots.to_vec();
    sorted.sort_unstable();
    for r in sorted {
        parent.insert(r, r);
        queue.push_back(r);
    }
    while let Some(f) = queue.pop_front() {
        for call in &ws.graph.calls[f] {
            for &t in &call.targets {
                if ws.index.fns[t].in_test || !follow(ws.role_of_fn(t)) {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert(f);
                    queue.push_back(t);
                }
            }
        }
    }

    // Deterministic: visit reached fns in FnId order (= walk order).
    let mut seen: BTreeMap<(&'static str, String, usize), ()> = BTreeMap::new();
    for &id in parent.keys() {
        let chain = chain_of(&parent, ws, id);
        let root = root_of(&parent, id);
        let root_name = ws.index.fns[root].name.clone();
        scan_fn(
            ws, id, &chain, &root_name, rule, root_kind, why, &mut seen, out,
        );
    }
}

fn root_of(parent: &BTreeMap<FnId, FnId>, mut id: FnId) -> FnId {
    while parent[&id] != id {
        id = parent[&id];
    }
    id
}

fn chain_of(parent: &BTreeMap<FnId, FnId>, ws: &Workspace, id: FnId) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while parent[&cur] != cur {
        cur = parent[&cur];
        chain.push(cur);
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| ws.index.fns[f].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Scans one function body for panic sites, attributing each to `chain`.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    ws: &Workspace,
    id: FnId,
    chain: &str,
    root_name: &str,
    rule: &'static str,
    root_kind: &str,
    why: &str,
    seen: &mut BTreeMap<(&'static str, String, usize), ()>,
    out: &mut Vec<Diagnostic>,
) {
    let f = &ws.index.fns[id];
    let Some((start, end)) = f.body else { return };
    let file = ws.file_of_fn(id);
    let toks = &file.tokens;
    let owners = &file.items.owner;
    let name = &f.name;

    let mut emit = |r: &'static str, sev: Severity, line: usize, msg: String| {
        if seen.insert((r, f.file.clone(), line), ()).is_none() {
            out.push(Diagnostic {
                file: f.file.clone(),
                line,
                rule: r,
                severity: sev,
                message: msg,
                baselined: false,
            });
        }
    };

    for i in start..end {
        // Attribute nested fns to themselves, not the enclosing body.
        if owners.get(i).copied().flatten() != Some(id) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if PANIC_METHODS.contains(&t.text.as_str())
                && i > start
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            {
                emit(
                    rule,
                    Severity::Error,
                    t.line,
                    format!(
                        "`{}` in `{name}` reachable from {root_kind} `{root_name}` \
                         ({chain}) — {why}",
                        t.text
                    ),
                );
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            {
                emit(
                    rule,
                    Severity::Error,
                    t.line,
                    format!(
                        "`{}!` in `{name}` reachable from {root_kind} `{root_name}` \
                         ({chain}) — {why}",
                        t.text
                    ),
                );
            }
        }
        if t.is_punct("[") && i > start && is_index_receiver(&toks[i - 1]) {
            emit(
                "reachable-indexing",
                Severity::Warning,
                t.line,
                format!(
                    "indexing in `{name}` reachable from {root_kind} `{root_name}` \
                     ({chain}) — panics out-of-bounds; prefer get()/checked access"
                ),
            );
        }
    }
}

/// `x[...]`, `f(..)[...]`, `a[i][j]` index; `#[attr]`, `vec![...]`,
/// `[T; N]` types and literals do not.
fn is_index_receiver(prev: &Token) -> bool {
    prev.kind == TokKind::Ident && !is_keyword_before_bracket(&prev.text)
        || prev.is_punct(")")
        || prev.is_punct("]")
}

fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "else" | "match" | "if" | "mut" | "dyn" | "as"
    )
}
