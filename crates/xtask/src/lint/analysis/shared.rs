//! Shared-state audit: derive the pool-crossing type set from the graph.
//!
//! The old `sharding-send-sync` rule checked a hand-maintained
//! `SEND_AUDITED_TYPES` table — a new call site that moved a new type
//! across the `cqs-bench` worker pool changed nothing in `config.rs`
//! and so was never audited. This pass derives the set instead:
//!
//! 1. **Spawn functions**: any non-test function whose body contains a
//!    `spawn(` call (today: `run_cells` in `cqs-bench`, which owns the
//!    `std::thread::scope` worker pool).
//! 2. **Participants**: each spawn function plus its direct callers —
//!    the functions whose locals are captured by the worker closures.
//! 3. **Derived types**: every workspace struct/enum named in a
//!    participant's signature or body, or in the signature of a function
//!    a participant directly calls (the per-cell runners). Types defined
//!    in test code, in `src/bin/` binaries (their spawn site is in the
//!    same compilation unit), or in the Tooling crate are exempt.
//!
//! Every derived type must keep a compile-time `assert_send::<T>()`
//! audit line somewhere in its defining crate (any non-test line — the
//! audit function can sit next to a private type). An
//! `assert_sync::<T>()` line also counts: shared facades like the
//! service registry are crossed *by reference* from many threads, and
//! their audits assert `Sync` alongside `Send`. The line proves the
//! bound at compile time; the rule's job is to keep it from being
//! deleted, and — unlike the table — the *requirement* now appears the
//! moment a call site starts moving the type.

use std::collections::{BTreeMap, BTreeSet};

use super::super::config::Role;
use super::super::items::FnId;
use super::super::scanner::contains_word;
use super::super::tokens::TokKind;
use super::super::{Diagnostic, Severity};
use super::Workspace;

/// Runs the audit.
pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Workspace types eligible for auditing: name -> TypeItem index.
    let mut types: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, ty) in ws.index.types.iter().enumerate() {
        if ty.in_test || ty.file.contains("/bin/") {
            continue;
        }
        if super::super::config::role_of(&ty.crate_name) == Role::Tooling {
            continue;
        }
        types.entry(ty.name.as_str()).or_insert(i);
    }

    // 1. Spawn functions.
    let spawn_fns: Vec<FnId> = (0..ws.index.fns.len())
        .filter(|&id| {
            let f = &ws.index.fns[id];
            if f.in_test || f.body.is_none() {
                return false;
            }
            if super::super::config::role_of(&f.crate_name) == Role::Tooling {
                return false;
            }
            ws.graph.calls[id].iter().any(|c| c.name == "spawn") || body_has_call(ws, id, "spawn")
        })
        .collect();
    if spawn_fns.is_empty() {
        return;
    }

    // 2. Participants: spawn fns + their direct non-test callers.
    let mut participants: BTreeMap<FnId, FnId> = BTreeMap::new(); // fn -> spawn fn
    for &s in &spawn_fns {
        participants.insert(s, s);
        for (caller, calls) in ws.graph.calls.iter().enumerate() {
            if ws.index.fns[caller].in_test || ws.file_of_fn(caller).test_file {
                continue;
            }
            if calls.iter().any(|c| c.targets.contains(&s)) {
                participants.entry(caller).or_insert(s);
            }
        }
    }

    // 3. Derived types, each with one (spawn fn, participant) witness.
    let mut derived: BTreeMap<usize, (FnId, FnId)> = BTreeMap::new();
    for (&p, &s) in &participants {
        let mut mention = |name: &str| {
            if let Some(&ti) = types.get(name) {
                derived.entry(ti).or_insert((s, p));
            }
        };
        let f = &ws.index.fns[p];
        for param in &f.params {
            for t in &param.ty {
                mention(t);
            }
        }
        for t in &f.ret {
            mention(t);
        }
        for tok in ws.body_tokens(p) {
            if tok.kind == TokKind::Ident {
                mention(&tok.text);
            }
        }
        // Signatures of direct callees: the per-cell runner's argument
        // and result types ride the pool even when the participant only
        // names them implicitly through the callee.
        for call in &ws.graph.calls[p] {
            for &q in &call.targets {
                let qf = &ws.index.fns[q];
                for param in &qf.params {
                    for t in &param.ty {
                        mention(t);
                    }
                }
                for t in &qf.ret {
                    mention(t);
                }
            }
        }
    }

    // Audit check: an `assert_send` (or `assert_sync`) line naming the
    // type, anywhere in the defining crate's non-test code.
    let mut audited: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new(); // crate -> type names
    for file in &ws.files {
        if file.test_file {
            continue;
        }
        for line in &file.scanned.lines {
            if line.in_test
                || !(line.code.contains("assert_send") || line.code.contains("assert_sync"))
            {
                continue;
            }
            let per_crate = audited.entry(file.crate_name.as_str()).or_default();
            for &name in types.keys() {
                if contains_word(&line.code, name) {
                    per_crate.insert(name);
                }
            }
        }
    }

    for (&ti, &(s, p)) in &derived {
        let ty = &ws.index.types[ti];
        let ok = audited
            .get(ty.crate_name.as_str())
            .map(|set| set.contains(ty.name.as_str()))
            .unwrap_or(false);
        if !ok {
            out.push(Diagnostic {
                file: ty.file.clone(),
                line: ty.line,
                rule: "sharding-send-sync",
                severity: Severity::Error,
                message: format!(
                    "type `{}` rides the parallel sweep pool (spawned by `{}`, via `{}`) \
                     but crate `{}` has no compile-time `assert_send`/`assert_sync` audit \
                     line for it",
                    ty.name, ws.index.fns[s].name, ws.index.fns[p].name, ty.crate_name
                ),
                baselined: false,
            });
        }
    }
}

/// Whether a body contains `spawn(` textually (the graph gates `spawn`
/// behind the common-name policy when the receiver is unknown, so check
/// the tokens too).
fn body_has_call(ws: &Workspace, id: FnId, name: &str) -> bool {
    let toks = ws.body_tokens(id);
    toks.iter()
        .enumerate()
        .any(|(i, t)| t.is_ident(name) && matches!(toks.get(i + 1), Some(n) if n.is_punct("(")))
}
