//! Deterministic, std-only JSON rendering of a lint report.
//!
//! Hand-rolled on purpose: the workspace takes no dependencies, and the
//! output must be *byte-stable* — same findings in, same bytes out — so
//! the committed baseline and the golden-file test can diff it. Keys are
//! emitted in a fixed order and collections are pre-sorted by the
//! engine; nothing here consults a clock, a map with randomized
//! iteration order, or the environment.

use std::fmt::Write as _;

use super::analysis::{CertStatus, ModelCertificate};
use super::{Diagnostic, LintReport, Severity};

/// Escapes a string per JSON (RFC 8259).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn diag_json(d: &Diagnostic, indent: &str) -> String {
    format!(
        "{indent}{{\n{indent}  \"rule\": \"{}\",\n{indent}  \"severity\": \"{}\",\n\
         {indent}  \"file\": \"{}\",\n{indent}  \"line\": {},\n\
         {indent}  \"message\": \"{}\",\n{indent}  \"baselined\": {}\n{indent}}}",
        escape(d.rule),
        severity_str(d.severity),
        escape(&d.file),
        d.line,
        escape(&d.message),
        d.baselined
    )
}

fn cert_json(c: &ModelCertificate, indent: &str) -> String {
    let status = match c.status {
        CertStatus::Certified => "certified",
        CertStatus::Refused => "refused",
    };
    let reasons = if c.reasons.is_empty() {
        "[]".to_string()
    } else {
        let items: Vec<String> = c
            .reasons
            .iter()
            .map(|r| format!("{indent}    \"{}\"", escape(r)))
            .collect();
        format!("[\n{}\n{indent}  ]", items.join(",\n"))
    };
    format!(
        "{indent}{{\n{indent}  \"crate\": \"cqs-{}\",\n{indent}  \"status\": \"{status}\",\n\
         {indent}  \"fns_analyzed\": {},\n{indent}  \"assumptions\": {},\n\
         {indent}  \"reasons\": {reasons}\n{indent}}}",
        escape(&c.crate_name),
        c.fns_analyzed,
        c.assumptions
    )
}

/// Renders the full report as pretty-printed JSON (trailing newline).
pub fn render(report: &LintReport) -> String {
    let diags: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| diag_json(d, "    "))
        .collect();
    let certs: Vec<String> = report
        .certificates
        .iter()
        .map(|c| cert_json(c, "    "))
        .collect();
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    let baselined = report.diagnostics.iter().filter(|d| d.baselined).count();
    let wrap = |items: Vec<String>| {
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", items.join(",\n"))
        }
    };
    format!(
        "{{\n  \"version\": 1,\n  \"files_scanned\": {},\n  \"fns_indexed\": {},\n  \
         \"unresolved_calls\": {},\n  \"summary\": {{\n    \"errors\": {errors},\n    \
         \"warnings\": {warnings},\n    \"baselined\": {baselined}\n  }},\n  \
         \"diagnostics\": {},\n  \"certificates\": {}\n}}\n",
        report.files_scanned,
        report.fns_indexed,
        report.unresolved_calls,
        wrap(diags),
        wrap(certs)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_report_renders() {
        let report = LintReport::default();
        let json = render(&report);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.ends_with("}\n"));
    }
}
