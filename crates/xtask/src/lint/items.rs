//! Item indexer: `fn` / `impl` / `trait` / `struct` / `enum` items with
//! spans, signatures, and ownership.
//!
//! A single recursive-descent pass over the [`tokens`](super::tokens)
//! stream produces, per file:
//!
//! * one [`FnItem`] per function, carrying its enclosing impl/trait self
//!   type, the generic type-parameter names in scope (impl-level plus
//!   fn-level — the purity analysis treats values of those types as
//!   opaque items), the parsed parameter list, and the token span of its
//!   body;
//! * one [`TypeItem`] per struct/enum/union, with the token span of its
//!   definition (field types feed the shared-state audit);
//! * an *owner map*: for every token, the innermost enclosing function,
//!   so the call-graph builder can attribute a call site to exactly one
//!   function even when functions nest.
//!
//! This is still not a full parser — it balances delimiters and trusts
//! the scanner's lexical cleanup — but unlike the line rules it sees
//! *structure*: signatures, bodies, and cross-file identity.

use super::scanner::ScannedFile;
use super::tokens::{TokKind, Token};

/// Index of a function in [`ItemIndex::fns`].
pub type FnId = usize;

/// One parsed parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`"self"` for receivers, `"_"` when destructured).
    pub name: String,
    /// Type tokens, as text.
    pub ty: Vec<String>,
}

/// One indexed function.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Display path: `crate/Type::name` or `crate/name`.
    pub qual: String,
    /// Owning crate (directory name, `"."` for the root package).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// Self type of the enclosing `impl`/`trait`, if any.
    pub self_type: Option<String>,
    /// Whether the first parameter is a `self` receiver.
    pub is_method: bool,
    /// Generic type-parameter names in scope (impl + fn level).
    pub generics: Vec<String>,
    /// Parsed parameters, receiver included.
    pub params: Vec<Param>,
    /// Return-type tokens, as text (empty for `()`).
    pub ret: Vec<String>,
    /// Token span of the body `{ ... }` (half-open, braces included);
    /// `None` for bodiless trait/extern declarations.
    pub body: Option<(usize, usize)>,
    /// True for functions in test files or `#[cfg(test)]` modules.
    pub in_test: bool,
}

/// What kind of type definition a [`TypeItem`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TypeKind {
    /// `struct`
    Struct,
    /// `enum`
    Enum,
}

/// One indexed type definition.
#[derive(Clone, Debug)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// Owning crate.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the name.
    pub line: usize,
    /// Token span of the definition (fields/variants), half-open.
    pub def: (usize, usize),
    /// Struct or enum.
    pub kind: TypeKind,
    /// True for definitions in test files or `#[cfg(test)]` modules.
    pub in_test: bool,
}

/// Per-file parse result: local slices plus the token owner map.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions defined in this file (global [`FnId`]s).
    pub fns: Vec<FnId>,
    /// For each token, the innermost enclosing function, if any.
    pub owner: Vec<Option<FnId>>,
}

/// The whole-workspace item index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every function in the workspace, in walk order.
    pub fns: Vec<FnItem>,
    /// Every struct/enum in the workspace, in walk order.
    pub types: Vec<TypeItem>,
}

impl ItemIndex {
    /// All functions with the given bare name.
    pub fn fns_named<'a>(&'a self, name: &str) -> impl Iterator<Item = FnId> + 'a {
        let name = name.to_string();
        (0..self.fns.len()).filter(move |&id| self.fns[id].name == name)
    }

    /// Whether any workspace type has this name.
    pub fn type_named(&self, name: &str) -> Option<&TypeItem> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Parses one file's tokens into the index. `test_file` marks files
    /// under `tests/`/`benches/`/`examples/`.
    pub fn add_file(
        &mut self,
        crate_name: &str,
        path: &str,
        tokens: &[Token],
        scanned: &ScannedFile,
        test_file: bool,
    ) -> FileItems {
        let mut p = Parser {
            toks: tokens,
            i: 0,
            crate_name,
            path,
            test_file,
            scanned,
            index: self,
            out: FileItems {
                fns: Vec::new(),
                owner: vec![None; tokens.len()],
            },
            fn_stack: Vec::new(),
        };
        let scope = Scope::default();
        p.parse_items(&scope, None);
        let mut out = std::mem::take(&mut p.out);
        out.owner.truncate(tokens.len());
        out
    }
}

/// Enclosing impl/trait context while parsing.
#[derive(Clone, Debug, Default)]
struct Scope {
    self_type: Option<String>,
    generics: Vec<String>,
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    crate_name: &'a str,
    path: &'a str,
    test_file: bool,
    scanned: &'a ScannedFile,
    index: &'a mut ItemIndex,
    out: FileItems,
    fn_stack: Vec<FnId>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    /// Consumes one token, attributing it to the innermost function.
    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i)?;
        self.out.owner[self.i] = self.fn_stack.last().copied();
        self.i += 1;
        Some(t)
    }

    fn in_test_at(&self, line: usize) -> bool {
        self.test_file
            || self
                .scanned
                .lines
                .get(line.saturating_sub(1))
                .map(|l| l.in_test)
                .unwrap_or(false)
    }

    /// Parses items and statements until `stop_at_close` (a `}` closing
    /// the current block) or end of tokens.
    fn parse_items(&mut self, scope: &Scope, stop_at_close: Option<()>) {
        while let Some(t) = self.peek() {
            if t.is_punct("}") && stop_at_close.is_some() {
                return; // caller consumes the brace
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "fn" => {
                        self.parse_fn(scope);
                        continue;
                    }
                    "impl" => {
                        self.parse_impl(scope);
                        continue;
                    }
                    "trait" => {
                        self.parse_trait(scope);
                        continue;
                    }
                    "struct" | "enum" | "union" => {
                        self.parse_type_item();
                        continue;
                    }
                    "mod" => {
                        self.parse_mod(scope);
                        continue;
                    }
                    _ => {}
                }
            }
            if t.is_punct("{") {
                self.bump();
                self.parse_items(scope, Some(()));
                self.bump(); // the `}`
                continue;
            }
            self.bump();
        }
    }

    /// `fn name <generics>? ( params ) (-> ret)? where...? ({ body } | ;)`
    fn parse_fn(&mut self, scope: &Scope) {
        self.bump(); // `fn`
        let Some(name_tok) = self.peek() else { return };
        if name_tok.kind != TokKind::Ident {
            // `fn` in type position (`fn(u32) -> u32`); not an item.
            self.bump();
            return;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.bump();

        let mut generics = scope.generics.clone();
        if self.peek().map(|t| t.is_punct("<")).unwrap_or(false) {
            generics.extend(self.parse_generics());
        }

        let mut params = Vec::new();
        let mut is_method = false;
        if self.peek().map(|t| t.is_punct("(")).unwrap_or(false) {
            params = self.parse_params();
            is_method = params.first().map(|p| p.name == "self").unwrap_or(false);
        }

        let mut ret = Vec::new();
        if self.peek().map(|t| t.is_punct("->")).unwrap_or(false) {
            self.bump();
            ret = self.collect_until_body_or_semi();
        }
        // `where` clause (or leftovers): skip to `{` or `;`.
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            self.bump();
        }

        let qual = match &scope.self_type {
            Some(ty) => format!("{}/{}::{}", self.crate_name, ty, name),
            None => format!("{}/{}", self.crate_name, name),
        };
        let id = self.index.fns.len();
        self.index.fns.push(FnItem {
            name,
            qual,
            crate_name: self.crate_name.to_string(),
            file: self.path.to_string(),
            line,
            self_type: scope.self_type.clone(),
            is_method,
            generics,
            params,
            ret,
            body: None,
            in_test: self.in_test_at(line),
        });
        self.out.fns.push(id);

        match self.peek() {
            Some(t) if t.is_punct("{") => {
                let start = self.i;
                self.fn_stack.push(id);
                self.bump(); // `{`
                self.parse_items(scope, Some(()));
                self.bump(); // `}`
                self.fn_stack.pop();
                self.index.fns[id].body = Some((start, self.i));
            }
            Some(t) if t.is_punct(";") => {
                self.bump();
            }
            _ => {}
        }
    }

    /// Return type: tokens until `{`, `;`, or a top-level `where`.
    fn collect_until_body_or_semi(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        let mut angle = 0i32;
        let mut paren = 0i32;
        while let Some(t) = self.peek() {
            if angle <= 0
                && paren <= 0
                && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where"))
            {
                break;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            }
            out.push(t.text.clone());
            self.bump();
        }
        out
    }

    /// `< ... >`: returns the declared type-parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        let mut at_param_start = true;
        let mut after_const = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => {
                    depth += 1;
                    self.bump();
                    continue;
                }
                ">" if t.kind == TokKind::Punct => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        break;
                    }
                    continue;
                }
                "," if t.kind == TokKind::Punct && depth == 1 => {
                    at_param_start = true;
                    after_const = false;
                    self.bump();
                    continue;
                }
                _ => {}
            }
            if depth == 1 && at_param_start {
                if t.kind == TokKind::Ident {
                    if t.text == "const" {
                        after_const = true;
                    } else {
                        // Const parameters are values, not item types.
                        if !after_const {
                            names.push(t.text.clone());
                        }
                        at_param_start = false;
                    }
                } else if t.kind == TokKind::Lifetime {
                    at_param_start = false;
                }
            }
            self.bump();
        }
        names
    }

    /// `( ... )`: splits top-level comma segments into [`Param`]s.
    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        let mut seg: Vec<&Token> = Vec::new();
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        self.bump();
                        break;
                    }
                }
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" if t.kind == TokKind::Punct => angle += 1,
                ">" if t.kind == TokKind::Punct => angle -= 1,
                "," if paren == 1 && angle == 0 && bracket == 0 => {
                    if let Some(p) = param_from(&seg) {
                        params.push(p);
                    }
                    seg.clear();
                    self.bump();
                    continue;
                }
                _ => {}
            }
            if paren >= 1 && !(paren == 1 && t.is_punct("(")) {
                seg.push(t);
            }
            self.bump();
        }
        if let Some(p) = param_from(&seg) {
            params.push(p);
        }
        params
    }

    /// `impl <generics>? Path (for Path)? where...? { ... }`
    fn parse_impl(&mut self, outer: &Scope) {
        self.bump(); // `impl`
        let mut generics = outer.generics.clone();
        if self.peek().map(|t| t.is_punct("<")).unwrap_or(false) {
            generics = self.parse_generics();
        }
        // First path; if a top-level `for` follows, the second path is
        // the self type.
        let first = self.collect_type_path();
        let self_path = if self.peek().map(|t| t.is_ident("for")).unwrap_or(false) {
            self.bump();
            self.collect_type_path()
        } else {
            first
        };
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            self.bump();
        }
        let scope = Scope {
            self_type: last_path_ident(&self_path),
            generics,
        };
        if self.peek().map(|t| t.is_punct("{")).unwrap_or(false) {
            self.bump();
            self.parse_items(&scope, Some(()));
            self.bump();
        }
    }

    /// A type path: tokens until a top-level `for`, `where`, `{`, or `;`.
    fn collect_type_path(&mut self) -> Vec<&'a Token> {
        let mut out = Vec::new();
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if angle <= 0
                && (t.is_ident("for") || t.is_ident("where") || t.is_punct("{") || t.is_punct(";"))
            {
                break;
            }
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => angle += 1,
                ">" if t.kind == TokKind::Punct => angle -= 1,
                _ => {}
            }
            out.push(t);
            self.bump();
        }
        out
    }

    /// `trait Name <generics>? (: bounds)? { ... }`
    fn parse_trait(&mut self, outer: &Scope) {
        self.bump(); // `trait`
        let Some(name_tok) = self.peek() else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        self.bump();
        let mut generics = outer.generics.clone();
        if self.peek().map(|t| t.is_punct("<")).unwrap_or(false) {
            generics = self.parse_generics();
        }
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            self.bump();
        }
        let scope = Scope {
            self_type: Some(name),
            generics,
        };
        if self.peek().map(|t| t.is_punct("{")).unwrap_or(false) {
            self.bump();
            self.parse_items(&scope, Some(()));
            self.bump();
        }
    }

    /// `struct/enum/union Name <generics>? ( {fields} | (tuple); | ; )`
    fn parse_type_item(&mut self) {
        let kind = match self.peek().map(|t| t.text.as_str()) {
            Some("enum") => TypeKind::Enum,
            _ => TypeKind::Struct,
        };
        self.bump(); // keyword
        let Some(name_tok) = self.peek() else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.bump();
        if self.peek().map(|t| t.is_punct("<")).unwrap_or(false) {
            self.parse_generics();
        }
        // Skip where clauses up to the definition itself.
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_punct("(") || t.is_punct(";") {
                break;
            }
            self.bump();
        }
        let def = match self.peek() {
            Some(t) if t.is_punct("{") => {
                let start = self.i;
                self.skip_balanced("{", "}");
                (start, self.i)
            }
            Some(t) if t.is_punct("(") => {
                let start = self.i;
                self.skip_balanced("(", ")");
                if self.peek().map(|t| t.is_punct(";")).unwrap_or(false) {
                    self.bump();
                }
                (start, self.i)
            }
            _ => {
                if self.peek().map(|t| t.is_punct(";")).unwrap_or(false) {
                    self.bump();
                }
                (self.i, self.i)
            }
        };
        self.index.types.push(TypeItem {
            name,
            crate_name: self.crate_name.to_string(),
            file: self.path.to_string(),
            line,
            def,
            kind,
            in_test: self.in_test_at(line),
        });
    }

    /// `mod name { ... }` or `mod name;` — a fresh item scope.
    fn parse_mod(&mut self, _outer: &Scope) {
        self.bump(); // `mod`
        if self
            .peek()
            .map(|t| t.kind == TokKind::Ident)
            .unwrap_or(false)
        {
            self.bump(); // name
        }
        match self.peek() {
            Some(t) if t.is_punct("{") => {
                self.bump();
                let scope = Scope::default();
                self.parse_items(&scope, Some(()));
                self.bump();
            }
            Some(t) if t.is_punct(";") => {
                self.bump();
            }
            _ => {}
        }
    }

    /// Consumes a balanced `open ... close` region (no item parsing).
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Interprets one comma segment of a parameter list.
fn param_from(seg: &[&Token]) -> Option<Param> {
    if seg.is_empty() {
        return None;
    }
    // Receiver forms: `self`, `&self`, `&'a self`, `mut self`, `&mut self`.
    let head: Vec<&str> = seg.iter().take(4).map(|t| t.text.as_str()).collect();
    if head.contains(&"self")
        && !seg
            .iter()
            .take_while(|t| !t.is_ident("self"))
            .any(|t| t.is_punct(":"))
    {
        return Some(Param {
            name: "self".to_string(),
            ty: vec!["Self".to_string()],
        });
    }
    // `name: Type` — name is the last ident before the first top-level `:`.
    let colon = seg.iter().position(|t| t.is_punct(":"))?;
    let name = seg[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "_".to_string());
    let ty = seg[colon + 1..].iter().map(|t| t.text.clone()).collect();
    Some(Param { name, ty })
}

/// Last identifier at angle-depth 0 before any `<` — the bare type name
/// of a possibly-generic, possibly-qualified path.
fn last_path_ident(path: &[&Token]) -> Option<String> {
    let mut last = None;
    for t in path {
        if t.is_punct("<") {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "dyn" && t.text != "mut" {
            last = Some(t.text.clone());
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::super::scanner::scan;
    use super::super::tokens::tokenize;
    use super::*;

    fn index(src: &str) -> (ItemIndex, FileItems, Vec<Token>) {
        let scanned = scan(src);
        let toks = tokenize(&scanned);
        let mut idx = ItemIndex::default();
        let items = idx.add_file("gk", "src/lib.rs", &toks, &scanned, false);
        (idx, items, toks)
    }

    #[test]
    fn free_fn_with_params_and_ret() {
        let (idx, _, _) = index("fn add(a: u64, b: u64) -> u64 { a }\n");
        assert_eq!(idx.fns.len(), 1);
        let f = &idx.fns[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.qual, "gk/add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert_eq!(f.params[1].ty, vec!["u64"]);
        assert_eq!(f.ret, vec!["u64"]);
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_carry_self_type_and_generics() {
        let src = "struct Gk<T> { xs: Vec<T> }\n\
                   impl<T: Ord + Clone> Gk<T> {\n\
                       pub fn insert(&mut self, x: T) { self.xs.push(x); }\n\
                       fn helper(v: &T) -> bool { true }\n\
                   }\n";
        let (idx, _, _) = index(src);
        assert_eq!(idx.types.len(), 1);
        assert_eq!(idx.types[0].name, "Gk");
        assert_eq!(idx.fns.len(), 2);
        let ins = &idx.fns[0];
        assert_eq!(ins.qual, "gk/Gk::insert");
        assert!(ins.is_method);
        assert_eq!(ins.self_type.as_deref(), Some("Gk"));
        assert_eq!(ins.generics, vec!["T"]);
        assert_eq!(ins.params[1].name, "x");
        assert_eq!(ins.params[1].ty, vec!["T"]);
        let helper = &idx.fns[1];
        assert!(!helper.is_method);
        assert_eq!(helper.generics, vec!["T"]);
    }

    #[test]
    fn trait_impl_self_type_is_the_for_path() {
        let src = "impl<T: Ord> Summary<T> for Gk<T> {\n    fn insert(&mut self, x: T) {}\n}\n";
        let (idx, _, _) = index(src);
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("Gk"));
    }

    #[test]
    fn trait_decls_have_no_body() {
        let src = "trait Summary<T> {\n    fn insert(&mut self, x: T);\n    fn len(&self) -> usize { 0 }\n}\n";
        let (idx, _, _) = index(src);
        assert_eq!(idx.fns.len(), 2);
        assert!(idx.fns[0].body.is_none());
        assert!(idx.fns[1].body.is_some());
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("Summary"));
        assert_eq!(idx.fns[0].generics, vec!["T"]);
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let src = "fn outer() {\n    inner_call();\n    fn inner() { deep_call(); }\n    tail_call();\n}\n";
        let (idx, items, toks) = index(src);
        assert_eq!(idx.fns.len(), 2);
        let outer = idx.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = idx.fns.iter().position(|f| f.name == "inner").unwrap();
        let owner_of = |name: &str| {
            let at = toks.iter().position(|t| t.is_ident(name)).unwrap();
            items.owner[at]
        };
        assert_eq!(owner_of("inner_call"), Some(outer));
        assert_eq!(owner_of("deep_call"), Some(inner));
        assert_eq!(owner_of("tail_call"), Some(outer));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let (idx, _, _) = index(src);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
    }

    #[test]
    fn enums_and_tuple_structs_are_indexed() {
        let src = "pub enum Verdict { Ok, Bad(String) }\npub struct Wrap(u64);\n";
        let (idx, _, _) = index(src);
        assert_eq!(idx.types.len(), 2);
        assert_eq!(idx.types[0].kind, TypeKind::Enum);
        assert_eq!(idx.types[1].name, "Wrap");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real() { let f: fn(u32) -> u32 = helper; f(1); }\n";
        let (idx, _, _) = index(src);
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "real");
    }

    #[test]
    fn where_clauses_and_const_generics() {
        let src = "fn f<T, const N: usize>(x: T) -> bool where T: Ord { true }\n";
        let (idx, _, _) = index(src);
        let f = &idx.fns[0];
        assert_eq!(f.generics, vec!["T"]);
        assert_eq!(f.params.len(), 1);
        assert!(f.body.is_some());
    }
}
