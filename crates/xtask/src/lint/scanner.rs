//! A lightweight lexical scanner for Rust source.
//!
//! The rules match on *code* text only: this module blanks out comments,
//! string/char literals, and doc text (replacing them with spaces so
//! column positions survive), while separately capturing line-comment
//! text for `cqs-lint:` suppression directives. It also tracks three
//! pieces of structure the rules need:
//!
//! * brace depth, to scope regions;
//! * `#[cfg(test)]` module regions (word-boundary match on `test`, so
//!   `feature = "proptest"` does not count);
//! * the stack of enclosing `fn` names, for hot-path rules.
//!
//! This is deliberately not a full parser — it is a few hundred lines of
//! std-only code that errs on the side of *not* flagging (strings and
//! comments can never fire a rule) and is trivially auditable.

use std::collections::BTreeSet;

/// One source line after lexical cleanup.
#[derive(Clone, Debug)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments and literal contents blanked to spaces.
    pub code: String,
    /// Rules suppressed on this line via `// cqs-lint: allow(...)`
    /// (trailing on the line, or on a standalone comment line directly
    /// above).
    pub allows: Vec<String>,
    /// True inside a `#[cfg(test)]` module body.
    pub in_test: bool,
    /// Names of enclosing functions, outermost first, as of the start of
    /// this line.
    pub fns: Vec<String>,
    /// Brace depth at the start of the line.
    pub depth: usize,
}

impl ScannedLine {
    /// Whether `rule` is suppressed on this line.
    pub fn allowed(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// A whole scanned file.
#[derive(Clone, Debug, Default)]
pub struct ScannedFile {
    /// All lines, in order.
    pub lines: Vec<ScannedLine>,
    /// Rules suppressed for the entire file via
    /// `// cqs-lint: allow-file(...)`.
    pub file_allows: BTreeSet<String>,
    /// Where each `allow-file(...)` directive sits: (1-based line, rule).
    /// The engine uses these to report unused file-level suppressions.
    pub file_allow_sites: Vec<(usize, String)>,
}

impl ScannedFile {
    /// Whether `rule` is suppressed at `line` (line- or file-level).
    pub fn suppressed(&self, line: &ScannedLine, rule: &str) -> bool {
        line.allowed(rule) || self.file_allows.contains(rule)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `src` into cleaned lines with structural annotations.
pub fn scan(src: &str) -> ScannedFile {
    let (code_lines, comment_lines) = strip(src);
    annotate(code_lines, comment_lines)
}

/// Pass 1: blank comments/literals, capture comment text per line.
fn strip(src: &str) -> (Vec<String>, Vec<String>) {
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }

        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    code.push('"');
                    i += 1;
                }
                'r' | 'b' if raw_string_hashes(&chars, i).is_some() => {
                    let (hashes, consumed) = raw_string_hashes(&chars, i).unwrap();
                    mode = Mode::RawStr(hashes);
                    for _ in 0..consumed {
                        code.push(' ');
                    }
                    i += consumed;
                }
                '\'' => {
                    // Lifetime (`'a`, `'static`) vs char literal: a
                    // lifetime is `'` + ident not closed by another `'`.
                    if is_char_literal(&chars, i) {
                        mode = Mode::Char;
                        code.push('\'');
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    mode = Mode::Code;
                    code.push('"');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes as usize {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    mode = Mode::Code;
                    code.push('\'');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    (code_lines, comment_lines)
}

/// Detects `r"`, `r#"`, `br##"`, ... at `i`; returns (hash count, chars
/// consumed up to and including the opening quote).
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) if c != '\'' => chars.get(i + 2) == Some(&'\''),
        _ => false,
    }
}

/// Pass 2: suppressions, test regions, fn stack, brace depth.
fn annotate(code_lines: Vec<String>, comment_lines: Vec<String>) -> ScannedFile {
    let mut file_allows = BTreeSet::new();
    let mut file_allow_sites: Vec<(usize, String)> = Vec::new();
    let mut pending_allows: Vec<String> = Vec::new();
    let mut lines = Vec::with_capacity(code_lines.len());

    let mut depth = 0usize;
    // (depth at which the test module's `{` opened)
    let mut test_regions: Vec<usize> = Vec::new();
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_mod_test = false;
    let mut pending_fn: Option<String> = None;

    for (idx, (code, comment)) in code_lines.iter().zip(comment_lines.iter()).enumerate() {
        let mut allows: Vec<String> = std::mem::take(&mut pending_allows);
        let (line_allows, file_only) = parse_directives(comment);
        for rule in file_only {
            file_allow_sites.push((idx + 1, rule.clone()));
            file_allows.insert(rule);
        }
        let has_code = !code.trim().is_empty();
        if has_code {
            allows.extend(line_allows);
        } else {
            // Standalone comment line: directives apply to the next line
            // that carries code.
            pending_allows = line_allows;
            pending_allows.extend(allows.iter().cloned());
        }

        let in_test = !test_regions.is_empty();
        let fns: Vec<String> = fn_stack.iter().map(|(n, _)| n.clone()).collect();
        lines.push(ScannedLine {
            number: idx + 1,
            code: code.clone(),
            allows,
            in_test,
            fns,
            depth,
        });

        // --- structural updates for subsequent lines ---
        if contains_test_cfg(code) {
            pending_test_attr = true;
        }
        if pending_test_attr && contains_word(code, "mod") {
            pending_mod_test = true;
            pending_test_attr = false;
        }
        if pending_fn.is_none() {
            if let Some(name) = fn_name(code) {
                pending_fn = Some(name);
            }
        }
        // A signature terminated by `;` (trait method, extern) never
        // opens a body.
        if pending_fn.is_some() && code.contains(';') && !code.contains('{') {
            pending_fn = None;
        }

        for c in code.chars() {
            match c {
                '{' => {
                    if pending_mod_test {
                        test_regions.push(depth);
                        pending_mod_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                    while fn_stack.last().map(|(_, d)| *d == depth).unwrap_or(false) {
                        fn_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }

    ScannedFile {
        lines,
        file_allows,
        file_allow_sites,
    }
}

/// Extracts `allow(...)` and `allow-file(...)` rule lists from a line
/// comment's text.
fn parse_directives(comment: &str) -> (Vec<String>, Vec<String>) {
    let mut line_rules = Vec::new();
    let mut file_rules = Vec::new();
    let Some(pos) = comment.find("cqs-lint:") else {
        return (line_rules, file_rules);
    };
    let rest = &comment[pos + "cqs-lint:".len()..];
    for (kind, sink) in [
        ("allow-file(", &mut file_rules),
        ("allow(", &mut line_rules),
    ] {
        let mut search = rest;
        while let Some(start) = search.find(kind) {
            // `allow(` also matches inside `allow-file(`; skip those for
            // the plain form.
            if kind == "allow(" && start >= 5 && &search[start - 5..start] == "-file" {
                search = &search[start + kind.len()..];
                continue;
            }
            let after = &search[start + kind.len()..];
            if let Some(end) = after.find(')') {
                for rule in after[..end].split(',') {
                    let rule = rule.trim();
                    // Only kebab-case rule names count as directives;
                    // prose like `allow(...)` in a doc comment does not.
                    if rule.starts_with(|c: char| c.is_ascii_lowercase())
                        && rule
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                    {
                        sink.push(rule.to_string());
                    }
                }
                search = &after[end..];
            } else {
                break;
            }
        }
    }
    (line_rules, file_rules)
}

/// `#[cfg(test)]` or any cfg attribute containing the *word* `test`
/// (so `feature = "proptest"` does not count — though note literals are
/// already blanked by pass 1, making this mostly about `all(test, ...)`).
fn contains_test_cfg(code: &str) -> bool {
    if !code.contains("#[cfg(") && !code.contains("#[cfg_attr(") {
        return false;
    }
    contains_word(code, "test")
}

/// Word-boundary containment check.
pub fn contains_word(code: &str, word: &str) -> bool {
    find_word(code, word, 0).is_some()
}

/// Finds `word` at a word boundary in `code`, starting from `from`.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len().max(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts the name from a `fn name...` item on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    let at = find_word(code, "fn", 0)?;
    let rest = code[at + 2..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let x = \"HashMap\"; // HashMap in comment\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x ="));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let x = r#\"thread_rng()\"#; let y = 1;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn block_comments_nest() {
        let f = scan("/* outer /* inner */ still comment */ let z = 3;\n");
        assert!(!f.lines[0].code.contains("inner"));
        assert!(f.lines[0].code.contains("let z = 3;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(f.lines[0].code.contains("str"));
        assert!(!f.lines[1].code.contains('x'));
    }

    #[test]
    fn trailing_allow_applies_to_its_line() {
        let f = scan("foo(); // cqs-lint: allow(hash-default)\nbar();\n");
        assert!(f.lines[0].allowed("hash-default"));
        assert!(!f.lines[1].allowed("hash-default"));
    }

    #[test]
    fn standalone_allow_applies_to_next_line() {
        let f = scan("// cqs-lint: allow(wall-clock, ambient-rng)\nfoo();\n");
        assert!(f.lines[1].allowed("wall-clock"));
        assert!(f.lines[1].allowed("ambient-rng"));
        assert!(!f.lines[0].allowed("wall-clock") || f.lines[0].code.trim().is_empty());
    }

    #[test]
    fn allow_file_applies_everywhere() {
        let f = scan("fn a() {}\n// cqs-lint: allow-file(float-eq)\nfn b() {}\n");
        assert!(f.file_allows.contains("float-eq"));
        assert!(f.suppressed(&f.lines[0], "float-eq"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside test mod");
        assert!(!f.lines[5].in_test, "after test mod");
    }

    #[test]
    fn proptest_feature_is_not_a_test_cfg_but_all_test_is() {
        // Literals are blanked, so `feature = "proptest"` can't match;
        // the word `test` in all(test, ...) must.
        let src = "#[cfg(all(test, feature = \"proptest\"))]\nmod proptests {\n    fn t() {}\n}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        let src2 = "#[cfg(feature = \"proptest\")]\nmod proptests {\n    fn t() {}\n}\n";
        let f2 = scan(src2);
        assert!(!f2.lines[2].in_test);
    }

    #[test]
    fn fn_stack_is_tracked() {
        let src = "fn outer() {\n    let c = 1;\n    fn inner() {\n        let d = 2;\n    }\n}\n";
        let f = scan(src);
        assert_eq!(f.lines[1].fns, vec!["outer".to_string()]);
        assert_eq!(
            f.lines[3].fns,
            vec!["outer".to_string(), "inner".to_string()]
        );
        assert!(f.lines[5].fns.len() <= 1);
    }

    #[test]
    fn trait_method_decl_does_not_enter_fn_stack() {
        let src =
            "trait T {\n    fn decl(&self);\n    fn has_default(&self) {\n        ();\n    }\n}\n";
        let f = scan(src);
        assert_eq!(f.lines[3].fns, vec!["has_default".to_string()]);
    }

    #[test]
    fn raw_string_with_hashes_containing_quote_hash() {
        // `"#` inside an `r##"..."##` body must not close the literal.
        let f = scan("let x = r##\"has \"# inside unsafe \"##; let y = 2;\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].code.contains("let y = 2;"));
    }

    #[test]
    fn multiline_string_spanning_cfg_test_boundary() {
        // A string literal that *contains* `#[cfg(test)]` across lines
        // must not open a test region: the attribute text is data.
        let src = "let s = \"first line\n#[cfg(test)]\nmod tests {\";\nfn real() { let a = 1; }\n";
        let f = scan(src);
        assert!(!f.lines[1].code.contains("cfg"));
        assert!(!f.lines[3].in_test, "string contents opened a test region");
        assert!(f.lines[3].code.contains("let a = 1;"));
    }

    #[test]
    fn multiline_string_blanks_interior_code_words() {
        let src = "let s = \"\n    x.unwrap()\n\";\nlet t = 0;\n";
        let f = scan(src);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[3].code.contains("let t = 0;"));
    }

    #[test]
    fn file_allow_sites_record_directive_lines() {
        let f = scan("fn a() {}\n// cqs-lint: allow-file(float-eq)\nfn b() {}\n");
        assert_eq!(f.file_allow_sites, vec![(2, "float-eq".to_string())]);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("proptest", "test"));
        assert!(contains_word("all(test, x)", "test"));
    }
}
