//! Workspace layout: which crate plays which role in the model.
//!
//! The rules are role-sensitive: the adversary harness may read the
//! wall clock, the universe crate may construct labels, but a summary
//! crate may do neither. Unknown crates default to [`Role::Summary`],
//! the strictest role, so a newly added crate is guarded until someone
//! consciously classifies it here.

/// What part of the paper's cast a crate implements.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Role {
    /// `cqs-universe`: the only crate allowed to mint `Item`s / labels —
    /// including the `LabelArena` batch interner and the process-wide
    /// arena-id mint, which exist so minting stays O(1)-clone and
    /// cache-adjacent without widening the comparison API.
    Universe,
    /// `cqs-core` and the root package: traits, adversary, shared infra.
    /// Deterministic, but not itself a summary under test.
    Core,
    /// A quantile summary implementation — the algorithms the lower
    /// bound constrains. Full comparison-model + determinism rules, and
    /// a [`ModelCertificate`](super::analysis::ModelCertificate) from
    /// the purity analysis.
    Summary,
    /// A bounded-universe sketch (`cqs-qdigest`): consumes concrete
    /// `u64` keys, deliberately *outside* the comparison model — it is
    /// refused a purity certificate by construction (that contrast is
    /// the paper's separation story, cf. arXiv 2404.03847). Hot-path
    /// and determinism rules still apply; the item-opacity rules do not.
    BoundedUniverse,
    /// Supporting data structures (streams, order machinery). Must be
    /// deterministic but handles concrete key types by design.
    Substrate,
    /// Benchmarks and CLI drivers: exempt from determinism/wall-clock
    /// rules (they time things and print), still unsafe-free.
    Harness,
    /// `cqs-snapshot`: the wire format and restore path. Deterministic
    /// and covered by the driver no-panic analysis (a corrupt file must
    /// surface as a typed `RestoreError`, never a panic), but exempt
    /// from item opacity — serialization legitimately reads label bytes
    /// and reconstructs `Item`s via `from_label`.
    Snapshot,
    /// `cqs-service`: the concurrent registry/handle facade. Carries the
    /// Core-strength determinism rules (its merge worker must be woken
    /// by counters, never a clock) *and* a model-purity certificate —
    /// handles move items into summaries and must stay item-opaque —
    /// plus the driver no-panic analysis for its snapshot restore path.
    Service,
    /// This lint engine itself.
    Tooling,
}

impl Role {
    /// Whether the lexical comparison-model rules (item opacity) apply.
    pub fn comparison_rules(self) -> bool {
        matches!(self, Role::Summary)
    }

    /// Whether the hot-path reachability rules apply (`insert`/`query`
    /// paths must not panic): summaries, plus the bounded-universe
    /// sketch — its hot paths face the same adversarial streams.
    pub fn hot_path_rules(self) -> bool {
        matches!(self, Role::Summary | Role::BoundedUniverse)
    }

    /// Whether the determinism rules apply.
    pub fn determinism_rules(self) -> bool {
        !matches!(self, Role::Harness)
    }

    /// Whether the wall-clock rule applies (harnesses time things).
    pub fn wall_clock_rule(self) -> bool {
        !matches!(self, Role::Harness)
    }

    /// Whether `Item`/label construction is permitted.
    pub fn may_mint_items(self) -> bool {
        matches!(self, Role::Universe)
    }

    /// Whether the panic-free-driver rules apply: the guarded adversary
    /// driver (`try_run` and friends) lives in `cqs-core` and promises
    /// typed errors, never raw panics. The snapshot restore path makes
    /// the same promise — every corruption is a typed `RestoreError` —
    /// so its roots (`read_sections` and friends) are analysed too.
    pub fn driver_rules(self) -> bool {
        matches!(self, Role::Core | Role::Snapshot | Role::Service)
    }

    /// Whether the crate earns a model-purity certificate: summaries by
    /// definition, and the service facade — its registry and handles
    /// are generic over the summaries they move items into, and the
    /// certificate proves they never inspect those items on the way.
    pub fn purity_certified(self) -> bool {
        matches!(self, Role::Summary | Role::Service)
    }
}

/// Classifies a crate directory name (or the root package) into a role.
pub fn role_of(crate_name: &str) -> Role {
    match crate_name {
        "universe" => Role::Universe,
        "core" | "." => Role::Core,
        "gk" | "mrl" | "ckms" | "kll" | "sampling" | "ostree" | "window" => Role::Summary,
        "qdigest" => Role::BoundedUniverse,
        "streams" => Role::Substrate,
        "snapshot" => Role::Snapshot,
        "service" => Role::Service,
        "bench" | "cli" | "faults" => Role::Harness,
        "xtask" => Role::Tooling,
        // Strictest by default: new crates opt *out* of summary rules by
        // being added here, not by silence.
        _ => Role::Summary,
    }
}

/// Function names that form the query/update hot path of a summary —
/// the *roots* of the hot-path panic reachability analysis. Unlike the
/// old name-list rule, helpers these functions call are covered by the
/// call graph and do not need to be listed.
pub const HOT_PATH_FNS: &[&str] = &[
    "insert",
    "insert_sorted_run",
    "query_rank",
    "quantile",
    "estimate_rank",
    "merge",
    // Batched order-statistic walks (cqs-ostree): the adversary's gap
    // scans and equivalence checks funnel every per-leaf query through
    // these, so they face the same adversarial input as insert/query.
    "multi_count_le",
    "multi_count_less",
    "multi_rank",
    "multi_select",
    "multi_tag_of",
];

/// Entry points of the panic-free adversary driver — the *roots* of the
/// driver panic reachability analysis. Every abort must surface as a
/// typed `AdversaryError`; the helpers these reach (`try_adv`,
/// `try_leaf`, `audit_node`, `payload_string`, ...) are found by the
/// call graph — the old `DRIVER_PATH_FNS` list named eleven functions
/// and still missed `audit_node`, `size_divergence`, `payload_string`,
/// and `compute_gap_scratch`.
pub const DRIVER_ROOT_FNS: &[&str] = &[
    "try_run",
    "try_run_adversary",
    "try_refine_from",
    // Witness extraction runs on driver output (`cqs adversary` calls it
    // after try_run), so it shares the no-panic promise.
    "quantile_failure_witness",
    "rank_failure_witness",
    // The snapshot restore path: adversarial (corrupt) bytes in, typed
    // `RestoreError` out — a panic here would turn a detectable disk
    // fault into a crash loop on resume.
    "read_sections",
    "from_snapshot_bytes",
    "restore_from_file",
    "restore_with_fallback",
];

/// Method names that collide with the std containers and iterator
/// vocabulary. A call to one of these on an *unknown* receiver is
/// treated as external (unresolved) by the call graph rather than
/// fanned out to every same-named workspace function — `self.v.push(x)`
/// almost never means `GkSummary::push`. Calls with a known receiver
/// (`self.insert(...)`, `Type::insert(...)`) resolve precisely and are
/// unaffected.
pub const COMMON_METHOD_NAMES: &[&str] = &[
    "abs",
    "and_then",
    "as_mut",
    "as_ref",
    "binary_search",
    "binary_search_by",
    "clear",
    "clone",
    "cmp",
    "contains",
    "contains_key",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "extend",
    "filter",
    "first",
    "flush",
    "fmt",
    "for_each",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "partial_cmp",
    "pop",
    "push",
    "push_str",
    "remove",
    "resize",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "spawn",
    "split_off",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "truncate",
    "try_from",
    "try_into",
    "with_capacity",
    "write",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_roles() {
        assert_eq!(role_of("universe"), Role::Universe);
        assert_eq!(role_of("gk"), Role::Summary);
        assert_eq!(role_of("qdigest"), Role::BoundedUniverse);
        assert_eq!(role_of("bench"), Role::Harness);
        assert_eq!(role_of("faults"), Role::Harness);
        assert_eq!(role_of("snapshot"), Role::Snapshot);
        assert_eq!(role_of("."), Role::Core);
    }

    #[test]
    fn driver_rules_apply_to_core_and_snapshot() {
        assert!(role_of("core").driver_rules());
        assert!(role_of("snapshot").driver_rules());
        assert!(!role_of("gk").driver_rules());
        assert!(!role_of("faults").driver_rules());
        assert!(!role_of("xtask").driver_rules());
    }

    #[test]
    fn snapshot_is_exempt_from_item_opacity_but_not_determinism() {
        let s = role_of("snapshot");
        assert!(!s.comparison_rules());
        assert!(s.determinism_rules());
        assert!(!s.may_mint_items());
    }

    #[test]
    fn restore_entry_points_are_driver_roots() {
        for f in [
            "read_sections",
            "from_snapshot_bytes",
            "restore_from_file",
            "restore_with_fallback",
        ] {
            assert!(
                DRIVER_ROOT_FNS.contains(&f),
                "{f} missing from driver roots"
            );
        }
    }

    #[test]
    fn unknown_crates_default_to_summary() {
        assert_eq!(role_of("brand-new-sketch"), Role::Summary);
    }

    #[test]
    fn service_keeps_core_rules_and_earns_a_certificate() {
        let s = role_of("service");
        assert_eq!(s, Role::Service);
        // Core-strength profile: deterministic, clock-free, no lexical
        // item rules (the purity certificate covers opacity instead).
        assert!(s.determinism_rules());
        assert!(s.wall_clock_rule());
        assert!(!s.comparison_rules());
        assert!(!s.hot_path_rules());
        assert!(!s.may_mint_items());
        // Its snapshot restore path shares the no-panic promise.
        assert!(s.driver_rules());
        // And it is purity-certified alongside the summaries.
        assert!(s.purity_certified());
        assert!(role_of("gk").purity_certified());
        assert!(!role_of("core").purity_certified());
    }

    #[test]
    fn harness_is_exempt_from_determinism() {
        assert!(!role_of("bench").determinism_rules());
        assert!(role_of("gk").determinism_rules());
        assert!(role_of("streams").determinism_rules());
    }

    #[test]
    fn bounded_universe_keeps_hot_path_rules_but_not_comparison() {
        let q = role_of("qdigest");
        assert!(q.hot_path_rules());
        assert!(!q.comparison_rules());
        assert!(q.determinism_rules());
    }

    #[test]
    fn batched_walks_are_hot_path_roots() {
        for f in [
            "multi_count_le",
            "multi_count_less",
            "multi_rank",
            "multi_select",
            "multi_tag_of",
        ] {
            assert!(HOT_PATH_FNS.contains(&f), "{f} missing from hot-path roots");
        }
    }

    #[test]
    fn common_names_are_sorted_and_unique() {
        let mut sorted = COMMON_METHOD_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, COMMON_METHOD_NAMES);
    }
}
