//! Workspace layout: which crate plays which role in the model.
//!
//! The rules are role-sensitive: the adversary harness may read the
//! wall clock, the universe crate may construct labels, but a summary
//! crate may do neither. Unknown crates default to [`Role::Summary`],
//! the strictest role, so a newly added crate is guarded until someone
//! consciously classifies it here.

/// What part of the paper's cast a crate implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// `cqs-universe`: the only crate allowed to mint `Item`s / labels.
    Universe,
    /// `cqs-core` and the root package: traits, adversary, shared infra.
    /// Deterministic, but not itself a summary under test.
    Core,
    /// A quantile summary implementation — the algorithms the lower
    /// bound constrains. Full comparison-model + determinism rules.
    Summary,
    /// Supporting data structures (streams, order machinery). Must be
    /// deterministic but handles concrete key types by design.
    Substrate,
    /// Benchmarks and CLI drivers: exempt from determinism/wall-clock
    /// rules (they time things and print), still unsafe-free.
    Harness,
    /// This lint engine itself.
    Tooling,
}

impl Role {
    /// Whether the comparison-model rules (item opacity) apply.
    pub fn comparison_rules(self) -> bool {
        matches!(self, Role::Summary)
    }

    /// Whether the determinism rules apply.
    pub fn determinism_rules(self) -> bool {
        !matches!(self, Role::Harness)
    }

    /// Whether the wall-clock rule applies (harnesses time things).
    pub fn wall_clock_rule(self) -> bool {
        !matches!(self, Role::Harness)
    }

    /// Whether `Item`/label construction is permitted.
    pub fn may_mint_items(self) -> bool {
        matches!(self, Role::Universe)
    }

    /// Whether the panic-free-driver rules apply: the guarded adversary
    /// driver (`try_run` and friends) lives in `cqs-core` and promises
    /// typed errors, never raw panics.
    pub fn driver_rules(self) -> bool {
        matches!(self, Role::Core)
    }
}

/// Classifies a crate directory name (or the root package) into a role.
pub fn role_of(crate_name: &str) -> Role {
    match crate_name {
        "universe" => Role::Universe,
        "core" | "." => Role::Core,
        "gk" | "mrl" | "ckms" | "kll" | "sampling" | "qdigest" | "ostree" | "window" => {
            Role::Summary
        }
        "streams" => Role::Substrate,
        "bench" | "cli" | "faults" => Role::Harness,
        "xtask" => Role::Tooling,
        // Strictest by default: new crates opt *out* of summary rules by
        // being added here, not by silence.
        _ => Role::Summary,
    }
}

/// Function names that form the query/update hot path of a summary —
/// the paths where a panic would mean the data structure can fail on
/// adversarial input rather than degrade, and where a stray heap
/// allocation multiplies by the stream length.
pub const HOT_PATH_FNS: &[&str] = &[
    "insert",
    "insert_sorted_run",
    "query_rank",
    "quantile",
    "estimate_rank",
    "merge",
];

/// Function names that form the panic-free adversary driver: every
/// abort must surface as a typed `AdversaryError`, so these bodies may
/// not contain panicking constructs (the legacy `run`/`adv`/`leaf`
/// drivers keep their asserts for tests — only the `try_*` surface and
/// its helpers make the no-panic promise).
pub const DRIVER_PATH_FNS: &[&str] = &[
    "try_run",
    "try_adv",
    "try_leaf",
    "try_run_adversary",
    "try_refine_from",
    "final_rank_probe",
    "into_error",
    // Witness extraction runs on driver output (`cqs adversary` calls it
    // after try_run), so it shares the no-panic promise.
    "quantile_failure_witness",
    "rank_failure_witness",
    "fresh_above",
    "fresh_below",
];

/// Types the `cqs-bench` parallel sweep pool moves across scoped worker
/// threads, per crate. Each listed crate's `src/lib.rs` must keep a
/// compile-time `assert_send` audit line naming every marker (the
/// `sharding-send-sync` rule enforces this). Markers are substrings of
/// the audit lines; the trailing `<` keeps `Adversary<` from matching
/// its `AdversaryOutcome<` sibling line.
pub const SEND_AUDITED_TYPES: &[(&str, &[&str])] = &[
    (
        "core",
        &[
            "Adversary<",
            "AdversaryOutcome<",
            "AdversaryError",
            "AdversaryReport",
            "StreamState<",
        ],
    ),
    ("faults", &["FaultPlan", "FaultySummary<"]),
    ("universe", &["Item"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_roles() {
        assert_eq!(role_of("universe"), Role::Universe);
        assert_eq!(role_of("gk"), Role::Summary);
        assert_eq!(role_of("bench"), Role::Harness);
        assert_eq!(role_of("faults"), Role::Harness);
        assert_eq!(role_of("."), Role::Core);
    }

    #[test]
    fn driver_rules_apply_only_to_core() {
        assert!(role_of("core").driver_rules());
        assert!(!role_of("gk").driver_rules());
        assert!(!role_of("faults").driver_rules());
        assert!(!role_of("xtask").driver_rules());
    }

    #[test]
    fn unknown_crates_default_to_summary() {
        assert_eq!(role_of("brand-new-sketch"), Role::Summary);
    }

    #[test]
    fn harness_is_exempt_from_determinism() {
        assert!(!role_of("bench").determinism_rules());
        assert!(role_of("gk").determinism_rules());
        assert!(role_of("streams").determinism_rules());
    }
}
