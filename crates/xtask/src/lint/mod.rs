//! The lint engine: walk, scan, index, analyze, report.
//!
//! [`run_workspace`] walks every `.rs` file under the workspace root
//! (skipping `target/`, hidden directories, and test fixtures), scans
//! each with [`scanner`], classifies its crate with [`config`], runs the
//! per-file [`rules`] registry, then builds the whole-workspace
//! [`analysis::Workspace`] (token streams → item index → call graph) and
//! runs the graph analyses: purity certification, panic reachability,
//! and the shared-state audit. Suppression is centralized here: rules
//! and analyses emit unconditionally, the engine filters findings
//! against `cqs-lint: allow(...)` directives and reports directives that
//! match nothing as `unused-allow` warnings. [`lint_source`] is the
//! in-memory entry point the fixture tests use.

pub mod analysis;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod items;
pub mod json;
pub mod rules;
pub mod scanner;
pub mod tokens;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use analysis::{CertStatus, FileInput, ModelCertificate, Workspace};
use config::role_of;
use rules::{check_file, RuleCtx};

/// How bad a finding is. Errors fail the gate; warnings are printed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Reported, does not affect the exit code.
    Warning,
    /// Fails `cargo run -p cqs-xtask -- lint` and the tier-1 gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a specific source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Id of the rule that fired.
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// True when the finding matches an entry of the committed
    /// `lint-baseline.json`: still reported, but it neither fails the
    /// gate nor counts as new.
    pub baselined: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.baselined { " (baselined)" } else { "" };
        write!(
            f,
            "{}[{}]{tag}: {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// The outcome of a workspace (or single-source) lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many function items the index holds.
    pub fns_indexed: usize,
    /// Call sites the graph could not resolve to a workspace function
    /// (std and gated common names) — the analyses' assumption surface.
    pub unresolved_calls: usize,
    /// One purity certificate per summary / bounded-universe crate.
    pub certificates: Vec<ModelCertificate>,
}

impl LintReport {
    /// Error-severity findings (including baselined ones).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when no non-baselined error-severity finding is present.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && !d.baselined)
    }

    /// Renders the report the way the CLI prints it.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        for c in &self.certificates {
            match c.status {
                CertStatus::Certified => {
                    s.push_str(&format!(
                        "certificate[cqs-{}]: certified ({} fns analyzed, {} assumptions)\n",
                        c.crate_name, c.fns_analyzed, c.assumptions
                    ));
                }
                CertStatus::Refused => {
                    s.push_str(&format!(
                        "certificate[cqs-{}]: REFUSED ({} fns analyzed)\n",
                        c.crate_name, c.fns_analyzed
                    ));
                    for r in &c.reasons {
                        s.push_str(&format!("  - {r}\n"));
                    }
                }
            }
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let baselined = self.diagnostics.iter().filter(|d| d.baselined).count();
        s.push_str(&format!(
            "cqs-lint: {} files scanned, {} fns indexed, {errors} errors, \
             {warnings} warnings, {baselined} baselined\n",
            self.files_scanned, self.fns_indexed
        ));
        s
    }
}

/// Lints a single source string as if it were `<crate>/<path>`; the
/// fixture tests drive rules *and* the graph analyses through this
/// without touching the disk (the file forms a one-file workspace).
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let report = lint_inputs(vec![FileInput {
        rel: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        role: role_of(crate_name),
        test_file: is_test_path(rel_path),
        is_lib_root: rel_path.ends_with("src/lib.rs") || rel_path == "lib.rs",
        src: src.to_string(),
    }]);
    report.diagnostics
}

/// Lints a set of in-memory sources as one workspace. The fixture tests
/// use this to exercise cross-file resolution (a summary crate passing
/// an item to a helper in another file).
pub fn lint_inputs(inputs: Vec<FileInput>) -> LintReport {
    let ws = Workspace::build(inputs);
    let mut report = LintReport {
        files_scanned: ws.files.len(),
        fns_indexed: ws.index.fns.len(),
        unresolved_calls: ws.graph.unresolved_count(),
        ..Default::default()
    };

    let mut raw = Vec::new();
    for f in &ws.files {
        let ctx = RuleCtx {
            path: &f.rel,
            crate_name: &f.crate_name,
            role: f.role,
            file: &f.scanned,
            test_file: f.test_file,
            is_lib_root: f.is_lib_root,
        };
        check_file(&ctx, &mut raw);
    }
    let analyzed = analysis::run(&ws);
    raw.extend(analyzed.diagnostics);
    report.certificates = analyzed.certificates;

    suppress(&ws, raw, &mut report.diagnostics);
    sort(&mut report.diagnostics);
    report
}

/// Walks the workspace at `root` and lints every `.rs` file.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut inputs = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some((crate_name, in_crate)) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        inputs.push(FileInput {
            rel: rel.clone(),
            crate_name: crate_name.to_string(),
            role: role_of(crate_name),
            test_file: is_test_path(in_crate),
            is_lib_root: in_crate == "src/lib.rs",
            src,
        });
    }
    Ok(lint_inputs(inputs))
}

/// Central suppression: drops findings matched by a line- or file-level
/// `cqs-lint: allow(...)`, then reports every directive that matched
/// nothing as an `unused-allow` warning (library code only — directives
/// inside test code guard nothing, since the rules skip test lines, and
/// are reported too).
fn suppress(ws: &Workspace, raw: Vec<Diagnostic>, out: &mut Vec<Diagnostic>) {
    let mut used_line: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut used_file: BTreeSet<(String, String)> = BTreeSet::new();
    for d in raw {
        let Some(sf) = ws.file_at(&d.file) else {
            out.push(d);
            continue;
        };
        let line_allowed = d.line >= 1
            && sf
                .scanned
                .lines
                .get(d.line - 1)
                .map(|l| l.allowed(d.rule))
                .unwrap_or(false);
        if line_allowed {
            used_line.insert((d.file.clone(), d.line, d.rule.to_string()));
            continue;
        }
        if sf.scanned.file_allows.contains(d.rule) {
            used_file.insert((d.file.clone(), d.rule.to_string()));
            continue;
        }
        out.push(d);
    }

    for f in &ws.files {
        for line in &f.scanned.lines {
            for a in &line.allows {
                if !used_line.contains(&(f.rel.clone(), line.number, a.clone())) {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: line.number,
                        rule: "unused-allow",
                        severity: Severity::Warning,
                        message: format!(
                            "suppression `cqs-lint: allow({a})` matches no finding on this \
                             line; remove it"
                        ),
                        baselined: false,
                    });
                }
            }
        }
        for (line, rule) in &f.scanned.file_allow_sites {
            if !used_file.contains(&(f.rel.clone(), rule.clone())) {
                out.push(Diagnostic {
                    file: f.rel.clone(),
                    line: *line,
                    rule: "unused-allow",
                    severity: Severity::Warning,
                    message: format!(
                        "suppression `cqs-lint: allow-file({rule})` matches no finding in \
                         this file; remove it"
                    ),
                    baselined: false,
                });
            }
        }
    }
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Splits a workspace-relative path into (crate name, crate-relative
/// path). Root-package sources map to crate `"."`. Returns `None` for
/// files outside any package.
fn classify(rel: &str) -> Option<(&str, &str)> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, in_crate) = rest.split_once('/')?;
        return Some((name, in_crate));
    }
    if rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("benches/") {
        return Some((".", rel));
    }
    None
}

/// Files under tests/, benches/, or examples/ of their crate: test-only
/// code, exempt from the library rules (the engine still parses them so
/// `transmute` and friends are caught if they ever apply).
fn is_test_path(in_crate: &str) -> bool {
    in_crate.starts_with("tests/")
        || in_crate.starts_with("benches/")
        || in_crate.starts_with("examples/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberately violating sources for the
            // rule tests; they must not fail the workspace run.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/gk/src/lib.rs"), Some(("gk", "src/lib.rs")));
        assert_eq!(classify("src/lib.rs"), Some((".", "src/lib.rs")));
        assert_eq!(
            classify("tests/conformance.rs"),
            Some((".", "tests/conformance.rs"))
        );
        assert_eq!(classify("ci.rs"), None);
    }

    #[test]
    fn lint_source_flags_and_suppresses() {
        let bad =
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap;\n";
        let diags = lint_source("gk", "src/lib.rs", bad);
        assert!(diags.iter().any(|d| d.rule == "hash-default"), "{diags:?}");

        let ok = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap; // cqs-lint: allow(hash-default)\n";
        let diags = lint_source("gk", "src/lib.rs", ok);
        assert!(!diags.iter().any(|d| d.rule == "hash-default"), "{diags:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nlet x = 1; // cqs-lint: allow(hash-default)\n";
        let diags = lint_source("gk", "src/lib.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "unused-allow" && d.line == 3),
            "{diags:?}"
        );

        let src =
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n// cqs-lint: allow-file(float-eq)\n";
        let diags = lint_source("gk", "src/lib.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "unused-allow" && d.message.contains("allow-file(float-eq)")),
            "{diags:?}"
        );
    }

    #[test]
    fn used_allow_is_not_reported_unused() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap; // cqs-lint: allow(hash-default)\n";
        let diags = lint_source("gk", "src/lib.rs", src);
        assert!(!diags.iter().any(|d| d.rule == "unused-allow"), "{diags:?}");
    }

    #[test]
    fn harness_crates_may_time_and_hash() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::time::Instant;\nuse std::collections::HashMap;\n";
        let diags = lint_source("bench", "src/lib.rs", src);
        assert!(diags
            .iter()
            .all(|d| d.rule != "wall-clock" && d.rule != "hash-default"));
        let diags = lint_source("gk", "src/lib.rs", src);
        assert!(diags.iter().any(|d| d.rule == "wall-clock"));
    }

    #[test]
    fn report_counts_and_exit_semantics() {
        let mut report = LintReport::default();
        assert!(report.is_clean());
        report.diagnostics.push(Diagnostic {
            file: "x.rs".into(),
            line: 1,
            rule: "missing-docs-attr",
            severity: Severity::Warning,
            message: "m".into(),
            baselined: false,
        });
        assert!(report.is_clean(), "warnings do not fail the gate");
        report.diagnostics.push(Diagnostic {
            file: "x.rs".into(),
            line: 2,
            rule: "transmute",
            severity: Severity::Error,
            message: "m".into(),
            baselined: false,
        });
        assert!(!report.is_clean());
        assert!(report.render().contains("1 errors, 1 warnings"));
        report.diagnostics[1].baselined = true;
        assert!(report.is_clean(), "baselined errors do not fail the gate");
    }
}
