//! The lint engine: walk, scan, check, report.
//!
//! [`run_workspace`] walks every `.rs` file under the workspace root
//! (skipping `target/`, hidden directories, and test fixtures), scans
//! each with [`scanner`], classifies its crate with [`config`], and runs
//! the [`rules`] registry over it. [`lint_source`] is the in-memory
//! entry point the fixture tests use.

pub mod config;
pub mod rules;
pub mod scanner;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::role_of;
use rules::{check_file, RuleCtx};

/// How bad a finding is. Errors fail the gate; warnings are printed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Reported, does not affect the exit code.
    Warning,
    /// Fails `cargo run -p cqs-xtask -- lint` and the tier-1 gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a specific source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Id of the rule that fired.
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// The outcome of a workspace (or single-source) lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when no error-severity finding is present.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Renders the report the way the CLI prints it.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        s.push_str(&format!(
            "cqs-lint: {} files scanned, {errors} errors, {warnings} warnings\n",
            self.files_scanned
        ));
        s
    }
}

/// Lints a single source string as if it were `<crate>/<path>`; the
/// fixture tests drive rules through this without touching the disk.
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let role = role_of(crate_name);
    let scanned = scanner::scan(src);
    let ctx = RuleCtx {
        path: rel_path,
        crate_name,
        role,
        file: &scanned,
        test_file: is_test_path(rel_path),
        is_lib_root: rel_path.ends_with("src/lib.rs") || rel_path == "lib.rs",
    };
    let mut out = Vec::new();
    check_file(&ctx, &mut out);
    sort(&mut out);
    out
}

/// Walks the workspace at `root` and lints every `.rs` file.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some((crate_name, in_crate)) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let scanned = scanner::scan(&src);
        let ctx = RuleCtx {
            path: &rel,
            crate_name,
            role: role_of(crate_name),
            file: &scanned,
            test_file: is_test_path(in_crate),
            is_lib_root: in_crate == "src/lib.rs",
        };
        check_file(&ctx, &mut report.diagnostics);
    }
    sort(&mut report.diagnostics);
    Ok(report)
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Splits a workspace-relative path into (crate name, crate-relative
/// path). Root-package sources map to crate `"."`. Returns `None` for
/// files outside any package.
fn classify(rel: &str) -> Option<(&str, &str)> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, in_crate) = rest.split_once('/')?;
        return Some((name, in_crate));
    }
    if rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("benches/") {
        return Some((".", rel));
    }
    None
}

/// Files under tests/, benches/, or examples/ of their crate: test-only
/// code, exempt from the library rules (the engine still parses them so
/// `transmute` and friends are caught if they ever apply).
fn is_test_path(in_crate: &str) -> bool {
    in_crate.starts_with("tests/")
        || in_crate.starts_with("benches/")
        || in_crate.starts_with("examples/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberately violating sources for the
            // rule tests; they must not fail the workspace run.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/gk/src/lib.rs"), Some(("gk", "src/lib.rs")));
        assert_eq!(classify("src/lib.rs"), Some((".", "src/lib.rs")));
        assert_eq!(
            classify("tests/conformance.rs"),
            Some((".", "tests/conformance.rs"))
        );
        assert_eq!(classify("ci.rs"), None);
    }

    #[test]
    fn lint_source_flags_and_suppresses() {
        let bad =
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap;\n";
        let diags = lint_source("gk", "src/lib.rs", bad);
        assert!(diags.iter().any(|d| d.rule == "hash-default"), "{diags:?}");

        let ok = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::collections::HashMap; // cqs-lint: allow(hash-default)\n";
        let diags = lint_source("gk", "src/lib.rs", ok);
        assert!(!diags.iter().any(|d| d.rule == "hash-default"), "{diags:?}");
    }

    #[test]
    fn harness_crates_may_time_and_hash() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nuse std::time::Instant;\nuse std::collections::HashMap;\n";
        let diags = lint_source("bench", "src/lib.rs", src);
        assert!(diags
            .iter()
            .all(|d| d.rule != "wall-clock" && d.rule != "hash-default"));
        let diags = lint_source("gk", "src/lib.rs", src);
        assert!(diags.iter().any(|d| d.rule == "wall-clock"));
    }

    #[test]
    fn report_counts_and_exit_semantics() {
        let mut report = LintReport::default();
        assert!(report.is_clean());
        report.diagnostics.push(Diagnostic {
            file: "x.rs".into(),
            line: 1,
            rule: "missing-docs-attr",
            severity: Severity::Warning,
            message: "m".into(),
        });
        assert!(report.is_clean(), "warnings do not fail the gate");
        report.diagnostics.push(Diagnostic {
            file: "x.rs".into(),
            line: 2,
            rule: "transmute",
            severity: Severity::Error,
            message: "m".into(),
        });
        assert!(!report.is_clean());
        assert!(report.render().contains("1 errors, 1 warnings"));
    }
}
