#![forbid(unsafe_code)]

//! CLI for the model-conformance lint engine.
//!
//! ```text
//! cargo run -p cqs-xtask -- lint [--root PATH]   # exit 1 on any error
//! cargo run -p cqs-xtask -- rules                # list rules + rationale
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cqs_xtask::lint::rules::all_rules;
use cqs_xtask::run_workspace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            for r in all_rules() {
                println!("{:<18} {:<8} {}", r.id, severity_name(r), r.rationale);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo run -p cqs-xtask -- <lint [--root PATH] | rules>");
            ExitCode::from(2)
        }
    }
}

fn severity_name(r: &cqs_xtask::lint::rules::Rule) -> &'static str {
    match r.severity {
        cqs_xtask::Severity::Error => "error",
        cqs_xtask::Severity::Warning => "warning",
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    match run_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cqs-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, so two
/// levels up. Falls back to the current directory when run directly.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
