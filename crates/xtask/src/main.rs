#![forbid(unsafe_code)]

//! CLI for the model-conformance lint engine.
//!
//! ```text
//! cargo run -p cqs-xtask -- lint [--root PATH] [--json]   # exit 1 on any error
//! cargo run -p cqs-xtask -- lint --update-baseline        # accept current findings
//! cargo run -p cqs-xtask -- rules                         # list rules + rationale
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cqs_xtask::lint::rules::{all_rules, analysis_rules};
use cqs_xtask::lint::{baseline, json};
use cqs_xtask::run_workspace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            println!("# per-file lexical rules");
            for r in all_rules() {
                println!(
                    "{:<20} {:<8} {}",
                    r.id,
                    severity_name(r.severity),
                    r.rationale
                );
            }
            println!();
            println!("# whole-workspace analyses (call graph)");
            for m in analysis_rules() {
                println!(
                    "{:<20} {:<8} {}",
                    m.id,
                    severity_name(m.severity),
                    m.rationale
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: cargo run -p cqs-xtask -- \
                 <lint [--root PATH] [--json] [--no-baseline] [--update-baseline] | rules>"
            );
            ExitCode::from(2)
        }
    }
}

fn severity_name(s: cqs_xtask::Severity) -> &'static str {
    match s {
        cqs_xtask::Severity::Error => "error",
        cqs_xtask::Severity::Warning => "warning",
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut as_json = false;
    let mut use_baseline = true;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => as_json = true,
            "--no-baseline" => use_baseline = false,
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let mut report = match run_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cqs-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    if update_baseline {
        let path = root.join(baseline::BASELINE_FILE);
        let text = baseline::render(&report);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cqs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("cqs-lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    if use_baseline {
        match baseline::Baseline::load(&root) {
            Ok(Some(b)) => {
                b.apply(&mut report);
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("cqs-lint: bad baseline: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if as_json {
        print!("{}", json::render(&report));
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, so two
/// levels up. Falls back to the current directory when run directly.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
