#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-kll — the Karnin–Lang–Liberty quantile sketch
//!
//! The randomized comparison-based quantile sketch of Karnin, Lang &
//! Liberty (FOCS 2016), built from a stack of *compactors*: buffers that,
//! when full, sort themselves and promote a random half (odd or even
//! positions) to the level above with doubled weight. Compactor
//! capacities decay geometrically (ratio 2/3) from the top, giving space
//! O((1/ε)·√log(1/δ)) for the plain compactor stack implemented here
//! (the log log variant additionally replaces the lowest levels with a
//! sampler).
//!
//! Role in the reproduction: Section 6.3 of the lower-bound paper
//! derandomizes such sketches — with failure probability below 1/N!,
//! *some* fixed random string works for every input ordering, and
//! hard-coding it yields a deterministic comparison-based summary subject
//! to Theorem 2.2. A fixed-seed [`KllSketch`] is exactly such a
//! hard-coded-bits summary, and the bench harness drives the adversary
//! against it.
//!
//! # Example
//!
//! ```
//! use cqs_kll::KllSketch;
//! use cqs_core::ComparisonSummary;
//!
//! let mut kll = KllSketch::with_seed(200, 42);
//! for x in 0..100_000u64 {
//!     kll.insert(x);
//! }
//! let med = kll.quantile(0.5).unwrap();
//! assert!((45_000..=55_000).contains(&med));
//! assert!(kll.stored_count() < 1200);
//! ```

mod sampled;

pub use sampled::SampledKll;

use cqs_core::rng::SplitMix64;
use cqs_core::{ComparisonSummary, MergeError, MergeableSummary, RankEstimator};

/// Default geometric capacity decay ratio between compactor levels.
const DECAY: f64 = 2.0 / 3.0;
/// Minimum capacity of any compactor.
const MIN_CAP: usize = 2;

/// A KLL sketch over any ordered type.
#[derive(Clone, Debug)]
pub struct KllSketch<T> {
    /// compactors[h] holds items of weight 2^h.
    compactors: Vec<Vec<T>>,
    /// Base capacity parameter k (top compactor's capacity).
    k: usize,
    /// Capacity decay ratio between levels (paper: 2/3).
    decay: f64,
    n: u64,
    rng: SplitMix64,
    min: Option<T>,
    max: Option<T>,
}

impl<T: Ord + Clone> KllSketch<T> {
    /// Creates a sketch with capacity parameter `k` (≈ 1/ε up to
    /// constants; DataSketches' default is 200) and a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8`.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        Self::with_decay(k, DECAY, seed)
    }

    /// Creates a sketch with an explicit capacity decay ratio (the
    /// paper's analysis uses 2/3; decay 1.0 gives equal-capacity
    /// compactors, MRL-like; smaller decay shrinks low levels harder).
    /// Ablation knob for the space/accuracy trade-off.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8` or `decay` is outside (0.4, 1.0].
    pub fn with_decay(k: usize, decay: f64, seed: u64) -> Self {
        assert!(k >= 8, "k must be at least 8");
        assert!(decay > 0.4 && decay <= 1.0, "decay must be in (0.4, 1.0]");
        KllSketch {
            compactors: vec![Vec::new()],
            k,
            decay,
            n: 0,
            rng: SplitMix64::new(seed),
            min: None,
            max: None,
        }
    }

    /// Capacity of level `h` when the stack currently has `height`
    /// levels: k·(2/3)^(height−1−h), floored at 2.
    fn capacity_floor(&self, h: usize) -> usize {
        let height = self.compactors.len();
        let exp = (height - 1 - h) as i32;
        (((self.k as f64) * self.decay.powi(exp)).ceil() as usize).max(MIN_CAP)
    }

    /// Total items across all compactors.
    pub fn total_items(&self) -> usize {
        self.compactors.iter().map(|c| c.len()).sum()
    }

    fn compact_level(&mut self, h: usize) {
        if self.compactors.len() == h + 1 {
            self.compactors.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.compactors[h]);
        buf.sort_unstable();
        // An odd-length buffer leaves its unpaired maximum behind so the
        // represented weight stays exactly n.
        let leftover = if buf.len() % 2 == 1 { buf.pop() } else { None };
        let keep_odd = self.rng.gen_bool();
        let start = usize::from(keep_odd);
        let promoted: Vec<T> = buf.into_iter().skip(start).step_by(2).collect();
        self.compactors[h + 1].extend(promoted);
        if let Some(x) = leftover {
            self.compactors[h].push(x);
        }
    }

    fn maybe_compress(&mut self) {
        // Compact the lowest over-full level; repeat until everything
        // fits (a promotion can overfill the level above).
        loop {
            let mut acted = false;
            for h in 0..self.compactors.len() {
                if self.compactors[h].len() >= self.capacity_floor(h) {
                    self.compact_level(h);
                    acted = true;
                    break;
                }
            }
            if !acted {
                break;
            }
        }
    }

    /// All stored (item, weight) pairs sorted by item — the sketch's
    /// weighted view of the stream.
    pub fn weighted_items(&self) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = Vec::with_capacity(self.total_items());
        for (h, c) in self.compactors.iter().enumerate() {
            let w = 1u64 << h;
            out.extend(c.iter().map(|x| (x.clone(), w)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total weight currently represented. With the leftover-preserving
    /// compactor this equals the number of items processed.
    pub fn total_weight(&self) -> u64 {
        self.compactors
            .iter()
            .enumerate()
            .map(|(h, c)| (c.len() as u64) << h)
            .sum()
    }

    /// The capacity parameter k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Merges another sketch into this one (distributed aggregation).
    ///
    /// Level-h items of `other` join level h here (weights are powers of
    /// two on both sides), then over-full levels compact as usual. The
    /// merged sketch's error behaves like a sketch that saw both streams
    /// — the property the Mergeable Summaries line of work formalises.
    pub fn merge(&mut self, other: &KllSketch<T>) {
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (h, c) in other.compactors.iter().enumerate() {
            self.compactors[h].extend(c.iter().cloned());
        }
        self.n += other.n;
        if let Some(m) = &other.min {
            if self.min.as_ref().map(|x| m < x).unwrap_or(true) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().map(|x| m > x).unwrap_or(true) {
                self.max = Some(m.clone());
            }
        }
        self.maybe_compress();
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for KllSketch<T> {
    fn insert(&mut self, item: T) {
        if self.min.as_ref().map(|m| item < *m).unwrap_or(true) {
            self.min = Some(item.clone());
        }
        if self.max.as_ref().map(|m| item > *m).unwrap_or(true) {
            self.max = Some(item.clone());
        }
        self.compactors[0].push(item);
        self.n += 1;
        self.maybe_compress();
    }

    fn item_array(&self) -> Vec<T> {
        let mut out: Vec<T> = self.compactors.iter().flatten().cloned().collect();
        out.extend(self.min.clone());
        out.extend(self.max.clone());
        out.sort_unstable();
        out.dedup();
        out
    }

    fn stored_count(&self) -> usize {
        // O(1): compactor contents plus the separately-pinned extremes.
        // May overcount item_array().len() by up to 2 when an extreme
        // also sits in a compactor; it is a deterministic function of
        // the sketch state, which is what the indistinguishability
        // checks need, and the honest space figure (the extremes do
        // occupy cells).
        self.total_items() + usize::from(self.min.is_some()) + usize::from(self.max.is_some())
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        if r == 1 {
            return self.min.clone();
        }
        if r == self.n {
            return self.max.clone();
        }
        let weighted = self.weighted_items();
        let total: u64 = weighted.iter().map(|(_, w)| w).sum();
        // Scale the target into the sketch's weight domain.
        let target = (r as u128 * total as u128 / self.n as u128) as u64;
        let mut cum = 0u64;
        for (x, w) in &weighted {
            cum += w;
            if cum >= target {
                return Some(x.clone());
            }
        }
        weighted.last().map(|(x, _)| x.clone())
    }

    fn name(&self) -> &'static str {
        "kll"
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for KllSketch<T> {
    /// KLL is fully mergeable — any two sketches compose (levels align
    /// by weight regardless of k), so the only check is post-merge
    /// weight conservation.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.merge(other);
        if self.total_weight() != self.n {
            return Err(MergeError::InvariantViolated {
                detail: format!(
                    "KLL weight {} disagrees with stream length {}",
                    self.total_weight(),
                    self.n
                ),
            });
        }
        Ok(())
    }

    /// `None`: KLL's guarantee is probabilistic (with high probability
    /// over the compaction coin flips), not a deterministic worst-case ε
    /// — callers composing shards must budget for that themselves.
    fn eps_bound(&self) -> Option<f64> {
        None
    }
}

impl<T: Ord + Clone> RankEstimator<T> for KllSketch<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        let mut cum = 0u64;
        for (h, c) in self.compactors.iter().enumerate() {
            let w = 1u64 << h;
            cum += w * c.iter().filter(|x| *x <= q).count() as u64;
        }
        // Scale from weight domain to stream length.
        let total = self.total_weight().max(1);
        (cum as u128 * self.n as u128 / total as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn weight_is_conserved() {
        let mut kll = KllSketch::with_seed(64, 1);
        for x in shuffled(10_000, 2) {
            kll.insert(x);
        }
        assert_eq!(kll.total_weight(), 10_000);
    }

    #[test]
    fn space_is_bounded_by_constant_times_k() {
        let mut kll = KllSketch::with_seed(128, 3);
        let mut peak = 0;
        for x in shuffled(200_000, 4) {
            kll.insert(x);
            peak = peak.max(kll.total_items());
        }
        // Geometric capacities sum to ~3k; allow slack for in-flight
        // buffers.
        assert!(peak < 8 * 128, "peak {peak} not O(k)");
    }

    #[test]
    fn quantiles_are_accurate_on_shuffled_stream() {
        let n = 50_000u64;
        let mut kll = KllSketch::with_seed(256, 5);
        for x in shuffled(n, 6) {
            kll.insert(x);
        }
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let ans = kll.quantile(phi).unwrap();
            let target = ((phi * n as f64) as u64).max(1);
            let err = ans.abs_diff(target);
            assert!(
                err <= n / 50,
                "phi={phi}: answer {ans}, target {target}, err {err}"
            );
        }
    }

    #[test]
    fn min_max_exact() {
        let mut kll = KllSketch::with_seed(64, 7);
        for x in shuffled(5_000, 8) {
            kll.insert(x);
        }
        assert_eq!(kll.query_rank(1), Some(1));
        assert_eq!(kll.query_rank(5_000), Some(5_000));
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let run = || {
            let mut kll = KllSketch::with_seed(64, 99);
            for x in shuffled(20_000, 10) {
                kll.insert(x);
            }
            (kll.item_array(), kll.quantile(0.5))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_identical_copies_stay_indistinguishable() {
        // The derandomization argument needs fixed-seed KLL to behave as
        // a deterministic comparison-based summary: same seed + same
        // comparison outcomes => same stored positions.
        let mut a = KllSketch::with_seed(64, 123);
        let mut b = KllSketch::with_seed(64, 123);
        for x in shuffled(10_000, 11) {
            a.insert(x);
            b.insert(x * 2); // order-isomorphic stream
            assert_eq!(a.stored_count(), b.stored_count());
        }
        let ia = a.item_array();
        let ib = b.item_array();
        for (x, y) in ia.iter().zip(ib.iter()) {
            assert_eq!(*x * 2, *y, "stored positions diverged");
        }
    }

    #[test]
    fn rank_estimates_are_reasonable() {
        let n = 50_000u64;
        let mut kll = KllSketch::with_seed(256, 12);
        for x in shuffled(n, 13) {
            kll.insert(x);
        }
        for q in (0..=n).step_by(5000) {
            let est = kll.estimate_rank(&q);
            assert!(est.abs_diff(q) <= n / 50, "rank({q}) est {est}");
        }
    }

    #[test]
    fn empty_sketch() {
        let kll: KllSketch<u64> = KllSketch::with_seed(64, 0);
        assert_eq!(kll.quantile(0.5), None);
        assert_eq!(kll.stored_count(), 0);
        assert_eq!(kll.estimate_rank(&5), 0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 8")]
    fn tiny_k_rejected() {
        KllSketch::<u64>::with_seed(4, 0);
    }
}
