//! The sampler-fronted KLL variant.
//!
//! Plain compactor stacks keep a chain of capacity-2 levels at the
//! bottom (our geometric capacities floor at 2), costing O(log n) extra
//! cells. The full KLL design replaces that chain with a *sampler*: one
//! (candidate, weight 2^s) pair that forwards a uniform representative
//! of every 2^s-item block into the bottom real compactor. Whenever the
//! stack grows tall enough that its bottom level would have degenerated
//! to capacity 2, the bottom level is compacted away and the sampler
//! weight doubles — keeping the stack height, and hence total space,
//! **independent of n**. This is the configuration behind the
//! O((1/ε)·log log(1/δ)) bound of Karnin–Lang–Liberty that Theorems
//! 6.3/6.4 of the lower-bound paper engage with.

use cqs_core::rng::SplitMix64;
use cqs_core::{ComparisonSummary, RankEstimator};

/// Minimum capacity a stack level may have before it is sampled away.
const MIN_REAL_CAP: usize = 4;

/// Sampler-fronted KLL sketch: O(k) space independent of stream length.
#[derive(Clone, Debug)]
pub struct SampledKll<T> {
    /// Real compactors; level h holds items of weight 2^(s+h).
    stack: Vec<Vec<T>>,
    /// Base capacity parameter.
    k: usize,
    /// Capacity decay between levels.
    decay: f64,
    /// log₂ of the sampler block size / bottom-stack weight.
    s: u32,
    /// Items seen in the current sampler block.
    block_count: u64,
    /// Current uniform candidate of the block.
    candidate: Option<T>,
    n: u64,
    rng: SplitMix64,
    min: Option<T>,
    max: Option<T>,
}

impl<T: Ord + Clone> SampledKll<T> {
    /// Creates a sampler-fronted sketch with capacity parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8`.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k >= 8, "k must be at least 8");
        SampledKll {
            stack: vec![Vec::new()],
            k,
            decay: 2.0 / 3.0,
            s: 0,
            block_count: 0,
            candidate: None,
            n: 0,
            rng: SplitMix64::new(seed),
            min: None,
            max: None,
        }
    }

    /// The current sampler weight 2^s (1 until the stream outgrows the
    /// stack).
    pub fn sampler_weight(&self) -> u64 {
        1u64 << self.s
    }

    /// Total cells in the real compactor stack (excludes the O(1)
    /// sampler state).
    pub fn stack_items(&self) -> usize {
        self.stack.iter().map(|c| c.len()).sum()
    }

    fn capacity_floor(&self, h: usize) -> usize {
        let height = self.stack.len();
        let exp = (height - 1 - h) as i32;
        (((self.k as f64) * self.decay.powi(exp)).ceil() as usize).max(2)
    }

    fn compact_level(&mut self, h: usize) {
        if self.stack.len() == h + 1 {
            self.stack.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.stack[h]);
        buf.sort_unstable();
        let leftover = if buf.len() % 2 == 1 { buf.pop() } else { None };
        let start = usize::from(self.rng.gen_bool());
        let promoted: Vec<T> = buf.into_iter().skip(start).step_by(2).collect();
        self.stack[h + 1].extend(promoted);
        if let Some(x) = leftover {
            self.stack[h].push(x);
        }
    }

    fn maybe_compress(&mut self) {
        loop {
            let mut acted = false;
            for h in 0..self.stack.len() {
                if self.stack[h].len() >= self.capacity_floor(h) {
                    self.compact_level(h);
                    acted = true;
                    break;
                }
            }
            if !acted {
                break;
            }
        }
        // The sampler absorbs the bottom of a too-tall stack: compact
        // level 0 until (almost) empty, drop it, double the weight.
        while self.capacity_floor(0) <= MIN_REAL_CAP && self.stack.len() > 1 {
            while self.stack[0].len() >= 2 {
                self.compact_level(0);
            }
            // A lone leftover item re-enters as the candidate of a
            // half-full block at the doubled weight.
            let leftover = self.stack[0].pop();
            self.stack.remove(0);
            self.s += 1;
            if let Some(x) = leftover {
                // Unbiased: the leftover stands for half the new block.
                if self.candidate.is_none() || self.rng.gen_bool() {
                    self.candidate = Some(x);
                }
                self.block_count =
                    (self.block_count + self.sampler_weight() / 2).min(self.sampler_weight() - 1);
            }
        }
    }

    /// Sorted (item, weight) view; the partial sampler block contributes
    /// its candidate at the block's observed weight.
    pub fn weighted_items(&self) -> Vec<(T, u64)> {
        let mut out = Vec::with_capacity(self.stack_items() + 1);
        for (h, c) in self.stack.iter().enumerate() {
            let w = 1u64 << (self.s + h as u32);
            out.extend(c.iter().map(|x| (x.clone(), w)));
        }
        if let (Some(c), true) = (&self.candidate, self.block_count > 0) {
            out.push((c.clone(), self.block_count));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for SampledKll<T> {
    fn insert(&mut self, item: T) {
        if self.min.as_ref().map(|m| item < *m).unwrap_or(true) {
            self.min = Some(item.clone());
        }
        if self.max.as_ref().map(|m| item > *m).unwrap_or(true) {
            self.max = Some(item.clone());
        }
        self.n += 1;
        if self.s == 0 {
            self.stack[0].push(item);
        } else {
            // Reservoir-of-one within the current block.
            self.block_count += 1;
            if self.rng.below(self.block_count) == 0 {
                self.candidate = Some(item);
            }
            if self.block_count == self.sampler_weight() {
                // The first item of every block sets `candidate`
                // (below(1) == 0 always), so a full block implies Some.
                // cqs-lint: allow(hot-path-panic)
                let c = self.candidate.take().expect("non-empty block");
                self.stack[0].push(c);
                self.block_count = 0;
            }
        }
        self.maybe_compress();
    }

    fn item_array(&self) -> Vec<T> {
        let mut out: Vec<T> = self.stack.iter().flatten().cloned().collect();
        out.extend(self.candidate.clone());
        out.extend(self.min.clone());
        out.extend(self.max.clone());
        out.sort_unstable();
        out.dedup();
        out
    }

    fn stored_count(&self) -> usize {
        self.stack_items()
            + usize::from(self.candidate.is_some())
            + usize::from(self.min.is_some())
            + usize::from(self.max.is_some())
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        if r == 1 {
            return self.min.clone();
        }
        if r == self.n {
            return self.max.clone();
        }
        let weighted = self.weighted_items();
        let total: u64 = weighted.iter().map(|(_, w)| w).sum();
        let target = (r as u128 * total.max(1) as u128 / self.n as u128) as u64;
        let mut cum = 0u64;
        for (x, w) in &weighted {
            cum += w;
            if cum >= target {
                return Some(x.clone());
            }
        }
        weighted.last().map(|(x, _)| x.clone())
    }

    fn name(&self) -> &'static str {
        "kll-sampled"
    }
}

impl<T: Ord + Clone> RankEstimator<T> for SampledKll<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        let weighted = self.weighted_items();
        let total: u64 = weighted.iter().map(|(_, w)| w).sum();
        let cum: u64 = weighted
            .iter()
            .filter(|(x, _)| x <= q)
            .map(|(_, w)| w)
            .sum();
        (cum as u128 * self.n as u128 / total.max(1) as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    #[test]
    fn space_is_flat_in_stream_length() {
        // The whole point of the sampler: cells do NOT grow with n.
        let measure = |n: u64| {
            let mut s = SampledKll::with_seed(128, 1);
            let mut peak = 0usize;
            for x in shuffled(n, 2) {
                s.insert(x);
                peak = peak.max(s.stored_count());
            }
            peak
        };
        // Below ~40k the stack is still growing toward its capped
        // height; compare two points beyond the cap.
        let small = measure(80_000);
        let big = measure(1_280_000); // 16× the stream
        assert!(
            big <= small + 8,
            "sampler failed to flatten space: {small} -> {big}"
        );
    }

    #[test]
    fn sampler_engages_on_long_streams() {
        let mut s = SampledKll::with_seed(64, 3);
        for x in shuffled(200_000, 4) {
            s.insert(x);
        }
        assert!(s.sampler_weight() > 1, "sampler never engaged");
        assert!(s.stack.len() <= 12, "stack too tall: {}", s.stack.len());
    }

    #[test]
    fn quantiles_stay_accurate() {
        let n = 100_000u64;
        let mut s = SampledKll::with_seed(256, 5);
        for x in shuffled(n, 6) {
            s.insert(x);
        }
        for phi in [0.1, 0.5, 0.9] {
            let ans = s.quantile(phi).unwrap();
            let target = ((phi * n as f64) as u64).max(1);
            assert!(
                ans.abs_diff(target) <= n / 25,
                "phi={phi}: {ans} vs {target}"
            );
        }
        assert_eq!(s.query_rank(1), Some(1));
        assert_eq!(s.query_rank(n), Some(n));
    }

    #[test]
    fn short_streams_behave_like_plain_kll() {
        let mut s = SampledKll::with_seed(64, 7);
        for x in 1..=100u64 {
            s.insert(x);
        }
        assert_eq!(s.sampler_weight(), 1);
        let med = s.quantile(0.5).unwrap();
        assert!(med.abs_diff(50) <= 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut s = SampledKll::with_seed(64, 11);
            for x in shuffled(50_000, 12) {
                s.insert(x);
            }
            (s.item_array(), s.sampler_weight())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_sketch() {
        let s: SampledKll<u64> = SampledKll::with_seed(64, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.stored_count(), 0);
    }
}
