#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-faults — deterministic fault injection for quantile summaries
//!
//! Theorem 2.2 quantifies over *every* deterministic comparison-based
//! summary — including buggy, lying, or crashing ones. This crate
//! supplies the misbehaving instances: [`FaultySummary`] wraps any
//! [`ComparisonSummary`] and perturbs it according to a
//! [`FaultPlan`] — a deterministic, [`SplitMix64`]-seeded schedule of
//! faults keyed on the number of stream items fed so far.
//!
//! The point is to exercise the panic-free adversary driver
//! (`cqs_core::adversary::Adversary::try_run`): every fault kind below
//! must surface as its documented `RunVerdict` instead of killing the
//! process or silently corrupting the Lemma 5.2 audit trail. The
//! verdict taxonomy and the driver's probes are described in DESIGN.md
//! ("Failure taxonomy & fault injection").
//!
//! | Fault | Behaviour | Expected verdict |
//! |-------|-----------|------------------|
//! | [`FaultKind::PanicOnInsert`] | `insert` panics at the chosen step | `SummaryPanicked` |
//! | [`FaultKind::PanicOnQuery`] | `query_rank` panics once active | `SummaryPanicked` |
//! | [`FaultKind::RankSlack`] | query answers shifted by a rank slack | `SummaryIncorrect` (when the slack exceeds εN) |
//! | [`FaultKind::NonMonotoneRank`] | rank queries answered in reverse | `ModelViolation` |
//! | [`FaultKind::ValuePeek`] | items dropped based on their *value* | `ModelViolation` |
//! | [`FaultKind::UnderstateSpace`] | `stored_count` under-reports `\|I\|` | `ModelViolation` |
//!
//! ## Poisoning
//!
//! Once a panicking fault has fired, the wrapper is *poisoned*: any
//! further `insert`/`query_rank`/`item_array` call panics with a
//! distinct "poisoned" diagnostic. This models real data structures
//! whose invariants are unrecoverable after an internal panic and lets
//! the driver prove it never touches a summary again after catching its
//! first panic.
//!
//! ## Transparency
//!
//! With an empty plan ([`FaultPlan::none`]) the wrapper is a strict
//! pass-through: same stored state, same peaks, same reports — the
//! differential suite (`tests/faults_differential.rs`) holds it
//! bit-identical to the bare summary across GK, greedy-GK and MRL. To
//! keep reports comparable, [`ComparisonSummary::name`] is forwarded
//! unchanged.

use std::cell::Cell;
use std::hash::{Hash, Hasher};

use cqs_core::{ComparisonSummary, SplitMix64};

pub mod storage;
pub use storage::{apply_storage_fault, storage_fault_matrix, StorageFault};

/// One injected misbehaviour, armed at a step count (see [`Fault`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `insert` panics exactly when the `at`-th item arrives.
    PanicOnInsert,
    /// `query_rank` panics on any call made once `at` items were fed.
    PanicOnQuery,
    /// Query answers are taken `slack` ranks away from the requested
    /// target once active: the summary stays model-conforming but stops
    /// being ε-approximate when `slack > εN`.
    RankSlack(u64),
    /// Rank queries are answered as if `r` were `N + 1 − r` once
    /// active — a grossly non-monotone response pattern no
    /// ε-approximate summary can produce.
    NonMonotoneRank,
    /// Comparison-model violation (Definition 2.1(i)): once active,
    /// each arriving item is hashed — i.e. its *value* is inspected —
    /// and dropped on a pseudo-random bit. The two adversary streams
    /// contain different values at the same positions, so their item
    /// arrays desynchronise and Definition 3.2 verification fails.
    ValuePeek,
    /// `stored_count` under-reports the item array by the given amount
    /// once active — the "lying about space" failure the space-gap
    /// audit must not silently absorb.
    UnderstateSpace(usize),
}

/// A [`FaultKind`] armed at a 1-based stream step: the fault becomes
/// active when the wrapper has been fed `at` items (exactly at `at` for
/// the one-shot panic faults, from `at` onwards for the others).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// 1-based step count at which the fault arms.
    pub at: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults plus the seed that parameterises
/// value-dependent decisions ([`FaultKind::ValuePeek`] hashing).
///
/// Plans are plain data: clone one plan into both adversary copies so
/// the π and ϱ summaries misbehave identically (the driver's job is to
/// notice when "identically" stops holding observationally).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: the wrapper behaves exactly like the bare
    /// summary.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed for value-dependent faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault of the given kind arming at step `at` (1-based).
    pub fn inject(mut self, at: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault { at, kind });
        self
    }

    /// A plan with a single fault at a [`SplitMix64`]-chosen step in
    /// `[lo, hi)` (both at least 1), derived deterministically from
    /// `seed`.
    pub fn single_random(seed: u64, kind: FaultKind, lo: u64, hi: u64) -> Self {
        let lo = lo.max(1);
        let hi = hi.max(lo + 1);
        let mut rng = SplitMix64::new(seed);
        let at = lo + rng.below(hi - lo);
        FaultPlan::seeded(seed).inject(at, kind)
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The seed for value-dependent decisions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// FNV-1a, fixed offset/prime: a fully deterministic in-tree hasher so
/// [`FaultKind::ValuePeek`] decisions never depend on std's per-release
/// `DefaultHasher` internals.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The value-peeking decision: hash the item (inspecting its value —
/// the model violation) and flip a seed-mixed coin.
fn peeks_and_drops<T: Hash>(seed: u64, item: &T) -> bool {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325 ^ seed);
    item.hash(&mut h);
    SplitMix64::new(h.finish()).next_u64() & 1 == 1
}

/// A [`ComparisonSummary`] wrapper that injects the faults of a
/// [`FaultPlan`] at deterministic step counts. See the crate docs for
/// the fault taxonomy and the poisoning semantics.
pub struct FaultySummary<S> {
    inner: S,
    plan: FaultPlan,
    step: u64,
    dropped: u64,
    queries: Cell<u64>,
    poisoned: Cell<Option<&'static str>>,
}

impl<S> FaultySummary<S> {
    /// Wraps a summary with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySummary {
            inner,
            plan,
            step: 0,
            dropped: 0,
            queries: Cell::new(0),
            poisoned: Cell::new(None),
        }
    }

    /// Wraps a summary with the empty plan (pure pass-through).
    pub fn pristine(inner: S) -> Self {
        FaultySummary::new(inner, FaultPlan::none())
    }

    /// The wrapped summary.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Items fed so far (the fault clock; counts dropped items too).
    pub fn steps_fed(&self) -> u64 {
        self.step
    }

    /// Items silently dropped by [`FaultKind::ValuePeek`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `query_rank` calls observed so far.
    pub fn queries_seen(&self) -> u64 {
        self.queries.get()
    }

    /// Whether a panicking fault has fired, leaving the wrapper unusable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.get().is_some()
    }

    fn check_poison(&self, op: &str) {
        if let Some(origin) = self.poisoned.get() {
            panic!("FaultySummary poisoned by an earlier {origin} fault; {op} refused");
        }
    }
}

impl<T, S> ComparisonSummary<T> for FaultySummary<S>
where
    T: Ord + Clone + Hash,
    S: ComparisonSummary<T>,
{
    fn insert(&mut self, item: T) {
        self.check_poison("insert");
        self.step += 1;
        let step = self.step;
        let mut drop_item = false;
        for f in &self.plan.faults {
            match f.kind {
                FaultKind::PanicOnInsert if step == f.at => {
                    self.poisoned.set(Some("insert"));
                    panic!("injected fault: insert panics at step {step}");
                }
                FaultKind::ValuePeek if step >= f.at => {
                    drop_item = drop_item || peeks_and_drops(self.plan.seed, &item);
                }
                _ => {}
            }
        }
        if drop_item {
            self.dropped += 1;
            return;
        }
        self.inner.insert(item);
    }

    // `insert_sorted_run` deliberately keeps the trait's per-item
    // default so step-indexed faults fire mid-run exactly as they would
    // under per-item feeding, and the reported peak matches the
    // fallback that summaries' bulk paths are contractually identical
    // to.

    fn item_array(&self) -> Vec<T> {
        self.check_poison("item_array");
        self.inner.item_array()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        self.check_poison("for_each_item");
        self.inner.for_each_item(f)
    }

    fn stored_count(&self) -> usize {
        self.check_poison("stored_count");
        let mut count = self.inner.stored_count();
        for f in &self.plan.faults {
            if let FaultKind::UnderstateSpace(by) = f.kind {
                if self.step >= f.at {
                    count = count.saturating_sub(by);
                }
            }
        }
        count
    }

    fn items_processed(&self) -> u64 {
        self.inner.items_processed()
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        self.check_poison("query_rank");
        self.queries.set(self.queries.get() + 1);
        let n = self.inner.items_processed().max(1);
        let mut target = r;
        for f in &self.plan.faults {
            match f.kind {
                FaultKind::PanicOnQuery if self.step >= f.at => {
                    self.poisoned.set(Some("query_rank"));
                    panic!(
                        "injected fault: query_rank panics (armed at step {}, fed {})",
                        f.at, self.step
                    );
                }
                FaultKind::RankSlack(slack) if self.step >= f.at => {
                    target = target.saturating_add(slack).clamp(1, n);
                }
                FaultKind::NonMonotoneRank if self.step >= f.at => {
                    target = (n + 1).saturating_sub(target).clamp(1, n);
                }
                _ => {}
            }
        }
        self.inner.query_rank(target)
    }

    // Forwarded unchanged so a zero-fault wrapper produces reports
    // byte-identical to the bare summary's.
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Compile-time audit that fault plans and wrapped summaries can move
/// onto `cqs-bench` pool workers. Each matrix cell owns its own copies,
/// so `Send` suffices; `FaultySummary` uses [`Cell`] internally and is
/// deliberately *not* `Sync`. The `sharding-send-sync` lint rule keeps
/// these lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit<S: Send>() {
    fn assert_send<T: Send>() {}
    assert_send::<Fault>();
    assert_send::<FaultKind>();
    assert_send::<FaultPlan>();
    assert_send::<FaultySummary<S>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_core::reference::ExactSummary;

    fn fed(plan: FaultPlan, n: u64) -> FaultySummary<ExactSummary<u64>> {
        let mut s = FaultySummary::new(ExactSummary::new(), plan);
        for x in 1..=n {
            s.insert(x);
        }
        s
    }

    #[test]
    fn empty_plan_is_a_pass_through() {
        let s = fed(FaultPlan::none(), 100);
        assert_eq!(s.stored_count(), 100);
        assert_eq!(s.items_processed(), 100);
        assert_eq!(s.query_rank(40), Some(40));
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.name(), s.inner().name());
    }

    #[test]
    #[should_panic(expected = "insert panics at step 5")]
    fn panic_on_insert_fires_at_the_exact_step() {
        fed(FaultPlan::none().inject(5, FaultKind::PanicOnInsert), 5);
    }

    #[test]
    fn panic_on_insert_poisons_the_wrapper() {
        let plan = FaultPlan::none().inject(3, FaultKind::PanicOnInsert);
        let mut s = FaultySummary::new(ExactSummary::<u64>::new(), plan);
        s.insert(1);
        s.insert(2);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.insert(3)));
        assert!(boom.is_err());
        assert!(s.is_poisoned());
        let after = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.stored_count()));
        assert!(after.is_err(), "poisoned wrapper must refuse further use");
    }

    #[test]
    fn rank_slack_shifts_answers_once_active() {
        let s = fed(FaultPlan::none().inject(1, FaultKind::RankSlack(10)), 100);
        assert_eq!(s.query_rank(40), Some(50));
        // Clamped at the top of the stream.
        assert_eq!(s.query_rank(95), Some(100));
    }

    #[test]
    fn non_monotone_reverses_targets() {
        let s = fed(FaultPlan::none().inject(1, FaultKind::NonMonotoneRank), 100);
        assert_eq!(s.query_rank(1), Some(100));
        assert_eq!(s.query_rank(100), Some(1));
    }

    #[test]
    fn understate_space_subtracts_from_stored_count() {
        let s = fed(
            FaultPlan::none().inject(1, FaultKind::UnderstateSpace(7)),
            100,
        );
        assert_eq!(s.stored_count(), 93);
        assert_eq!(s.item_array().len(), 100);
    }

    #[test]
    fn value_peek_drops_deterministically() {
        let plan = FaultPlan::seeded(42).inject(1, FaultKind::ValuePeek);
        let a = fed(plan.clone(), 200);
        let b = fed(plan, 200);
        assert!(a.dropped() > 0, "a coin that never drops is no coin");
        assert!(a.dropped() < 200, "a coin that always drops is no coin");
        assert_eq!(a.dropped(), b.dropped(), "decisions must be reproducible");
        assert_eq!(a.item_array(), b.item_array());
        assert_eq!(a.stored_count() as u64 + a.dropped(), 200);
    }

    #[test]
    fn faults_before_their_step_stay_dormant() {
        let plan = FaultPlan::none()
            .inject(50, FaultKind::RankSlack(10))
            .inject(50, FaultKind::UnderstateSpace(5));
        let s = fed(plan, 40);
        assert_eq!(s.stored_count(), 40);
        assert_eq!(s.query_rank(10), Some(10));
    }

    #[test]
    fn single_random_lands_in_range() {
        for seed in 0..50u64 {
            let plan = FaultPlan::single_random(seed, FaultKind::PanicOnInsert, 10, 20);
            let at = plan.faults()[0].at;
            assert!((10..20).contains(&at), "seed {seed}: at = {at}");
        }
    }
}
