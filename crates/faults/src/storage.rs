//! Storage fault family: deterministic corruptions of snapshot bytes.
//!
//! Companion to the in-memory fault kinds: where [`crate::FaultKind`]
//! exercises the panic-free adversary driver, these exercise the
//! `cqs-snapshot` restore path. Each fault is a pure byte transform —
//! `apply` never touches the filesystem — so tests and the `cqs
//! recover` CLI can corrupt in memory and assert the typed
//! `RestoreError` the wire format must report. Zero silent restores:
//! every fault in [`storage_fault_matrix`] must surface as a
//! corruption-class error, never as a successfully restored value.
//!
//! | Fault | Models | Canonical detection |
//! |-------|--------|---------------------|
//! | [`StorageFault::Truncate`] | partial flush / disk-full | `Truncated` or `ChecksumMismatch` |
//! | [`StorageFault::TornWrite`] | non-atomic overwrite cut mid-file | `ChecksumMismatch` (or length framing errors) |
//! | [`StorageFault::BitFlip`] | media decay | `ChecksumMismatch` |
//! | [`StorageFault::StaleVersion`] | snapshot from an incompatible build | `UnsupportedVersion` |
//! | [`StorageFault::SwappedSections`] | reordering writer bug | `UnexpectedSection` |

/// One deterministic corruption of a snapshot byte string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// Keep only the first `keep` bytes (partial flush, disk full).
    Truncate {
        /// Prefix length preserved.
        keep: usize,
    },
    /// A torn (non-atomic) overwrite: the first `prefix` bytes of the
    /// new snapshot followed by the old file's tail from that offset —
    /// exactly what an in-place overwrite leaves when the process dies
    /// mid-`write`.
    TornWrite {
        /// How many bytes of the new snapshot made it to disk.
        prefix: usize,
    },
    /// Flip one bit (media decay, cosmic ray).
    BitFlip {
        /// Byte offset of the flip.
        offset: usize,
        /// Bit index 0..=7 within that byte.
        bit: u8,
    },
    /// Rewrite the header's format version field to 0 — a snapshot from
    /// an incompatible (pre-release) build.
    StaleVersion,
    /// Swap the first two sections wholesale (a reordering writer bug);
    /// each section's own CRC stays valid, so only tag sequencing can
    /// catch it.
    SwappedSections,
}

impl StorageFault {
    /// Short stable name for tables and CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            StorageFault::Truncate { .. } => "truncation",
            StorageFault::TornWrite { .. } => "torn-write",
            StorageFault::BitFlip { .. } => "bit-flip",
            StorageFault::StaleVersion => "stale-version",
            StorageFault::SwappedSections => "swapped-sections",
        }
    }
}

/// Byte offset of the version field inside the snapshot header
/// (magic `CQSS` occupies bytes 0..4; the `u32` version follows).
const VERSION_OFFSET: usize = 4;

/// Walks the section framing (`tag[4] | len u64 LE | payload | crc u32`)
/// starting after `header_len` bytes and returns each section's
/// `(start, end)` byte range. Stops at the first malformed frame —
/// faults must be applicable to any input without panicking.
fn section_ranges(bytes: &[u8], header_len: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut pos = header_len;
    while pos < bytes.len() {
        let Some(len_bytes) = bytes.get(pos + 4..pos + 12) else {
            break;
        };
        let Ok(len_arr) = <[u8; 8]>::try_from(len_bytes) else {
            break;
        };
        let Ok(len) = usize::try_from(u64::from_le_bytes(len_arr)) else {
            break;
        };
        let Some(end) = pos
            .checked_add(12)
            .and_then(|p| p.checked_add(len))
            .and_then(|p| p.checked_add(4))
        else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        ranges.push((pos, end));
        pos = end;
    }
    ranges
}

/// Applies `fault` to `bytes`, returning the corrupted file image.
///
/// `prev` is the previously published file (used by
/// [`StorageFault::TornWrite`], which models a non-atomic in-place
/// overwrite); pass `None` to tear against an empty file.
/// `header_len` is the wire format's header length
/// (`cqs_snapshot::HEADER_LEN`), taken as a parameter so this crate
/// stays a pure byte-transform library with no snapshot dependency.
pub fn apply_storage_fault(
    fault: &StorageFault,
    bytes: &[u8],
    prev: Option<&[u8]>,
    header_len: usize,
) -> Vec<u8> {
    match fault {
        StorageFault::Truncate { keep } => bytes
            .get(..*keep.min(&bytes.len()))
            .map_or_else(|| bytes.to_vec(), |prefix| prefix.to_vec()),
        StorageFault::TornWrite { prefix } => {
            let cut = (*prefix).min(bytes.len());
            let mut out = bytes.get(..cut).unwrap_or(bytes).to_vec();
            if let Some(tail) = prev.and_then(|p| p.get(cut..)) {
                out.extend_from_slice(tail);
            }
            out
        }
        StorageFault::BitFlip { offset, bit } => {
            let mut out = bytes.to_vec();
            if let Some(b) = out.get_mut(*offset) {
                *b ^= 1u8 << (bit % 8);
            }
            out
        }
        StorageFault::StaleVersion => {
            let mut out = bytes.to_vec();
            if let Some(field) = out.get_mut(VERSION_OFFSET..VERSION_OFFSET + 4) {
                field.copy_from_slice(&0u32.to_le_bytes());
            }
            out
        }
        StorageFault::SwappedSections => {
            let ranges = section_ranges(bytes, header_len);
            let (Some(&(a_start, a_end)), Some(&(b_start, b_end))) =
                (ranges.first(), ranges.get(1))
            else {
                return bytes.to_vec();
            };
            let mut out = bytes.get(..a_start).unwrap_or(&[]).to_vec();
            out.extend_from_slice(bytes.get(b_start..b_end).unwrap_or(&[]));
            out.extend_from_slice(bytes.get(a_start..a_end).unwrap_or(&[]));
            out.extend_from_slice(bytes.get(b_end..).unwrap_or(&[]));
            out
        }
    }
}

/// The canonical recovery fault matrix for a snapshot of `len` bytes:
/// one representative instance of every storage fault family, with
/// offsets placed deterministically inside the file body. Every entry
/// must yield a corruption-class `RestoreError` on restore.
pub fn storage_fault_matrix(len: usize) -> Vec<StorageFault> {
    vec![
        StorageFault::Truncate { keep: len / 2 },
        StorageFault::TornWrite {
            prefix: len * 3 / 4,
        },
        StorageFault::BitFlip {
            offset: (len * 2 / 3).max(1),
            bit: 3,
        },
        StorageFault::StaleVersion,
        StorageFault::SwappedSections,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake two-section file with the real framing shape (12-byte
    /// header) but dummy checksums — enough to test the byte
    /// transforms themselves.
    fn fake_file() -> Vec<u8> {
        let mut f = b"CQSS".to_vec();
        f.extend_from_slice(&1u32.to_le_bytes());
        f.extend_from_slice(b"TSTK");
        for (tag, payload) in [(*b"AAAA", vec![1u8; 5]), (*b"BBBB", vec![2u8; 9])] {
            f.extend_from_slice(&tag);
            f.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            f.extend_from_slice(&payload);
            f.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        }
        f
    }

    #[test]
    fn truncate_and_bitflip_shapes() {
        let f = fake_file();
        let t = apply_storage_fault(&StorageFault::Truncate { keep: 10 }, &f, None, 12);
        assert_eq!(t.len(), 10);
        let b = apply_storage_fault(&StorageFault::BitFlip { offset: 3, bit: 0 }, &f, None, 12);
        assert_eq!(b.len(), f.len());
        assert_eq!(b[3], f[3] ^ 1);
    }

    #[test]
    fn torn_write_mixes_generations() {
        let new = vec![1u8; 20];
        let old = vec![2u8; 30];
        let torn =
            apply_storage_fault(&StorageFault::TornWrite { prefix: 8 }, &new, Some(&old), 12);
        assert_eq!(&torn[..8], &new[..8]);
        assert_eq!(&torn[8..], &old[8..]);
    }

    #[test]
    fn stale_version_rewrites_only_the_version_field() {
        let f = fake_file();
        let s = apply_storage_fault(&StorageFault::StaleVersion, &f, None, 12);
        assert_eq!(&s[..4], b"CQSS");
        assert_eq!(&s[4..8], &0u32.to_le_bytes());
        assert_eq!(&s[8..], &f[8..]);
    }

    #[test]
    fn swapped_sections_exchanges_whole_frames() {
        let f = fake_file();
        let s = apply_storage_fault(&StorageFault::SwappedSections, &f, None, 12);
        assert_eq!(s.len(), f.len());
        assert_eq!(&s[12..16], b"BBBB");
        let second_start = 12 + 4 + 8 + 9 + 4;
        assert_eq!(&s[second_start..second_start + 4], b"AAAA");
    }

    #[test]
    fn matrix_covers_every_family_once() {
        let m = storage_fault_matrix(100);
        let names: Vec<&str> = m.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            [
                "truncation",
                "torn-write",
                "bit-flip",
                "stale-version",
                "swapped-sections"
            ]
        );
    }
}
