//! Command implementations (pure: reader in, string out) so everything
//! is unit-testable without spawning processes.

use std::fmt;
use std::fmt::Write as _;
use std::io::BufRead;

use cqs_bench::exec::{default_jobs, run_cells, CellOutcome};
use cqs_ckms::CkmsSummary;
use cqs_core::adversary::run_adversary;
use cqs_core::failure::quantile_failure_witness;
use cqs_core::{
    Adversary, AdversaryBudget, ComparisonSummary, Eps, Item, MergeableSummary, RunVerdict,
};
use cqs_faults::{
    apply_storage_fault, storage_fault_matrix, FaultKind, FaultPlan, FaultySummary, StorageFault,
};
use cqs_gk::{CappedGk, GkSummary, GreedyGk};
use cqs_kll::KllSketch;
use cqs_mrl::MrlSummary;
use cqs_sampling::ReservoirSummary;
use cqs_streams::{OrdF64, Table};

use cqs_service::{parallel_ingest, QuantileExport, QuantileRegistry, ServiceConfig};

use crate::args::{
    AdversaryArgs, CompareArgs, FaultsArgs, QuantilesArgs, RecoverArgs, ServiceArgs, SummaryKind,
};

/// A user-facing CLI error (bad flags, bad input data).
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn build_summary(
    kind: SummaryKind,
    eps: f64,
    expected_n: u64,
    seed: u64,
) -> Result<Box<dyn ComparisonSummary<OrdF64>>, CliError> {
    Ok(match kind {
        SummaryKind::Gk => Box::new(GkSummary::new(eps)),
        SummaryKind::GkGreedy => Box::new(GreedyGk::new(eps)),
        SummaryKind::GkCapped => {
            return Err(CliError::new(
                "gk-capped is only meaningful under `cqs adversary`",
            ))
        }
        SummaryKind::Mrl => Box::new(MrlSummary::new(eps, expected_n)),
        SummaryKind::Kll => Box::new(KllSketch::with_seed(((2.0 / eps) as usize).max(8), seed)),
        SummaryKind::Ckms => Box::new(CkmsSummary::new(eps)),
        SummaryKind::Reservoir => Box::new(ReservoirSummary::with_seed(eps, 0.01, seed)),
    })
}

fn read_numbers(input: impl BufRead) -> Result<Vec<f64>, CliError> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| CliError::new(format!("read error: {e}")))?;
        for tok in line.split_whitespace() {
            let x: f64 = tok
                .parse()
                .map_err(|_| CliError::new(format!("line {}: not a number: {tok}", lineno + 1)))?;
            if x.is_nan() {
                return Err(CliError::new(format!(
                    "line {}: NaN is not orderable",
                    lineno + 1
                )));
            }
            out.push(x);
        }
    }
    Ok(out)
}

/// `cqs quantiles`: summarise stdin and print the requested quantiles.
pub fn run_quantiles(args: &QuantilesArgs, input: impl BufRead) -> Result<String, CliError> {
    let numbers = read_numbers(input)?;
    if numbers.is_empty() {
        return Err(CliError::new("no input numbers"));
    }
    let mut s = build_summary(args.kind, args.eps, args.expected_n, args.seed)?;
    for &x in &numbers {
        s.insert(OrdF64::new(x));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "algo = {}, eps = {}, n = {}, stored = {} items",
        s.name(),
        args.eps,
        s.items_processed(),
        s.stored_count()
    );
    for &phi in &args.phis {
        let q = s
            .quantile(phi)
            .ok_or_else(|| CliError::new(format!("{}: no quantile for phi = {phi}", s.name())))?;
        let _ = writeln!(out, "  phi = {phi:<8} -> {}", f64::from(q));
    }
    Ok(out)
}

/// `cqs adversary`: run the lower-bound construction and report.
pub fn run_adversary_cmd(args: &AdversaryArgs) -> Result<String, CliError> {
    let eps = Eps::from_inverse(args.inv_eps);
    let n = eps.stream_len(args.k);
    if n > 4_000_000 {
        return Err(CliError::new(format!(
            "stream length {n} too large; lower --k or --inv-eps"
        )));
    }
    let budget = if args.budget == 0 {
        (args.inv_eps / 2).max(4) as usize
    } else {
        args.budget.max(4)
    };
    macro_rules! run {
        ($make:expr) => {
            run_adversary(eps, args.k, $make)
        };
    }
    let (report, witness) = match args.target {
        SummaryKind::Gk => {
            let out = run!(|| GkSummary::<Item>::new(eps.value()));
            (out.report(), quantile_failure_witness(&out))
        }
        SummaryKind::GkGreedy => {
            let out = run!(|| GreedyGk::<Item>::new(eps.value()));
            (out.report(), quantile_failure_witness(&out))
        }
        SummaryKind::GkCapped => {
            let out = run!(move || CappedGk::<Item>::new(eps.value(), budget));
            (out.report(), quantile_failure_witness(&out))
        }
        SummaryKind::Mrl => {
            let out = run!(move || MrlSummary::<Item>::new(eps.value(), n));
            (out.report(), quantile_failure_witness(&out))
        }
        SummaryKind::Kll => {
            let out = run!(move || KllSketch::<Item>::with_seed(
                (4 * args.inv_eps as usize).max(8),
                0xD1CE
            ));
            (out.report(), quantile_failure_witness(&out))
        }
        other => {
            return Err(CliError::new(format!(
                "{other:?} is not an adversary target (use gk, gk-greedy, gk-capped, mrl, kll)"
            )))
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "adversary vs {} (eps = {}, k = {}, N = {})",
        report.summary_name, eps, args.k, report.n
    );
    let _ = writeln!(
        out,
        "  indistinguishability held : {}",
        report.equivalence_ok
    );
    let _ = writeln!(
        out,
        "  final gap / 2*eps*N       : {} / {}",
        report.final_gap, report.gap_ceiling
    );
    let _ = writeln!(out, "  peak items stored         : {}", report.max_stored);
    let _ = writeln!(
        out,
        "  theorem 2.2 bound         : {:.1}",
        report.theorem22_bound
    );
    let _ = writeln!(
        out,
        "  claim-1 / lemma-5.2 viol. : {} / {}",
        report.claim1_violations, report.lemma52_violations
    );
    match witness {
        None => {
            let _ = writeln!(
                out,
                "  verdict: correct under attack; space >= bound: {}",
                report.max_stored as f64 >= report.theorem22_bound
            );
        }
        Some(w) => {
            let _ = writeln!(
                out,
                "  verdict: gap ceiling blown — FAILING QUERY extracted:"
            );
            let _ = writeln!(
                out,
                "    phi = {:.4} (rank {}), err_pi = {}, err_rho = {}, allowed = {}",
                w.phi, w.target_rank, w.err_pi, w.err_rho, w.budget
            );
        }
    }
    Ok(out)
}

/// Exit code for a fault-matrix mismatch: the observed verdict's code
/// (`Completed` on a faulted cell means the fault went undetected).
/// See the `cqs faults` section of [`crate::USAGE`].
fn verdict_code(v: RunVerdict) -> u8 {
    match v {
        RunVerdict::Completed => 7,
        RunVerdict::SummaryIncorrect => 3,
        RunVerdict::ModelViolation => 4,
        RunVerdict::SummaryPanicked => 5,
        RunVerdict::BudgetExhausted => 6,
    }
}

/// One row of the fault matrix.
struct FaultCell {
    name: &'static str,
    expected: RunVerdict,
    plan: FaultPlan,
    budget: AdversaryBudget,
}

/// Compile-time audit that fault-matrix cells can ride the sweep pool.
/// Never called — the `sharding-send-sync` lint rule derives this from
/// the spawn-site call graph and keeps the line from being deleted.
#[allow(dead_code)]
fn sharding_send_audit() {
    fn assert_send<T: Send>() {}
    assert_send::<FaultCell>();
    // `cqs service` arguments and errors cross the parallel-ingest
    // worker scope by reference from the driving thread.
    assert_send::<ServiceArgs>();
    assert_send::<CliError>();
}

/// The standard fault matrix: every [`FaultKind`] plus the zero-fault
/// control and a step-budget cell. Fault steps land deterministically in
/// the middle half of the stream so every fault arms after the first
/// leaf (where the two streams still share items) and before the run
/// ends.
fn fault_matrix(eps: Eps, k: u32, seed: u64) -> Vec<FaultCell> {
    let n = eps.stream_len(k);
    let rank_budget = eps.rank_budget(n);
    let mid = |salt: u64, kind| FaultPlan::single_random(seed ^ salt, kind, n / 4, 3 * n / 4);
    let unlimited = AdversaryBudget::default();
    vec![
        FaultCell {
            name: "none",
            expected: RunVerdict::Completed,
            plan: FaultPlan::none(),
            budget: unlimited,
        },
        FaultCell {
            name: "panic-insert",
            expected: RunVerdict::SummaryPanicked,
            plan: mid(0x01, FaultKind::PanicOnInsert),
            budget: unlimited,
        },
        FaultCell {
            name: "panic-query",
            expected: RunVerdict::SummaryPanicked,
            plan: mid(0x02, FaultKind::PanicOnQuery),
            budget: unlimited,
        },
        FaultCell {
            name: "rank-slack",
            expected: RunVerdict::SummaryIncorrect,
            plan: mid(0x03, FaultKind::RankSlack(3 * rank_budget + 1)),
            budget: unlimited,
        },
        FaultCell {
            name: "non-monotone-rank",
            expected: RunVerdict::ModelViolation,
            plan: mid(0x04, FaultKind::NonMonotoneRank),
            budget: unlimited,
        },
        FaultCell {
            name: "value-peek",
            expected: RunVerdict::ModelViolation,
            plan: mid(0x05, FaultKind::ValuePeek),
            budget: unlimited,
        },
        FaultCell {
            name: "understate-space",
            expected: RunVerdict::ModelViolation,
            plan: mid(0x06, FaultKind::UnderstateSpace(5)),
            budget: unlimited,
        },
        FaultCell {
            name: "step-budget",
            expected: RunVerdict::BudgetExhausted,
            plan: FaultPlan::none(),
            budget: AdversaryBudget {
                max_steps: Some(n / 2),
                ..AdversaryBudget::default()
            },
        },
    ]
}

/// Runs the matrix against one summary constructor, rendering the
/// per-cell verdict table and computing the exit code.
///
/// Cells are independent adversary runs, so they fan out over the
/// `cqs_bench::exec` pool; the table is assembled from the input-order
/// result vector, so it is identical for every `jobs` value.
fn faults_matrix_run<S, F>(eps: Eps, k: u32, seed: u64, jobs: usize, make: F) -> (String, u8)
where
    S: ComparisonSummary<Item>,
    F: Fn() -> S + Sync,
{
    let cells = fault_matrix(eps, k, seed);
    // The driver converts summary panics into verdicts; silence the
    // default hook so each caught panic doesn't splatter a backtrace
    // over the report. The hook is process-global, so the swap stays
    // hoisted around the whole pool run instead of per cell.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = run_cells(
        &cells,
        jobs,
        |_, cell| {
            let adv = Adversary::new(
                eps,
                FaultySummary::new(make(), cell.plan.clone()),
                FaultySummary::new(make(), cell.plan.clone()),
            )
            .with_budget(cell.budget);
            match adv.try_run(k) {
                Ok(out) => out.verdict(),
                Err(e) => e.verdict(),
            }
        },
        |c| {
            eprintln!(
                "[faults {}/{}] {} ({:.2}s)",
                c.finished,
                c.total,
                cells[c.index].name,
                c.elapsed.as_secs_f64()
            );
        },
    );
    std::panic::set_hook(hook);
    let mut t = Table::new(&["cell", "at-step", "expected", "observed", "ok"]);
    let mut code = 0u8;
    let mut mismatches = 0usize;
    for (cell, outcome) in cells.iter().zip(outcomes) {
        // A panic that escapes the driver (e.g. in the constructor) is
        // still a summary panic, not a pool failure.
        let observed = match outcome {
            CellOutcome::Done(v) => v,
            CellOutcome::Panicked(_) => RunVerdict::SummaryPanicked,
        };
        let ok = observed == cell.expected;
        if !ok {
            mismatches += 1;
            if code == 0 {
                code = verdict_code(observed);
            }
        }
        let at = cell
            .plan
            .faults()
            .first()
            .map(|f| f.at.to_string())
            .unwrap_or_else(|| "-".into());
        t.row(&[
            cell.name,
            &at,
            cell.expected.as_str(),
            observed.as_str(),
            if ok { "yes" } else { "NO" },
        ]);
    }
    let summary_name = make().name();
    let verdict_line = if mismatches == 0 {
        format!("all {} cells matched their expected verdict", cells.len())
    } else {
        format!("{mismatches} of {} cells MISMATCHED", cells.len())
    };
    (
        format!(
            "fault matrix vs {summary_name} (eps = {eps}, k = {k}, N = {}, seed = {seed:#x})\n\n{}\n{verdict_line}\n",
            eps.stream_len(k),
            t.render()
        ),
        code,
    )
}

/// `cqs faults`: sweep the fault matrix and report per-cell verdicts.
/// Returns the rendered table plus the process exit code.
pub fn run_faults_cmd(args: &FaultsArgs) -> Result<(String, u8), CliError> {
    let eps = Eps::from_inverse(args.inv_eps);
    let n = eps.stream_len(args.k);
    if n > 4_000_000 {
        return Err(CliError::new(format!(
            "stream length {n} too large; lower --k or --inv-eps"
        )));
    }
    let jobs = if args.jobs == 0 {
        default_jobs()
    } else {
        args.jobs
    };
    Ok(match args.target {
        SummaryKind::Gk => faults_matrix_run(eps, args.k, args.seed, jobs, || {
            GkSummary::<Item>::new(eps.value())
        }),
        SummaryKind::GkGreedy => faults_matrix_run(eps, args.k, args.seed, jobs, || {
            GreedyGk::<Item>::new(eps.value())
        }),
        SummaryKind::Mrl => faults_matrix_run(eps, args.k, args.seed, jobs, move || {
            MrlSummary::<Item>::new(eps.value(), n)
        }),
        other => {
            return Err(CliError::new(format!(
                "{other:?} is not a faults target (use gk, gk-greedy, mrl)"
            )))
        }
    })
}

/// Short, stable description of where a storage fault strikes.
fn storage_fault_detail(fault: &StorageFault) -> String {
    match fault {
        StorageFault::Truncate { keep } => format!("keep {keep}B"),
        StorageFault::TornWrite { prefix } => format!("cut at {prefix}B"),
        StorageFault::BitFlip { offset, bit } => format!("byte {offset} bit {bit}"),
        StorageFault::StaleVersion | StorageFault::SwappedSections => "-".into(),
    }
}

/// Expected [`cqs_snapshot::RestoreError::code`]s per storage fault
/// family. Faults whose damage lands at a data-dependent offset can
/// legitimately trip more than one detector (e.g. a bit flip in a
/// section tag is caught by tag sequencing before the checksum runs);
/// what is never acceptable is a silent restore or a non-corruption
/// verdict.
fn storage_fault_expected(fault: &StorageFault) -> &'static [&'static str] {
    match fault {
        StorageFault::Truncate { .. } => &["truncated", "checksum-mismatch"],
        StorageFault::TornWrite { .. } => &[
            "checksum-mismatch",
            "truncated",
            "malformed",
            "trailing-bytes",
        ],
        StorageFault::BitFlip { .. } => &["checksum-mismatch", "unexpected-section", "malformed"],
        StorageFault::StaleVersion => &["unsupported-version"],
        StorageFault::SwappedSections => &["unexpected-section"],
    }
}

/// `cqs recover`: the recovery fault matrix. Builds a deterministic GK
/// snapshot, applies every storage fault family to its bytes, and
/// checks each corruption is rejected with an expected typed
/// [`cqs_snapshot::RestoreError`] — zero silent restores. Returns the
/// rendered table plus the exit code (0 all matched, 7 on the first
/// mismatch or silent restore).
pub fn run_recover_cmd(args: &RecoverArgs) -> Result<(String, u8), CliError> {
    use cqs_snapshot::{SnapshotRead as _, SnapshotWrite as _};

    let fill = |n: u64| {
        let mut gk = GkSummary::<u64>::new(0.05);
        for x in 1..=n {
            gk.insert(x);
        }
        gk
    };
    let latest = fill(args.n);
    let bytes = latest.to_snapshot_bytes();
    // The "previous generation" a torn in-place overwrite mixes with:
    // make it longer than the new snapshot so the old tail survives the
    // cut and the mixed-generation case is actually exercised.
    let prev_bytes = fill(2 * args.n).to_snapshot_bytes();

    let mut t = Table::new(&["fault", "detail", "expected", "observed", "ok"]);
    let mut mismatches = 0usize;

    // Control row: the pristine snapshot must restore and answer as the
    // live summary does.
    let control_ok = match GkSummary::<u64>::from_snapshot_bytes(&bytes) {
        Ok(back) => back.item_array() == latest.item_array(),
        Err(_) => false,
    };
    if !control_ok {
        mismatches += 1;
    }
    t.row(&[
        "none",
        "-",
        "restored",
        if control_ok { "restored" } else { "REJECTED" },
        if control_ok { "yes" } else { "NO" },
    ]);

    for fault in storage_fault_matrix(bytes.len()) {
        let corrupted =
            apply_storage_fault(&fault, &bytes, Some(&prev_bytes), cqs_snapshot::HEADER_LEN);
        let expected = storage_fault_expected(&fault);
        let (observed, ok) = match GkSummary::<u64>::from_snapshot_bytes(&corrupted) {
            Ok(_) => ("silent-restore".to_string(), false),
            Err(e) => {
                let code = e.code();
                (
                    code.to_string(),
                    e.is_corruption() && expected.contains(&code),
                )
            }
        };
        if !ok {
            mismatches += 1;
        }
        t.row(&[
            fault.name(),
            &storage_fault_detail(&fault),
            &expected.join("|"),
            &observed,
            if ok { "yes" } else { "NO" },
        ]);
    }

    let verdict_line = if mismatches == 0 {
        "every storage fault was rejected with a typed verdict (zero silent restores)".to_string()
    } else {
        format!("{mismatches} cell(s) MISMATCHED — corruption detection is broken")
    };
    Ok((
        format!(
            "recovery fault matrix vs gk snapshot (n = {}, {} bytes)\n\n{}\n{verdict_line}\n",
            args.n,
            bytes.len(),
            t.render()
        ),
        if mismatches == 0 { 0 } else { 7 },
    ))
}

/// Deterministic shuffled batches for one service key: the values
/// `1..=n` permuted by an LCG seeded per key, cut into `batch`-sized
/// chunks. Every invocation with the same arguments produces the same
/// batches, which is what makes the exported snapshot diffable across
/// runs and thread counts.
fn service_batches(n: u64, batch: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut vals: Vec<u64> = (1..=n).collect();
    let mut state = seed | 1;
    for i in (1..vals.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) % (i as u64 + 1)) as usize;
        vals.swap(i, j);
    }
    vals.chunks(batch).map(|c| c.to_vec()).collect()
}

/// `cqs service`: smoke-drive the sharded concurrent quantile service
/// end to end — multi-key parallel ingest, background merge worker,
/// one-pass export — then replay the lower-bound adversary's stream π
/// through the sharded registry and check every rank answer of the
/// fold against the composed guarantee shards·ε·N (the
/// error-composition differential).
///
/// Returns the rendered report, the exit code (0 = export round-trips
/// and the differential holds, 7 otherwise), and the exported snapshot
/// bytes for `--export`. The bytes are a pure function of the
/// arguments — never of `--threads` — so CI diffs them across thread
/// counts.
pub fn run_service_cmd(args: &ServiceArgs) -> Result<(String, u8, Vec<u8>), CliError> {
    use cqs_snapshot::{SnapshotRead as _, SnapshotWrite as _};

    let eps0 = args.eps;
    let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
        ServiceConfig {
            shards: args.shards,
            stripes: 8,
            fold_cadence: 1024,
        },
        move || GkSummary::new(eps0),
    );
    let worker = reg.start_merge_worker();
    let keys = ["checkout", "ingest", "search"];
    for (i, key) in keys.iter().enumerate() {
        let handle = reg.handle(key);
        let batches = service_batches(args.n, args.batch, 0x5EED ^ ((i as u64) << 16));
        let ingested = parallel_ingest(&handle, &batches, args.threads);
        if ingested != args.n {
            return Err(CliError::new(format!(
                "key {key}: ingested {ingested} of {} items",
                args.n
            )));
        }
    }
    let phis = [0.5, 0.9, 0.99];
    let export = reg
        .export_quantiles(&phis)
        .map_err(|e| CliError::new(format!("export fold failed: {e}")))?;
    let bytes = export.to_snapshot_bytes();
    let roundtrip_ok = QuantileExport::<u64>::from_snapshot_bytes(&bytes)
        .map(|back| back == export)
        .unwrap_or(false);
    let fold_errors = worker.fold_errors();
    worker.shutdown();

    let mut t = Table::new(&["key", "n", "p50", "p90", "p99", "eps"]);
    for row in &export.keys {
        let v = |i: usize| {
            row.values[i]
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[
            &row.key,
            &row.n.to_string(),
            &v(0),
            &v(1),
            &v(2),
            &row.eps_bound
                .map(|e| format!("{e:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    // --- Error-composition differential. ------------------------------
    // The hardest comparison-based input we can construct (the Theorem
    // 2.2 adversary's π), sharded through the registry itself and
    // probed at *every* rank against the stream's ground truth.
    let aeps = Eps::from_inverse(args.inv_eps);
    let n = aeps.stream_len(args.k);
    if n > 4_000_000 {
        return Err(CliError::new(format!(
            "differential stream length {n} too large; lower --k or --inv-eps"
        )));
    }
    let out = run_adversary(aeps, args.k, move || GkSummary::<Item>::new(aeps.value()));
    let mut arrivals: Vec<(u64, Item)> = Vec::new();
    out.pi
        .for_each_arrival(&mut |item, tag| arrivals.push((tag, item.clone())));
    arrivals.sort_unstable_by_key(|&(tag, _)| tag);

    let diff_reg: QuantileRegistry<Item, GkSummary<Item>> = QuantileRegistry::new(
        ServiceConfig {
            shards: args.shards,
            stripes: 1,
            fold_cadence: u64::MAX,
        },
        move || GkSummary::new(eps0),
    );
    let dh = diff_reg.handle("pi");
    for (_, item) in &arrivals {
        dh.record(item.clone());
    }
    let merged = dh
        .folded()
        .map_err(|e| CliError::new(format!("differential fold failed: {e}")))?
        .ok_or_else(|| CliError::new("differential stream is empty"))?;
    let composed = merged
        .eps_bound()
        .ok_or_else(|| CliError::new("folded gk lost its eps bound"))?;
    let budget = (composed * n as f64).ceil() as u64 + 1;
    let mut worst = 0u64;
    let mut violations = 0u64;
    for r in 1..=n {
        let err = match merged.query_rank(r) {
            Some(answer) => out.pi.rank_error(&answer, r),
            None => n,
        };
        worst = worst.max(err);
        if err > budget {
            violations += 1;
        }
    }
    let composed_ok = composed <= eps0 * args.shards as f64 + 1e-12;

    let ok = roundtrip_ok && fold_errors == 0 && violations == 0 && composed_ok;
    let report = format!(
        "sharded quantile service (keys = {}, n = {} each, shards = {}, threads = {}, eps = {})\n\n\
         {}\n\
         merge worker fold errors   : {fold_errors}\n\
         export snapshot            : {} bytes, round-trip {}\n\n\
         error-composition differential (adversary eps = {aeps}, k = {}, N = {n}):\n\
         composed eps after fold    : {composed} (<= shards * eps: {composed_ok})\n\
         worst rank error / budget  : {worst} / {budget}\n\
         rank violations            : {violations} of {n}\n\
         verdict: {}\n",
        keys.len(),
        args.n,
        args.shards,
        args.threads,
        args.eps,
        t.render(),
        bytes.len(),
        if roundtrip_ok { "ok" } else { "FAILED" },
        args.k,
        if ok {
            "sharded fold stays within the composed guarantee"
        } else {
            "COMPOSITION VIOLATED"
        },
    );
    Ok((report, if ok { 0 } else { 7 }, bytes))
}

/// `cqs compare`: every algorithm over the same stdin numbers.
pub fn run_compare(args: &CompareArgs, input: impl BufRead) -> Result<String, CliError> {
    let numbers = read_numbers(input)?;
    if numbers.is_empty() {
        return Err(CliError::new("no input numbers"));
    }
    let mut t = Table::new(&["algo", "stored", "p50", "p99"]);
    for kind in [
        SummaryKind::Gk,
        SummaryKind::GkGreedy,
        SummaryKind::Mrl,
        SummaryKind::Kll,
        SummaryKind::Ckms,
        SummaryKind::Reservoir,
    ] {
        let mut s = build_summary(
            kind,
            args.eps,
            args.expected_n.max(numbers.len() as u64),
            args.seed,
        )?;
        for &x in &numbers {
            s.insert(OrdF64::new(x));
        }
        let q = |phi: f64| {
            s.quantile(phi)
                .map(|v| format!("{}", f64::from(v)))
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[s.name(), &s.stored_count().to_string(), &q(0.5), &q(0.99)]);
    }
    Ok(format!(
        "n = {}, eps = {}\n\n{}",
        numbers.len(),
        args.eps,
        t.render()
    ))
}
