//! Hand-rolled argument parsing for the `cqs` binary.

use crate::commands::CliError;

/// The parsed command line.
#[derive(Clone, Debug)]
pub enum Cli {
    /// `cqs quantiles [--eps E] [--algo A] [--phi P1,P2,…]`.
    Quantiles(QuantilesArgs),
    /// `cqs adversary [--inv-eps I] [--k K] [--target A] [--budget B]`.
    Adversary(AdversaryArgs),
    /// `cqs compare [--eps E]`.
    Compare(CompareArgs),
    /// `cqs faults [--inv-eps I] [--k K] [--target A] [--seed S] [--jobs N]`.
    Faults(FaultsArgs),
    /// `cqs recover [--n N]`.
    Recover(RecoverArgs),
    /// `cqs service [--n N] [--shards S] [--threads T] [--export PATH]`.
    Service(ServiceArgs),
    /// `cqs help` (or `--help`).
    Help,
}

/// Which summary algorithm a command uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummaryKind {
    /// Banded Greenwald–Khanna.
    Gk,
    /// Greedy Greenwald–Khanna.
    GkGreedy,
    /// Space-capped GK (adversary demos only).
    GkCapped,
    /// Manku–Rajagopalan–Lindsay.
    Mrl,
    /// Karnin–Lang–Liberty.
    Kll,
    /// CKMS biased quantiles.
    Ckms,
    /// Reservoir sampling.
    Reservoir,
}

impl SummaryKind {
    fn parse(s: &str) -> Result<Self, CliError> {
        Ok(match s {
            "gk" => SummaryKind::Gk,
            "gk-greedy" => SummaryKind::GkGreedy,
            "gk-capped" => SummaryKind::GkCapped,
            "mrl" => SummaryKind::Mrl,
            "kll" => SummaryKind::Kll,
            "ckms" => SummaryKind::Ckms,
            "reservoir" => SummaryKind::Reservoir,
            other => return Err(CliError::new(format!("unknown algorithm: {other}"))),
        })
    }
}

/// Arguments of `cqs quantiles`.
#[derive(Clone, Debug)]
pub struct QuantilesArgs {
    /// Approximation guarantee.
    pub eps: f64,
    /// Algorithm.
    pub kind: SummaryKind,
    /// Quantiles to print.
    pub phis: Vec<f64>,
    /// Expected stream length (MRL sizing only).
    pub expected_n: u64,
    /// RNG seed (randomized algorithms only).
    pub seed: u64,
}

/// Arguments of `cqs adversary`.
#[derive(Clone, Debug)]
pub struct AdversaryArgs {
    /// Integral 1/ε.
    pub inv_eps: u64,
    /// Recursion depth (stream length (1/ε)·2^k).
    pub k: u32,
    /// Summary under attack.
    pub target: SummaryKind,
    /// Item budget for `gk-capped` (0 = auto: 1/(2ε)).
    pub budget: usize,
}

/// Arguments of `cqs compare`.
#[derive(Clone, Debug)]
pub struct CompareArgs {
    /// Approximation guarantee.
    pub eps: f64,
    /// Expected stream length (MRL sizing only).
    pub expected_n: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Arguments of `cqs faults`.
#[derive(Clone, Debug)]
pub struct FaultsArgs {
    /// Integral 1/ε.
    pub inv_eps: u64,
    /// Recursion depth (stream length (1/ε)·2^k).
    pub k: u32,
    /// Summary wrapped in the fault injector.
    pub target: SummaryKind,
    /// Seed choosing the fault steps.
    pub seed: u64,
    /// Worker threads for the matrix cells (`0` = available
    /// parallelism; `1` reproduces the serial path byte-for-byte).
    pub jobs: usize,
}

/// Arguments of `cqs recover`.
#[derive(Clone, Debug)]
pub struct RecoverArgs {
    /// Items inserted into the GK summary whose snapshot the storage
    /// fault matrix corrupts.
    pub n: u64,
}

/// Arguments of `cqs service`.
#[derive(Clone, Debug)]
pub struct ServiceArgs {
    /// Items ingested per registry key.
    pub n: u64,
    /// Batch size handed to `parallel_ingest`.
    pub batch: usize,
    /// Summary shards per key.
    pub shards: usize,
    /// Ingest worker threads (capped at the shard count).
    pub threads: usize,
    /// Per-shard GK guarantee; the folded answer composes to at most
    /// `shards * eps`.
    pub eps: f64,
    /// Integral 1/ε of the error-composition differential's adversary.
    pub inv_eps: u64,
    /// Recursion depth of the differential's adversary stream.
    pub k: u32,
    /// Where to write the exported `QuantileExport` snapshot bytes
    /// (`None` = don't write).
    pub export: Option<String>,
}

/// Usage text printed by `cqs help`.
pub const USAGE: &str = "\
cqs — comparison-based quantile summaries (and the proof they can't be smaller)

USAGE:
  cqs quantiles [--eps E] [--algo gk|gk-greedy|mrl|kll|ckms|reservoir]
                [--phi P1,P2,...] [--expected-n N] [--seed S]   < numbers.txt
  cqs adversary [--inv-eps I] [--k K]
                [--target gk|gk-greedy|gk-capped|mrl|kll] [--budget B]
  cqs compare   [--eps E] [--expected-n N] [--seed S]           < numbers.txt
  cqs faults    [--inv-eps I] [--k K] [--target gk|gk-greedy|mrl] [--seed S]
                [--jobs N]
  cqs recover   [--n N]
  cqs service   [--n N] [--batch B] [--shards S] [--threads T] [--eps E]
                [--inv-eps I] [--k K] [--export PATH]
  cqs help

`cqs faults` sweeps the fault matrix (every FaultPlan kind plus a budget
cell) against the chosen summary and checks each run's verdict. Exit
codes: 0 = every cell matched its expected verdict; on the first
mismatch, the observed verdict's code: 3 summary-incorrect,
4 model-violation, 5 summary-panicked, 6 budget-exhausted,
7 undetected fault (run completed); 1 = usage error.

`--jobs N` runs the matrix cells on N worker threads (default: the
machine's available parallelism; `--jobs 1` is the serial path). The
rendered table and exit code are identical for every N — cells are
independent adversary runs and results are assembled in input order.

`cqs recover` runs the storage fault matrix (truncation, torn write,
bit flip, stale version, swapped sections) against a deterministic GK
snapshot and checks that every corruption is rejected with its expected
typed RestoreError — zero silent restores. Exit codes: 0 = every fault
detected as expected; 7 = a fault was silently restored or produced an
unexpected verdict; 1 = usage error.

`cqs service` smoke-drives the sharded concurrent quantile service: a
multi-key registry ingests deterministic workloads over `--threads`
workers and `--shards` summary shards per key, a background merge
worker folds on cadence, and one export pass snapshots every key's
percentile grid (`--export` writes the wire bytes — byte-identical for
every `--threads`). It then replays the lower-bound adversary's stream
through the sharded registry and checks every rank answer of the fold
against the composed guarantee shards·ε·N (the error-composition
differential). Exit codes: 0 = export round-trips and the differential
holds; 7 = a rank answer escaped the composed-eps budget or the export
failed to round-trip; 1 = usage error.
";

/// Parses an argument list (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut it = args.into_iter();
    let cmd = it
        .next()
        .ok_or_else(|| CliError::new("missing command; try `cqs help`"))?;
    let rest: Vec<String> = it.collect();
    match cmd.as_str() {
        "quantiles" => parse_quantiles(&rest).map(Cli::Quantiles),
        "adversary" => parse_adversary(&rest).map(Cli::Adversary),
        "compare" => parse_compare(&rest).map(Cli::Compare),
        "faults" => parse_faults(&rest).map(Cli::Faults),
        "recover" => parse_recover(&rest).map(Cli::Recover),
        "service" => parse_service(&rest).map(Cli::Service),
        "help" | "--help" | "-h" => Ok(Cli::Help),
        other => Err(CliError::new(format!(
            "unknown command: {other}; try `cqs help`"
        ))),
    }
}

struct Flags<'a> {
    words: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    fn new(words: &'a [String]) -> Self {
        Flags { words, i: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let w = self.words.get(self.i)?;
        self.i += 1;
        Some(w.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        let v = self
            .words
            .get(self.i)
            .ok_or_else(|| CliError::new(format!("{flag} needs a value")))?;
        self.i += 1;
        Ok(v.as_str())
    }
}

fn parse_f64(flag: &str, v: &str) -> Result<f64, CliError> {
    v.parse::<f64>()
        .map_err(|_| CliError::new(format!("{flag}: not a number: {v}")))
}

fn parse_u64(flag: &str, v: &str) -> Result<u64, CliError> {
    v.parse::<u64>()
        .map_err(|_| CliError::new(format!("{flag}: not an integer: {v}")))
}

fn check_eps(eps: f64) -> Result<f64, CliError> {
    if eps > 0.0 && eps < 0.5 {
        Ok(eps)
    } else {
        Err(CliError::new(format!("eps must be in (0, 0.5), got {eps}")))
    }
}

fn parse_quantiles(words: &[String]) -> Result<QuantilesArgs, CliError> {
    let mut out = QuantilesArgs {
        eps: 0.01,
        kind: SummaryKind::Gk,
        phis: vec![0.5, 0.9, 0.99],
        expected_n: 1_000_000,
        seed: 0,
    };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--eps" => out.eps = check_eps(parse_f64(flag, f.value(flag)?)?)?,
            "--algo" => out.kind = SummaryKind::parse(f.value(flag)?)?,
            "--expected-n" => out.expected_n = parse_u64(flag, f.value(flag)?)?.max(1),
            "--seed" => out.seed = parse_u64(flag, f.value(flag)?)?,
            "--phi" => {
                let v = f.value(flag)?;
                out.phis = v
                    .split(',')
                    .map(|p| {
                        let phi = parse_f64("--phi", p)?;
                        if (0.0..=1.0).contains(&phi) {
                            Ok(phi)
                        } else {
                            Err(CliError::new(format!("phi must be in [0, 1], got {phi}")))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}

fn parse_adversary(words: &[String]) -> Result<AdversaryArgs, CliError> {
    let mut out = AdversaryArgs {
        inv_eps: 32,
        k: 6,
        target: SummaryKind::Gk,
        budget: 0,
    };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--inv-eps" => {
                out.inv_eps = parse_u64(flag, f.value(flag)?)?;
                if out.inv_eps == 0 {
                    return Err(CliError::new("--inv-eps must be positive"));
                }
            }
            "--k" => out.k = parse_u64(flag, f.value(flag)?)?.clamp(1, 24) as u32,
            "--target" => out.target = SummaryKind::parse(f.value(flag)?)?,
            "--budget" => out.budget = parse_u64(flag, f.value(flag)?)? as usize,
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}

fn parse_faults(words: &[String]) -> Result<FaultsArgs, CliError> {
    let mut out = FaultsArgs {
        inv_eps: 16,
        k: 6,
        target: SummaryKind::Gk,
        seed: 0xFA17,
        jobs: 0,
    };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--inv-eps" => {
                out.inv_eps = parse_u64(flag, f.value(flag)?)?;
                if out.inv_eps == 0 {
                    return Err(CliError::new("--inv-eps must be positive"));
                }
            }
            "--k" => out.k = parse_u64(flag, f.value(flag)?)?.clamp(3, 24) as u32,
            "--target" => out.target = SummaryKind::parse(f.value(flag)?)?,
            "--seed" => out.seed = parse_u64(flag, f.value(flag)?)?,
            "--jobs" => out.jobs = parse_u64(flag, f.value(flag)?)? as usize,
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}

fn parse_recover(words: &[String]) -> Result<RecoverArgs, CliError> {
    let mut out = RecoverArgs { n: 2_000 };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--n" => out.n = parse_u64(flag, f.value(flag)?)?.clamp(16, 10_000_000),
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}

fn parse_service(words: &[String]) -> Result<ServiceArgs, CliError> {
    let mut out = ServiceArgs {
        n: 20_000,
        batch: 512,
        shards: 8,
        threads: 1,
        eps: 0.001,
        inv_eps: 32,
        k: 4,
        export: None,
    };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--n" => out.n = parse_u64(flag, f.value(flag)?)?.clamp(16, 10_000_000),
            "--batch" => out.batch = parse_u64(flag, f.value(flag)?)?.clamp(1, 1 << 20) as usize,
            "--shards" => out.shards = parse_u64(flag, f.value(flag)?)?.clamp(1, 64) as usize,
            "--threads" => out.threads = parse_u64(flag, f.value(flag)?)?.clamp(1, 64) as usize,
            "--eps" => out.eps = check_eps(parse_f64(flag, f.value(flag)?)?)?,
            "--inv-eps" => {
                out.inv_eps = parse_u64(flag, f.value(flag)?)?;
                if out.inv_eps == 0 {
                    return Err(CliError::new("--inv-eps must be positive"));
                }
            }
            "--k" => out.k = parse_u64(flag, f.value(flag)?)?.clamp(1, 12) as u32,
            "--export" => out.export = Some(f.value(flag)?.to_string()),
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}

fn parse_compare(words: &[String]) -> Result<CompareArgs, CliError> {
    let mut out = CompareArgs {
        eps: 0.01,
        expected_n: 1_000_000,
        seed: 0,
    };
    let mut f = Flags::new(words);
    while let Some(flag) = f.next_flag() {
        match flag {
            "--eps" => out.eps = check_eps(parse_f64(flag, f.value(flag)?)?)?,
            "--expected-n" => out.expected_n = parse_u64(flag, f.value(flag)?)?.max(1),
            "--seed" => out.seed = parse_u64(flag, f.value(flag)?)?,
            other => return Err(CliError::new(format!("unknown flag: {other}"))),
        }
    }
    Ok(out)
}
