#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-cli — command-line quantile summarisation
//!
//! The `cqs` binary wraps the workspace in four subcommands:
//!
//! * `cqs quantiles` — summarise numbers from stdin and print requested
//!   percentiles;
//! * `cqs adversary` — run the PODS'20 lower-bound construction against
//!   a chosen summary and print the report;
//! * `cqs compare` — run every algorithm over the same stdin data and
//!   print a space/answer table;
//! * `cqs faults` — sweep the `cqs-faults` fault matrix against a
//!   summary and check every injected fault maps to its documented
//!   `RunVerdict` (distinct exit codes per mismatch class);
//! * `cqs recover` — run the storage fault matrix against a GK
//!   snapshot and check every corruption draws a typed `RestoreError`;
//! * `cqs service` — smoke-drive the sharded concurrent quantile
//!   service (parallel ingest, background merge worker, one-pass
//!   export) and run the adversary-driven error-composition
//!   differential.
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! admits no CLI framework); this library half holds the parsing and
//! command logic so it is unit-testable, the `src/bin/cqs.rs` shim only
//! wires stdin/stdout.

mod args;
mod commands;

pub use args::{
    parse_args, AdversaryArgs, Cli, CompareArgs, FaultsArgs, QuantilesArgs, RecoverArgs,
    ServiceArgs, SummaryKind, USAGE,
};
pub use commands::{
    run_adversary_cmd, run_compare, run_faults_cmd, run_quantiles, run_recover_cmd,
    run_service_cmd, CliError,
};

#[cfg(test)]
mod tests {
    // Comparing a parsed flag against the exact literal it was parsed
    // from: no arithmetic is involved, so exact equality is the point.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn parse(words: &[&str]) -> Result<Cli, CliError> {
        parse_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_quantiles_defaults() {
        let cli = parse(&["quantiles"]).unwrap();
        match cli {
            Cli::Quantiles(q) => {
                assert_eq!(q.eps, 0.01);
                assert_eq!(q.kind, SummaryKind::Gk);
                assert_eq!(q.phis, vec![0.5, 0.9, 0.99]);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_quantiles_with_options() {
        let cli = parse(&[
            "quantiles",
            "--eps",
            "0.001",
            "--algo",
            "kll",
            "--phi",
            "0.25,0.75",
        ])
        .unwrap();
        match cli {
            Cli::Quantiles(q) => {
                assert_eq!(q.eps, 0.001);
                assert_eq!(q.kind, SummaryKind::Kll);
                assert_eq!(q.phis, vec![0.25, 0.75]);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_adversary() {
        let cli = parse(&[
            "adversary",
            "--inv-eps",
            "64",
            "--k",
            "7",
            "--target",
            "gk-greedy",
        ])
        .unwrap();
        match cli {
            Cli::Adversary(a) => {
                assert_eq!(a.inv_eps, 64);
                assert_eq!(a.k, 7);
                assert_eq!(a.target, SummaryKind::GkGreedy);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_compare() {
        let cli = parse(&["compare", "--eps", "0.02"]).unwrap();
        match cli {
            Cli::Compare(c) => assert_eq!(c.eps, 0.02),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_faults_with_defaults_and_options() {
        match parse(&["faults"]).unwrap() {
            Cli::Faults(fa) => {
                assert_eq!(fa.inv_eps, 16);
                assert_eq!(fa.k, 6);
                assert_eq!(fa.target, SummaryKind::Gk);
                assert_eq!(fa.seed, 0xFA17);
                assert_eq!(fa.jobs, 0, "default --jobs is auto");
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&[
            "faults",
            "--inv-eps",
            "32",
            "--k",
            "5",
            "--target",
            "mrl",
            "--seed",
            "7",
            "--jobs",
            "3",
        ])
        .unwrap()
        {
            Cli::Faults(fa) => {
                assert_eq!(fa.inv_eps, 32);
                assert_eq!(fa.k, 5);
                assert_eq!(fa.target, SummaryKind::Mrl);
                assert_eq!(fa.seed, 7);
                assert_eq!(fa.jobs, 3);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_recover_and_matrix_is_all_green() {
        match parse(&["recover"]).unwrap() {
            Cli::Recover(r) => assert_eq!(r.n, 2_000),
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&["recover", "--n", "500"]).unwrap() {
            Cli::Recover(r) => {
                assert_eq!(r.n, 500);
                let (out, code) = run_recover_cmd(&r).unwrap();
                assert_eq!(code, 0, "{out}");
                assert!(out.contains("zero silent restores"), "{out}");
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&["recover", "--bogus"]).is_err());
    }

    #[test]
    fn parses_service_defaults_and_options() {
        match parse(&["service"]).unwrap() {
            Cli::Service(s) => {
                assert_eq!(s.n, 20_000);
                assert_eq!(s.batch, 512);
                assert_eq!(s.shards, 8);
                assert_eq!(s.threads, 1);
                assert_eq!(s.eps, 0.001);
                assert_eq!(s.inv_eps, 32);
                assert_eq!(s.k, 4);
                assert!(s.export.is_none());
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&[
            "service",
            "--n",
            "4096",
            "--batch",
            "128",
            "--shards",
            "4",
            "--threads",
            "2",
            "--export",
            "/tmp/x.qsvc",
        ])
        .unwrap()
        {
            Cli::Service(s) => {
                assert_eq!(s.n, 4096);
                assert_eq!(s.batch, 128);
                assert_eq!(s.shards, 4);
                assert_eq!(s.threads, 2);
                assert_eq!(s.export.as_deref(), Some("/tmp/x.qsvc"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&["service", "--bogus"]).is_err());
        assert!(parse(&["service", "--inv-eps", "0"]).is_err());
    }

    #[test]
    fn service_command_end_to_end_and_thread_invariant() {
        let args = |threads| ServiceArgs {
            n: 1_000,
            batch: 64,
            shards: 4,
            threads,
            eps: 0.005,
            inv_eps: 32,
            k: 4,
            export: None,
        };
        let (out, code, bytes) = run_service_cmd(&args(1)).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("composed guarantee"), "{out}");
        assert!(out.contains("round-trip ok"), "{out}");
        // The exported snapshot is a function of the workload, never of
        // the thread count — the CI leg's byte-diff, in miniature.
        let (_, code4, bytes4) = run_service_cmd(&args(4)).unwrap();
        assert_eq!(code4, 0);
        assert_eq!(bytes, bytes4, "export bytes differ across thread counts");
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["quantiles", "--bogus"]).is_err());
        assert!(parse(&["quantiles", "--eps", "not-a-number"]).is_err());
        assert!(parse(&["adversary", "--k"]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        assert!(parse(&["quantiles", "--eps", "0.9"]).is_err());
        assert!(parse(&["adversary", "--inv-eps", "0"]).is_err());
        assert!(parse(&["quantiles", "--phi", "1.5"]).is_err());
    }

    #[test]
    fn quantiles_command_end_to_end() {
        let q = QuantilesArgs {
            eps: 0.05,
            kind: SummaryKind::Gk,
            phis: vec![0.5],
            expected_n: 10_000,
            seed: 0,
        };
        let data = "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n";
        let out = run_quantiles(&q, data.as_bytes()).unwrap();
        assert!(out.contains("0.5"), "output: {out}");
        assert!(out.contains("n = 10"), "output: {out}");
    }

    #[test]
    fn quantiles_rejects_garbage_input() {
        let q = QuantilesArgs {
            eps: 0.05,
            kind: SummaryKind::Gk,
            phis: vec![0.5],
            expected_n: 100,
            seed: 0,
        };
        assert!(run_quantiles(&q, "1\nbanana\n".as_bytes()).is_err());
    }

    #[test]
    fn adversary_command_end_to_end() {
        let a = AdversaryArgs {
            inv_eps: 16,
            k: 4,
            target: SummaryKind::Gk,
            budget: 0,
        };
        let out = run_adversary_cmd(&a).unwrap();
        assert!(out.contains("gap"), "output: {out}");
        assert!(out.contains("theorem"), "output: {out}");
    }

    #[test]
    fn adversary_capped_reports_failure() {
        let a = AdversaryArgs {
            inv_eps: 16,
            k: 6,
            target: SummaryKind::GkCapped,
            budget: 6,
        };
        let out = run_adversary_cmd(&a).unwrap();
        assert!(out.contains("FAILING QUERY"), "output: {out}");
    }

    #[test]
    fn compare_command_end_to_end() {
        let c = CompareArgs {
            eps: 0.05,
            expected_n: 1_000,
            seed: 1,
        };
        let data: String = (1..=1000).map(|i| format!("{i}\n")).collect();
        let out = run_compare(&c, data.as_bytes()).unwrap();
        for name in ["gk", "gk-greedy", "mrl", "kll", "ckms", "reservoir"] {
            assert!(out.contains(name), "missing {name} in: {out}");
        }
    }
}
