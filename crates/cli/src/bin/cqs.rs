//! The `cqs` binary: thin stdin/stdout shim over `cqs_cli`.

use std::io;
use std::process::ExitCode;

use cqs_cli::{
    parse_args, run_adversary_cmd, run_compare, run_faults_cmd, run_quantiles, run_recover_cmd,
    run_service_cmd, Cli,
};

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cqs_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match &cli {
        Cli::Help => {
            println!("{}", cqs_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Cli::Quantiles(q) => run_quantiles(q, io::stdin().lock()),
        Cli::Adversary(a) => run_adversary_cmd(a),
        Cli::Compare(c) => run_compare(c, io::stdin().lock()),
        Cli::Faults(fa) => {
            // Faults carries its own exit-code scheme (see USAGE): the
            // report always prints, the code reflects verdict matching.
            return match run_faults_cmd(fa) {
                Ok((out, code)) => {
                    print!("{out}");
                    ExitCode::from(code)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Cli::Service(s) => {
            // Same exit-code shape as faults/recover; additionally the
            // exported snapshot bytes land at --export (if given) so CI
            // can byte-diff them across --threads values.
            return match run_service_cmd(s) {
                Ok((out, code, bytes)) => {
                    print!("{out}");
                    if let Some(path) = &s.export {
                        if let Err(e) = std::fs::write(path, &bytes) {
                            eprintln!("error: {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    ExitCode::from(code)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Cli::Recover(r) => {
            // Same shape as faults: the matrix always prints, the code
            // says whether every corruption got its typed verdict.
            return match run_recover_cmd(r) {
                Ok((out, code)) => {
                    print!("{out}");
                    ExitCode::from(code)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
