//! End-to-end tests of the compiled `cqs-tool` binary: real process,
//! real stdin/stdout.

use std::io::Write;
use std::process::{Command, Stdio};

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cqs-tool"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cqs-tool");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn quantiles_from_stdin() {
    let data: String = (1..=5000).map(|i| format!("{i}\n")).collect();
    let (stdout, stderr, ok) = run(&["quantiles", "--eps", "0.01", "--phi", "0.5"], &data);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("n = 5000"), "{stdout}");
    // Median of 1..=5000 within ±50.
    let med: f64 = stdout
        .lines()
        .find(|l| l.contains("phi = 0.5"))
        .and_then(|l| l.split("->").nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("median line");
    assert!((2450.0..=2550.0).contains(&med), "median {med}");
}

#[test]
fn adversary_subcommand_prints_report() {
    let (stdout, stderr, ok) = run(&["adversary", "--inv-eps", "16", "--k", "5"], "");
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("final gap"), "{stdout}");
    assert!(stdout.contains("theorem 2.2 bound"), "{stdout}");
}

#[test]
fn compare_subcommand_lists_algorithms() {
    let data: String = (1..=2000).map(|i| format!("{i}\n")).collect();
    let (stdout, stderr, ok) = run(&["compare", "--eps", "0.02"], &data);
    assert!(ok, "stderr: {stderr}");
    for name in ["gk", "mrl", "kll", "ckms", "reservoir"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn help_prints_usage_and_bad_args_fail() {
    let (stdout, _, ok) = run(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));

    let (_, stderr, ok) = run(&["quantiles", "--eps", "banana"], "");
    assert!(!ok);
    assert!(stderr.contains("not a number"), "{stderr}");

    let (_, stderr, ok) = run(&["nonsense"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn bad_input_data_fails_cleanly() {
    let (_, stderr, ok) = run(&["quantiles"], "1\n2\nthree\n");
    assert!(!ok);
    assert!(stderr.contains("not a number"), "{stderr}");
}
