//! `AdvStrategy` — Pseudocode 2: the recursive adversarial construction.
//!
//! `AdvStrategy(k, π, ϱ, (ℓ_π, r_π), (ℓ_ϱ, r_ϱ))` walks a full binary
//! recursion tree with 2^{k−1} leaves in-order. Each leaf appends 2/ε
//! fresh items inside the current intervals (the same arrival order on
//! both streams); each internal node refines the intervals into the
//! extreme regions of the largest gap between the two recursive calls.
//! The result is a pair of indistinguishable streams of length
//! N_k = (1/ε)·2^k on which the summary's stored-item count must obey the
//! space-gap inequality at *every* node of the tree.
//!
//! This module executes the construction against two live copies of any
//! [`ComparisonSummary`] and records a [`NodeAudit`] per node, checking
//! Claim 1 and Lemma 5.2 as it goes.

use cqs_universe::{generate_increasing, Interval, Item};

use crate::eps::Eps;
use crate::gap::{compute_gap_scratch, GapInfo, GapScratch, TieBreak};
use crate::model::{ComparisonSummary, MaxSpaceTracker};
use crate::refine::refine_from;
use crate::spacegap::{claim1_holds, space_gap_holds, space_gap_rhs, theorem22_bound};
use crate::state::{EquivalenceChecker, StreamState};

/// Audit record for one node of the recursion tree (post-order).
#[derive(Clone, Debug)]
pub struct NodeAudit {
    /// Recursion level `k` of this node (leaves are level 1).
    pub level: u32,
    /// Items appended during this node's execution, N_k = (1/ε)·2^k.
    pub n_k: u64,
    /// Final gap `g` in this node's input intervals.
    pub g: u64,
    /// Gap `g′` after the left child (internal nodes only).
    pub g_prime: Option<u64>,
    /// Gap `g″` in the refined intervals after the right child
    /// (internal nodes only).
    pub g_dprime: Option<u64>,
    /// `S_k`: size of the restricted item array `I^(ℓ_π, r_π)` at node
    /// completion (boundary entries included, per the paper).
    pub s_k: usize,
    /// Stored items strictly inside the input interval (S_k minus the
    /// two boundary entries).
    pub stored_inside: usize,
    /// Whether Claim 1 (`g ≥ g′ + g″ − 1`) held (vacuously true at
    /// leaves).
    pub claim1_ok: bool,
    /// Whether the space-gap inequality (Lemma 5.2) held at this node.
    pub lemma52_ok: bool,
    /// The inequality's right-hand side, for reporting.
    pub space_gap_rhs: f64,
}

/// How a leaf feeds its 2/ε-item run to the summaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InsertMode {
    /// One [`ComparisonSummary::insert_sorted_run`] call per leaf (the
    /// runs are generated in increasing order), with the treap side
    /// joined in bulk. The default; for a conforming summary the audits
    /// are byte-identical to [`PerItem`](Self::PerItem).
    #[default]
    Batched,
    /// One `insert` per item with a stored-size divergence probe after
    /// each — the legacy path, kept for equivalence testing and for
    /// pinpointing the exact stream position where a non-conforming
    /// summary diverges.
    PerItem,
}

/// The adversary: two live streams, two live summary copies, an audit
/// trail.
pub struct Adversary<S> {
    pi: StreamState<MaxSpaceTracker<S>>,
    rho: StreamState<MaxSpaceTracker<S>>,
    eps: Eps,
    audits: Vec<NodeAudit>,
    equivalence_error: Option<String>,
    tie_break: TieBreak,
    insert_mode: InsertMode,
    gap_scratch: GapScratch,
    equiv: EquivalenceChecker,
}

/// Everything the adversary produced: the final stream states (reusable
/// by the corollary reductions) and the audit trail.
pub struct AdversaryOutcome<S> {
    /// Stream π with its summary copy.
    pub pi: StreamState<MaxSpaceTracker<S>>,
    /// Stream ϱ with its summary copy.
    pub rho: StreamState<MaxSpaceTracker<S>>,
    /// The ε used.
    pub eps: Eps,
    /// The recursion depth k (N = (1/ε)·2^k).
    pub k: u32,
    /// Post-order audit of every recursion-tree node; the root is last.
    pub audits: Vec<NodeAudit>,
    /// First indistinguishability violation observed, if any.
    pub equivalence_error: Option<String>,
}

/// Flat, display-friendly summary of an adversary run.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// ε of the run.
    pub eps: Eps,
    /// Recursion depth.
    pub k: u32,
    /// Stream length N_k.
    pub n: u64,
    /// Final top-level gap gap(π, ϱ).
    pub final_gap: u64,
    /// Lemma 3.4 ceiling 2εN: correct summaries must have
    /// `final_gap ≤ gap_ceiling`.
    pub gap_ceiling: u64,
    /// |I| at the end of the stream (π copy).
    pub stored_final: usize,
    /// Running-max |I| over the whole stream (π copy) — the honest
    /// space figure for summaries that shrink after compaction.
    pub max_stored: usize,
    /// The space-gap RHS evaluated at the measured final gap.
    pub space_gap_rhs_at_gap: f64,
    /// Theorem 2.2's bound c·(k+1)/(4ε) (applies when the summary is
    /// correct, i.e. when `final_gap ≤ gap_ceiling`).
    pub theorem22_bound: f64,
    /// Number of nodes where Claim 1 failed (expected 0).
    pub claim1_violations: usize,
    /// Number of nodes where the instantaneous space-gap inequality
    /// failed. For summaries whose |I| shrinks over time this can be
    /// nonzero at interior nodes without contradicting the paper (its
    /// model assumes |I| never decreases); the top-level running-max
    /// bound is the meaningful figure.
    pub lemma52_violations: usize,
    /// Whether indistinguishability held throughout.
    pub equivalence_ok: bool,
    /// Longest universe label minted (bytes) — adversary-side cost of
    /// the continuity assumption; grows O(k), not O(N).
    pub max_label_depth: usize,
    /// Algorithm name of the summary under attack.
    pub summary_name: &'static str,
}

impl<S: ComparisonSummary<Item>> Adversary<S> {
    /// Creates an adversary attacking two *identical* fresh copies of a
    /// summary (same parameters, same seeds).
    pub fn new(eps: Eps, summary_pi: S, summary_rho: S) -> Self {
        Adversary {
            pi: StreamState::new(MaxSpaceTracker::new(summary_pi)),
            rho: StreamState::new(MaxSpaceTracker::new(summary_rho)),
            eps,
            audits: Vec::new(),
            equivalence_error: None,
            tie_break: TieBreak::LowestIndex,
            insert_mode: InsertMode::default(),
            gap_scratch: GapScratch::default(),
            equiv: EquivalenceChecker::new(),
        }
    }

    /// Sets the gap tie-breaking policy (ablation; the paper allows any).
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Sets how leaves feed their runs to the summaries (see
    /// [`InsertMode`]).
    pub fn with_insert_mode(mut self, mode: InsertMode) -> Self {
        self.insert_mode = mode;
        self
    }

    /// Runs `AdvStrategy(k, ∅, ∅, (−∞,∞), (−∞,∞))` and returns the
    /// outcome.
    pub fn run(mut self, k: u32) -> AdversaryOutcome<S> {
        assert!(k >= 1);
        let whole = Interval::whole();
        self.adv(k, &whole, &whole);
        AdversaryOutcome {
            pi: self.pi,
            rho: self.rho,
            eps: self.eps,
            k,
            audits: self.audits,
            equivalence_error: self.equivalence_error,
        }
    }

    /// Runs the construction at level `k` inside the given intervals on
    /// top of whatever the streams already contain — the building block
    /// of the biased-quantiles phases (Theorem 6.5), which repeatedly
    /// invoke `AdvStrategy(i, π_{i−1}, ϱ_{i−1}, (max(π_{i−1}), ∞), …)`.
    ///
    /// Returns the final gap info in the given intervals.
    pub fn extend(&mut self, k: u32, iv_pi: &Interval, iv_rho: &Interval) -> GapInfo {
        self.adv(k, iv_pi, iv_rho)
    }

    /// The live π state.
    pub fn pi(&self) -> &StreamState<MaxSpaceTracker<S>> {
        &self.pi
    }

    /// The live ϱ state.
    pub fn rho(&self) -> &StreamState<MaxSpaceTracker<S>> {
        &self.rho
    }

    /// The ε this adversary was built with.
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// First indistinguishability violation observed so far, if any.
    pub fn equivalence_error(&self) -> Option<&str> {
        self.equivalence_error.as_deref()
    }

    /// Node audits accumulated so far (post-order).
    pub fn audits(&self) -> &[NodeAudit] {
        &self.audits
    }

    /// One node of the recursion tree; returns the node's final gap info
    /// in its *input* intervals (which is the parent's g′ or g″).
    fn adv(&mut self, k: u32, iv_pi: &Interval, iv_rho: &Interval) -> GapInfo {
        let (g_prime, g_dprime) = if k == 1 {
            self.leaf(iv_pi, iv_rho);
            (None, None)
        } else {
            let left_gap = self.adv(k - 1, iv_pi, iv_rho);
            let refinement = refine_from(&self.pi, &self.rho, iv_pi, iv_rho, left_gap.clone());
            let right_gap = self.adv(k - 1, &refinement.iv_pi, &refinement.iv_rho);
            (Some(left_gap.gap), Some(right_gap.gap))
        };

        let gap_now = compute_gap_scratch(
            &self.pi,
            &self.rho,
            iv_pi,
            iv_rho,
            self.tie_break,
            &mut self.gap_scratch,
        );
        let n_k = self.eps.stream_len(k);
        let s_k = gap_now.restricted_len;
        let claim1_ok = match (g_prime, g_dprime) {
            (Some(gp), Some(gd)) => claim1_holds(gap_now.gap, gp, gd),
            _ => true,
        };
        self.audits.push(NodeAudit {
            level: k,
            n_k,
            g: gap_now.gap,
            g_prime,
            g_dprime,
            s_k,
            // `compute_gap` guarantees s_k ≥ 2 (the two boundary entries
            // always enclose the restricted array); saturate anyway so a
            // buggy or non-conforming summary yields a zero count in the
            // audit instead of an underflow panic mid-run.
            stored_inside: s_k.saturating_sub(2),
            claim1_ok,
            lemma52_ok: space_gap_holds(self.eps, n_k, gap_now.gap, s_k),
            space_gap_rhs: space_gap_rhs(self.eps, n_k, gap_now.gap),
        });
        gap_now
    }

    /// Base case: append 2/ε fresh items inside the current intervals,
    /// in the same order on both streams.
    fn leaf(&mut self, iv_pi: &Interval, iv_rho: &Interval) {
        let n = self.eps.leaf_items() as usize;
        let (items_pi, items_rho) = if iv_pi == iv_rho {
            // The paper notes the same items can be appended to both
            // streams while the intervals coincide (e.g. the first leaf).
            let shared = generate_increasing(iv_pi, n);
            (shared.clone(), shared)
        } else {
            (
                generate_increasing(iv_pi, n),
                generate_increasing(iv_rho, n),
            )
        };
        match self.insert_mode {
            InsertMode::Batched => {
                self.pi.push_run(&items_pi);
                self.rho.push_run(&items_rho);
                self.check_size_divergence();
            }
            InsertMode::PerItem => {
                for (a, b) in items_pi.into_iter().zip(items_rho) {
                    self.pi.push(a);
                    self.rho.push(b);
                    // Cheap per-item probe; the full positional check
                    // runs per leaf below.
                    self.check_size_divergence();
                }
            }
        }
        if self.equivalence_error.is_none() {
            if let Err(e) = self.equiv.check(&self.pi, &self.rho) {
                self.equivalence_error = Some(e);
            }
        }
    }

    /// Records a stored-size divergence between the two summary copies —
    /// short-circuits once an error is already latched, so the per-item
    /// loop stops paying for the comparison after the first hit.
    fn check_size_divergence(&mut self) {
        if self.equivalence_error.is_some() {
            return;
        }
        let (a, b) = (
            self.pi.summary.stored_count(),
            self.rho.summary.stored_count(),
        );
        if a != b {
            self.equivalence_error = Some(format!(
                "|I| diverged at stream position {}: {a} vs {b}",
                self.pi.len() - 1,
            ));
        }
    }
}

impl<S: ComparisonSummary<Item>> AdversaryOutcome<S> {
    /// The root node's audit (the whole construction).
    pub fn root(&self) -> &NodeAudit {
        self.audits.last().expect("at least one node")
    }

    /// Final top-level gap gap(π, ϱ).
    pub fn final_gap(&self) -> u64 {
        self.root().g
    }

    /// Whether the summary kept the gap within Lemma 3.4's ceiling —
    /// a *necessary* condition for it to be ε-approximate.
    pub fn gap_within_correctness_ceiling(&self) -> bool {
        self.final_gap() <= self.eps.gap_bound(self.eps.stream_len(self.k))
    }

    /// Flattens into a report.
    pub fn report(&self) -> AdversaryReport {
        let n = self.eps.stream_len(self.k);
        let root = self.root();
        AdversaryReport {
            eps: self.eps,
            k: self.k,
            n,
            final_gap: root.g,
            gap_ceiling: self.eps.gap_bound(n),
            stored_final: self.pi.summary.stored_count(),
            max_stored: self.pi.summary.max_stored(),
            space_gap_rhs_at_gap: root.space_gap_rhs,
            theorem22_bound: theorem22_bound(self.eps, self.k),
            claim1_violations: self.audits.iter().filter(|a| !a.claim1_ok).count(),
            lemma52_violations: self.audits.iter().filter(|a| !a.lemma52_ok).count(),
            equivalence_ok: self.equivalence_error.is_none(),
            max_label_depth: self.pi.max_label_depth(),
            summary_name: self.pi.summary.name(),
        }
    }
}

/// Convenience entry point: builds two fresh summaries via `make`, runs
/// the full construction at depth `k`, and returns the report.
pub fn run_lower_bound<S, F>(eps: Eps, k: u32, mut make: F) -> AdversaryReport
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make()).run(k).report()
}

/// Like [`run_lower_bound`] but returns the full outcome (stream states
/// and audits) for further reductions.
pub fn run_adversary<S, F>(eps: Eps, k: u32, mut make: F) -> AdversaryOutcome<S>
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make()).run(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};

    #[test]
    fn stream_lengths_and_tree_shape() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert_eq!(out.pi.len(), eps.stream_len(4)); // 64
        assert_eq!(out.rho.len(), eps.stream_len(4));
        // Full binary tree with 2^{k−1} leaves has 2^k − 1 nodes.
        assert_eq!(out.audits.len(), (1 << 4) - 1);
        assert_eq!(out.root().level, 4);
    }

    #[test]
    fn exact_summary_keeps_gap_minimal_and_all_checks_pass() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert!(
            out.equivalence_error.is_none(),
            "{:?}",
            out.equivalence_error
        );
        assert_eq!(out.final_gap(), 1, "exact summary leaves no uncertainty");
        let rep = out.report();
        assert_eq!(rep.claim1_violations, 0);
        assert_eq!(rep.lemma52_violations, 0);
        assert!(out.gap_within_correctness_ceiling());
    }

    #[test]
    fn decimated_summary_exceeds_gap_ceiling() {
        let eps = Eps::from_inverse(8);
        // Budget far below ⌈1/(2ε)⌉·(k+1): the gap must blow past 2εN.
        let out = run_adversary(eps, 5, || DecimatedSummary::new(3));
        assert!(
            out.equivalence_error.is_none(),
            "{:?}",
            out.equivalence_error
        );
        assert!(
            !out.gap_within_correctness_ceiling(),
            "gap {} should exceed ceiling {}",
            out.final_gap(),
            eps.gap_bound(eps.stream_len(5))
        );
    }

    #[test]
    fn space_gap_inequality_audited_everywhere_for_reference_summaries() {
        let eps = Eps::from_inverse(8);
        for budget in [3usize, 6, 12, 24] {
            let out = run_adversary(eps, 4, || DecimatedSummary::new(budget));
            let rep = out.report();
            // Lemma 5.2 holds for ANY comparison-based summary whose |I|
            // never decreases; DecimatedSummary's |I| is monotone up to
            // the budget, so no violations are expected.
            assert_eq!(
                rep.lemma52_violations, 0,
                "budget {budget}: space-gap inequality violated"
            );
            assert_eq!(
                rep.claim1_violations, 0,
                "budget {budget}: Claim 1 violated"
            );
        }
    }

    #[test]
    fn max_stored_dominates_theorem_bound_for_correct_summary() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 5, ExactSummary::new);
        let rep = out.report();
        // The exact summary is correct, so Theorem 2.2 applies; it
        // stores everything, so the bound is satisfied with huge slack.
        assert!(rep.max_stored as f64 >= rep.theorem22_bound);
    }

    #[test]
    fn label_depth_tracks_the_refinement_chain() {
        // The continuity assumption's cost: every refinement along the
        // in-order chain can deepen labels by O(1) bytes. With the
        // store-everything summary every gap ties at 1, the argmax never
        // moves, and the chain nests at every internal node — depth
        // doubles per level (Θ(2^k) = Θ(εN) bytes), the worst case the
        // paper's "make the strings even longer" remark licences.
        let eps = Eps::from_inverse(16);
        let d5 = run_adversary(eps, 5, ExactSummary::new)
            .report()
            .max_label_depth;
        let d8 = run_adversary(eps, 8, ExactSummary::new)
            .report()
            .max_label_depth;
        assert!(d5 >= 1 && d8 >= d5);
        // Geometric growth, but bounded by the refinement count: one
        // byte-ish per node of the recursion tree.
        assert!(
            d8 <= (1 << 8) + 64,
            "depth {d8} beyond the refinement-chain bound"
        );
        assert!(
            d8 <= 16 * d5,
            "depth growth wildly superlinear: {d5} -> {d8}"
        );
    }

    #[test]
    fn audits_are_post_order_with_root_last() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 3, ExactSummary::new);
        let levels: Vec<u32> = out.audits.iter().map(|a| a.level).collect();
        assert_eq!(levels, vec![1, 1, 2, 1, 1, 2, 3]);
    }
}
