//! `AdvStrategy` — Pseudocode 2: the recursive adversarial construction.
//!
//! `AdvStrategy(k, π, ϱ, (ℓ_π, r_π), (ℓ_ϱ, r_ϱ))` walks a full binary
//! recursion tree with 2^{k−1} leaves in-order. Each leaf appends 2/ε
//! fresh items inside the current intervals (the same arrival order on
//! both streams); each internal node refines the intervals into the
//! extreme regions of the largest gap between the two recursive calls.
//! The result is a pair of indistinguishable streams of length
//! N_k = (1/ε)·2^k on which the summary's stored-item count must obey the
//! space-gap inequality at *every* node of the tree.
//!
//! This module executes the construction against two live copies of any
//! [`ComparisonSummary`] and records a [`NodeAudit`] per node, checking
//! Claim 1 and Lemma 5.2 as it goes.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cqs_universe::{generate_increasing, generate_increasing_grouped, Interval, Item};

use crate::eps::Eps;
use crate::gap::{compute_gap_scratch, GapInfo, GapScratch, TieBreak};
use crate::model::{ComparisonSummary, MaxSpaceTracker};
use crate::refine::{refine_from, try_refine_from};
use crate::spacegap::{claim1_holds, space_gap_holds, space_gap_rhs, theorem22_bound};
use crate::state::{EquivalenceChecker, StreamRepr, StreamState};

/// Chunk-sealing group for runs minted into an implicit stream (see
/// [`cqs_universe::LabelArena::seal_grouped_into`]): a summary-retained
/// item pins at most this many labels instead of a whole 2/ε run.
const LEAF_SEAL_GROUP: usize = 32;

/// Audit record for one node of the recursion tree (post-order).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeAudit {
    /// Recursion level `k` of this node (leaves are level 1).
    pub level: u32,
    /// Items appended during this node's execution, N_k = (1/ε)·2^k.
    pub n_k: u64,
    /// Final gap `g` in this node's input intervals.
    pub g: u64,
    /// Gap `g′` after the left child (internal nodes only).
    pub g_prime: Option<u64>,
    /// Gap `g″` in the refined intervals after the right child
    /// (internal nodes only).
    pub g_dprime: Option<u64>,
    /// `S_k`: size of the restricted item array `I^(ℓ_π, r_π)` at node
    /// completion (boundary entries included, per the paper).
    pub s_k: usize,
    /// Stored items strictly inside the input interval (S_k minus the
    /// two boundary entries).
    pub stored_inside: usize,
    /// Whether Claim 1 (`g ≥ g′ + g″ − 1`) held (vacuously true at
    /// leaves).
    pub claim1_ok: bool,
    /// Whether the space-gap inequality (Lemma 5.2) held at this node.
    pub lemma52_ok: bool,
    /// The inequality's right-hand side, for reporting.
    pub space_gap_rhs: f64,
}

/// How a leaf feeds its 2/ε-item run to the summaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InsertMode {
    /// One [`ComparisonSummary::insert_sorted_run`] call per leaf (the
    /// runs are generated in increasing order), with the treap side
    /// joined in bulk. The default; for a conforming summary the audits
    /// are byte-identical to [`PerItem`](Self::PerItem).
    #[default]
    Batched,
    /// One `insert` per item with a stored-size divergence probe after
    /// each — the legacy path, kept for equivalence testing and for
    /// pinpointing the exact stream position where a non-conforming
    /// summary diverges.
    PerItem,
}

/// The adversary: two live streams, two live summary copies, an audit
/// trail.
pub struct Adversary<S> {
    pi: StreamState<MaxSpaceTracker<S>>,
    rho: StreamState<MaxSpaceTracker<S>>,
    eps: Eps,
    audits: Vec<NodeAudit>,
    equivalence_error: Option<String>,
    tie_break: TieBreak,
    insert_mode: InsertMode,
    gap_scratch: GapScratch,
    equiv: EquivalenceChecker,
    budget: AdversaryBudget,
}

/// Everything the adversary produced: the final stream states (reusable
/// by the corollary reductions) and the audit trail.
pub struct AdversaryOutcome<S> {
    /// Stream π with its summary copy.
    pub pi: StreamState<MaxSpaceTracker<S>>,
    /// Stream ϱ with its summary copy.
    pub rho: StreamState<MaxSpaceTracker<S>>,
    /// The ε used.
    pub eps: Eps,
    /// The recursion depth k (N = (1/ε)·2^k).
    pub k: u32,
    /// Post-order audit of every recursion-tree node; the root is last.
    pub audits: Vec<NodeAudit>,
    /// First indistinguishability violation observed, if any.
    pub equivalence_error: Option<String>,
    /// Result of the final rank-query probe — populated by
    /// [`Adversary::try_run`] (the panicking [`Adversary::run`] never
    /// queries the summary, so it leaves this `None`).
    pub rank_probe: Option<RankProbe>,
}

impl<S: ComparisonSummary<Item>> fmt::Debug for AdversaryOutcome<S> {
    /// Summarises the run (the live stream states are not themselves
    /// `Debug`; their lengths stand in for them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversaryOutcome")
            .field("eps", &self.eps)
            .field("k", &self.k)
            .field("pi_len", &self.pi.len())
            .field("rho_len", &self.rho.len())
            .field("audits", &self.audits.len())
            .field("equivalence_error", &self.equivalence_error)
            .field("rank_probe", &self.rank_probe)
            .finish()
    }
}

/// Flat, display-friendly summary of an adversary run.
#[derive(Clone, Debug, PartialEq)]
pub struct AdversaryReport {
    /// ε of the run.
    pub eps: Eps,
    /// Recursion depth.
    pub k: u32,
    /// Stream length N_k.
    pub n: u64,
    /// Final top-level gap gap(π, ϱ).
    pub final_gap: u64,
    /// Lemma 3.4 ceiling 2εN: correct summaries must have
    /// `final_gap ≤ gap_ceiling`.
    pub gap_ceiling: u64,
    /// |I| at the end of the stream (π copy).
    pub stored_final: usize,
    /// Running-max |I| over the whole stream (π copy) — the honest
    /// space figure for summaries that shrink after compaction.
    pub max_stored: usize,
    /// The space-gap RHS evaluated at the measured final gap.
    pub space_gap_rhs_at_gap: f64,
    /// Theorem 2.2's bound c·(k+1)/(4ε) (applies when the summary is
    /// correct, i.e. when `final_gap ≤ gap_ceiling`).
    pub theorem22_bound: f64,
    /// Number of nodes where Claim 1 failed (expected 0).
    pub claim1_violations: usize,
    /// Number of nodes where the instantaneous space-gap inequality
    /// failed. For summaries whose |I| shrinks over time this can be
    /// nonzero at interior nodes without contradicting the paper (its
    /// model assumes |I| never decreases); the top-level running-max
    /// bound is the meaningful figure.
    pub lemma52_violations: usize,
    /// Whether indistinguishability held throughout.
    pub equivalence_ok: bool,
    /// Longest universe label minted (bytes) — adversary-side cost of
    /// the continuity assumption; grows O(k), not O(N).
    pub max_label_depth: usize,
    /// Algorithm name of the summary under attack.
    pub summary_name: &'static str,
}

/// The five ways an adversary run can end — the failure taxonomy the
/// panic-free driver reports (see DESIGN.md, "Failure taxonomy & fault
/// injection"). The first two come out of a finished
/// [`AdversaryOutcome`] via [`AdversaryOutcome::verdict`]; the last
/// three out of an [`AdversaryError`] via [`AdversaryError::verdict`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunVerdict {
    /// The construction finished and the summary behaved: the final gap
    /// stayed within Lemma 3.4's ceiling and every probed rank query was
    /// εN-accurate. Theorem 2.2's space bound therefore applies.
    Completed,
    /// The construction finished but the summary is not ε-approximate:
    /// the final gap exceeded 2εN, or a probed rank query missed by more
    /// than εN — the other horn of the paper's dilemma.
    SummaryIncorrect,
    /// The summary stepped outside the deterministic comparison-based
    /// model (Definition 2.1/3.2): its two copies diverged on
    /// indistinguishable streams, it answered with a non-stream item,
    /// its rank responses were grossly non-monotone, or it understated
    /// its stored space. The lower bound does not constrain such a
    /// summary; the run is evidence of the violation, not of incorrectness.
    ModelViolation,
    /// A summary call panicked; the run holds the audit prefix up to the
    /// offending call.
    SummaryPanicked,
    /// A configured [`AdversaryBudget`] ran out before the construction
    /// finished; the partial audit trail is still Lemma 5.2-valid.
    BudgetExhausted,
}

impl RunVerdict {
    /// Stable kebab-case name (CLI output, exit-code tables).
    pub fn as_str(self) -> &'static str {
        match self {
            RunVerdict::Completed => "completed",
            RunVerdict::SummaryIncorrect => "summary-incorrect",
            RunVerdict::ModelViolation => "model-violation",
            RunVerdict::SummaryPanicked => "summary-panicked",
            RunVerdict::BudgetExhausted => "budget-exhausted",
        }
    }
}

impl fmt::Display for RunVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Deterministic resource limits for [`Adversary::try_run`]. All
/// default to unlimited; exceeding any yields
/// [`AdversaryError::BudgetExhausted`] with the partial audit trail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdversaryBudget {
    /// Maximum stream length (items per stream). Checked before each
    /// leaf, so the construction never feeds a partial leaf.
    pub max_steps: Option<u64>,
    /// Maximum recursion depth k.
    pub max_depth: Option<u32>,
    /// Maximum running-max stored-item count `max |I|` tolerated from
    /// the summary. Checked after each leaf.
    pub max_stored: Option<usize>,
}

/// What the final rank-query probe of [`Adversary::try_run`] measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankProbe {
    /// Number of rank queries issued (a grid over [1, N]).
    pub queries: usize,
    /// Largest true rank error |rank(answer) − target| observed.
    pub max_rank_error: u64,
    /// The εN budget a correct summary must stay within.
    pub rank_budget: u64,
}

/// The audit trail salvaged from a run that did not complete — enough
/// to see how far the construction got and that the Lemma 5.2 prefix
/// still holds.
#[derive(Clone, Debug)]
pub struct PartialRun {
    /// The ε of the aborted run.
    pub eps: Eps,
    /// The requested recursion depth.
    pub k: u32,
    /// Items successfully fed to *both* summary copies before the abort.
    pub items_fed: u64,
    /// Running-max |I| of the π copy up to the abort (cached by
    /// [`MaxSpaceTracker`], so it is readable even after a panic left
    /// the summary poisoned).
    pub max_stored: usize,
    /// Post-order audits of every recursion-tree node that *completed*
    /// before the abort — a prefix of the full run's audit list.
    pub audits: Vec<NodeAudit>,
}

impl PartialRun {
    /// Number of nodes whose Lemma 5.2 check failed within the prefix.
    pub fn lemma52_violations(&self) -> usize {
        self.audits.iter().filter(|a| !a.lemma52_ok).count()
    }
}

/// Why [`Adversary::try_run`] could not produce an
/// [`AdversaryOutcome`]. Every variant except
/// [`InvalidConfig`](Self::InvalidConfig) carries the [`PartialRun`]
/// salvaged at the point of failure.
#[derive(Clone, Debug)]
pub enum AdversaryError {
    /// The run was never started: the configuration is unusable.
    InvalidConfig {
        /// Human-readable reason.
        detail: String,
    },
    /// The run was never started: the configured stream length
    /// N_k = (1/ε)·2^k does not fit in `u64`. Split from
    /// [`InvalidConfig`](Self::InvalidConfig) so sweep drivers can tell
    /// "you asked for more items than the machine can count" apart from
    /// structurally bad parameters.
    ConfigOverflow {
        /// Human-readable reason, naming ε and k.
        detail: String,
    },
    /// A process-wide capacity ran out mid-run: the arena id mint or
    /// the implicit stream's run-id space was exhausted. Typed (not a
    /// silent fast-path degradation, not a panic) so billion-item
    /// sweeps can report exactly which wall they hit.
    CapacityExhausted {
        /// Which capacity ran out, and where.
        detail: String,
        /// Salvaged audit prefix.
        partial: PartialRun,
    },
    /// A summary call panicked; the driver caught it, poisoned the run,
    /// and stopped issuing summary calls.
    SummaryPanicked {
        /// 1-based stream position whose processing panicked.
        step: u64,
        /// Which summary operation panicked (`"insert"`/`"query_rank"`).
        during: &'static str,
        /// The panic payload, stringified.
        payload: String,
        /// Salvaged audit prefix.
        partial: PartialRun,
    },
    /// The summary left the deterministic comparison-based model; see
    /// [`RunVerdict::ModelViolation`].
    ModelViolation {
        /// Human-readable description of the violation.
        detail: String,
        /// Salvaged audit prefix.
        partial: PartialRun,
    },
    /// An [`AdversaryBudget`] limit was hit.
    BudgetExhausted {
        /// Which budget ran out, and where.
        detail: String,
        /// Salvaged audit prefix.
        partial: PartialRun,
    },
}

impl AdversaryError {
    /// The verdict this error maps to. A degenerate configuration maps
    /// to [`RunVerdict::BudgetExhausted`]: the run was over before it
    /// began (callers that care distinguish it by matching the variant).
    pub fn verdict(&self) -> RunVerdict {
        match self {
            AdversaryError::InvalidConfig { .. } | AdversaryError::ConfigOverflow { .. } => {
                RunVerdict::BudgetExhausted
            }
            AdversaryError::SummaryPanicked { .. } => RunVerdict::SummaryPanicked,
            AdversaryError::ModelViolation { .. } => RunVerdict::ModelViolation,
            AdversaryError::BudgetExhausted { .. } | AdversaryError::CapacityExhausted { .. } => {
                RunVerdict::BudgetExhausted
            }
        }
    }

    /// The salvaged partial run, when one exists.
    pub fn partial(&self) -> Option<&PartialRun> {
        match self {
            AdversaryError::InvalidConfig { .. } | AdversaryError::ConfigOverflow { .. } => None,
            AdversaryError::SummaryPanicked { partial, .. }
            | AdversaryError::ModelViolation { partial, .. }
            | AdversaryError::BudgetExhausted { partial, .. }
            | AdversaryError::CapacityExhausted { partial, .. } => Some(partial),
        }
    }
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::InvalidConfig { detail } => {
                write!(f, "invalid adversary configuration: {detail}")
            }
            AdversaryError::ConfigOverflow { detail } => {
                write!(f, "adversary configuration overflows u64: {detail}")
            }
            AdversaryError::CapacityExhausted { detail, .. } => {
                write!(f, "capacity exhausted: {detail}")
            }
            AdversaryError::SummaryPanicked {
                step,
                during,
                payload,
                ..
            } => write!(f, "summary panicked in {during} at step {step}: {payload}"),
            AdversaryError::ModelViolation { detail, .. } => {
                write!(f, "comparison-model violation: {detail}")
            }
            AdversaryError::BudgetExhausted { detail, .. } => {
                write!(f, "budget exhausted: {detail}")
            }
        }
    }
}

impl std::error::Error for AdversaryError {}

/// The abort reasons threaded up the `try_adv` recursion; converted
/// into [`AdversaryError`] (with the salvaged [`PartialRun`]) at the
/// top of [`Adversary::try_run`].
enum TryAbort {
    Panicked {
        step: u64,
        during: &'static str,
        payload: String,
    },
    Model {
        detail: String,
    },
    Budget {
        detail: String,
    },
    Exhausted {
        detail: String,
    },
}

/// Stringifies a caught panic payload (the common `&str`/`String`
/// cases; anything else gets a placeholder).
fn payload_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<S: ComparisonSummary<Item>> Adversary<S> {
    /// Creates an adversary attacking two *identical* fresh copies of a
    /// summary (same parameters, same seeds).
    pub fn new(eps: Eps, summary_pi: S, summary_rho: S) -> Self {
        Adversary {
            pi: StreamState::new(MaxSpaceTracker::new(summary_pi)),
            rho: StreamState::new(MaxSpaceTracker::new(summary_rho)),
            eps,
            audits: Vec::new(),
            equivalence_error: None,
            tie_break: TieBreak::LowestIndex,
            insert_mode: InsertMode::default(),
            gap_scratch: GapScratch::default(),
            equiv: EquivalenceChecker::new(),
            budget: AdversaryBudget::default(),
        }
    }

    /// Sets deterministic resource limits for [`try_run`](Self::try_run)
    /// (the panicking [`run`](Self::run) ignores them).
    pub fn with_budget(mut self, budget: AdversaryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the gap tie-breaking policy (ablation; the paper allows any).
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Sets how leaves feed their runs to the summaries (see
    /// [`InsertMode`]).
    pub fn with_insert_mode(mut self, mode: InsertMode) -> Self {
        self.insert_mode = mode;
        self
    }

    /// Sets the stream representation (see [`StreamRepr`]). Implicit
    /// streams keep memory sublinear in N — the billion-item
    /// configuration — and require [`InsertMode::Batched`] (runs are
    /// the unit of interval compression).
    ///
    /// # Panics
    ///
    /// Panics if any items were already fed (the representation is a
    /// construction-time choice).
    pub fn with_stream_repr(mut self, repr: StreamRepr) -> Self {
        assert!(
            self.pi.is_empty() && self.rho.is_empty(),
            "stream representation must be chosen before any item is fed"
        );
        let pi = self.pi.summary;
        let rho = self.rho.summary;
        self.pi = StreamState::with_repr(pi, repr);
        self.rho = StreamState::with_repr(rho, repr);
        self
    }

    /// The representation both streams use.
    fn repr(&self) -> StreamRepr {
        self.pi.repr()
    }

    /// Runs `AdvStrategy(k, ∅, ∅, (−∞,∞), (−∞,∞))` and returns the
    /// outcome.
    pub fn run(mut self, k: u32) -> AdversaryOutcome<S> {
        assert!(k >= 1);
        assert!(
            !(self.repr() == StreamRepr::Implicit && self.insert_mode == InsertMode::PerItem),
            "implicit streams require batched insertion (runs are the \
             unit of interval compression)"
        );
        self.reserve_streams(k);
        let whole = Interval::whole();
        self.adv(k, &whole, &whole);
        AdversaryOutcome {
            pi: self.pi,
            rho: self.rho,
            eps: self.eps,
            k,
            audits: self.audits,
            equivalence_error: self.equivalence_error,
            rank_probe: None,
        }
    }

    /// Panic-free [`run`](Self::run): executes the same construction
    /// per item with every summary call guarded, enforces the configured
    /// [`AdversaryBudget`], and finishes with a rank-query probe. A
    /// summary that panics, leaves the comparison model, or outlives its
    /// budget yields a typed [`AdversaryError`] carrying the salvaged
    /// [`PartialRun`] — no panic originating in the summary (or in the
    /// driver's own invariants, should a lying summary corrupt them)
    /// escapes this call.
    ///
    /// On success the returned outcome additionally carries
    /// [`RankProbe`] data; classify it with
    /// [`AdversaryOutcome::verdict`].
    ///
    /// Items are fed one at a time regardless of [`InsertMode`] so that
    /// an abort is attributable to an exact 1-based stream step. For
    /// summaries whose bulk path is byte-identical to per-item insertion
    /// (GK, greedy GK, MRL — see `tests/faults_differential.rs`) the
    /// construction matches [`run`](Self::run) exactly; summaries whose
    /// compaction timing depends on insertion granularity (KLL) may
    /// show slightly different gaps than a batched run.
    pub fn try_run(mut self, k: u32) -> Result<AdversaryOutcome<S>, AdversaryError> {
        if k < 1 {
            return Err(AdversaryError::InvalidConfig {
                detail: "recursion depth k must be at least 1".to_string(),
            });
        }
        if self.eps.try_stream_len(k).is_none() {
            return Err(AdversaryError::ConfigOverflow {
                detail: format!(
                    "stream length N_k = (1/{}) * 2^{k} does not fit in u64",
                    self.eps.inverse()
                ),
            });
        }
        if self.repr() == StreamRepr::Implicit && self.insert_mode == InsertMode::PerItem {
            return Err(AdversaryError::InvalidConfig {
                detail: "implicit streams require batched insertion (runs are the \
                         unit of interval compression)"
                    .to_string(),
            });
        }
        if let Some(max_depth) = self.budget.max_depth {
            if k > max_depth {
                let detail = format!("recursion depth {k} exceeds the depth budget of {max_depth}");
                return Err(self.into_error(TryAbort::Budget { detail }, k));
            }
        }
        self.reserve_streams(k);
        let whole = Interval::whole();
        let walked = {
            let this = &mut self;
            // Backstop: the driver's own invariants (treap distinctness,
            // equal restricted-array lengths, …) are stated as asserts
            // that a sufficiently mendacious summary can trip; any such
            // escape is, by construction, evidence the summary left the
            // model.
            catch_unwind(AssertUnwindSafe(|| this.try_adv(k, &whole, &whole)))
        };
        let walked = match walked {
            Ok(r) => r,
            Err(payload) => {
                let detail = format!(
                    "driver invariant violated mid-run: {}",
                    payload_string(payload)
                );
                return Err(self.into_error(TryAbort::Model { detail }, k));
            }
        };
        if let Err(abort) = walked {
            return Err(self.into_error(abort, k));
        }
        let probed = {
            let this = &mut self;
            catch_unwind(AssertUnwindSafe(|| this.final_rank_probe()))
        };
        let probe = match probed {
            Ok(Ok(p)) => p,
            Ok(Err(abort)) => return Err(self.into_error(abort, k)),
            Err(payload) => {
                let detail = format!(
                    "driver invariant violated during the rank probe: {}",
                    payload_string(payload)
                );
                return Err(self.into_error(TryAbort::Model { detail }, k));
            }
        };
        Ok(AdversaryOutcome {
            pi: self.pi,
            rho: self.rho,
            eps: self.eps,
            k,
            audits: self.audits,
            equivalence_error: self.equivalence_error,
            rank_probe: Some(probe),
        })
    }

    /// Runs the construction at level `k` inside the given intervals on
    /// top of whatever the streams already contain — the building block
    /// of the biased-quantiles phases (Theorem 6.5), which repeatedly
    /// invoke `AdvStrategy(i, π_{i−1}, ϱ_{i−1}, (max(π_{i−1}), ∞), …)`.
    ///
    /// Returns the final gap info in the given intervals.
    pub fn extend(&mut self, k: u32, iv_pi: &Interval, iv_rho: &Interval) -> GapInfo {
        self.adv(k, iv_pi, iv_rho)
    }

    /// The live π state.
    pub fn pi(&self) -> &StreamState<MaxSpaceTracker<S>> {
        &self.pi
    }

    /// The live ϱ state.
    pub fn rho(&self) -> &StreamState<MaxSpaceTracker<S>> {
        &self.rho
    }

    /// The ε this adversary was built with.
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// First indistinguishability violation observed so far, if any.
    pub fn equivalence_error(&self) -> Option<&str> {
        self.equivalence_error.as_deref()
    }

    /// Node audits accumulated so far (post-order).
    pub fn audits(&self) -> &[NodeAudit] {
        &self.audits
    }

    /// Pre-sizes both stream indexes for the N = (1/ε)·2^k items the
    /// depth-`k` construction will feed them. Capped so a deep run that
    /// a budget (or memory itself) would stop early doesn't pre-commit
    /// the whole theoretical stream length; past the cap the arena
    /// falls back to doubling.
    fn reserve_streams(&mut self, k: u32) {
        const RESERVE_CAP: u64 = 1 << 21;
        let n = usize::try_from(
            self.eps
                .try_stream_len(k)
                .unwrap_or(u64::MAX)
                .min(RESERVE_CAP),
        )
        .unwrap_or(0);
        self.pi.reserve_items(n);
        self.rho.reserve_items(n);
    }

    /// One node of the recursion tree; returns the node's final gap info
    /// in its *input* intervals (which is the parent's g′ or g″).
    fn adv(&mut self, k: u32, iv_pi: &Interval, iv_rho: &Interval) -> GapInfo {
        let (g_prime, g_dprime) = if k == 1 {
            self.leaf(iv_pi, iv_rho);
            (None, None)
        } else {
            let left_gap = self.adv(k - 1, iv_pi, iv_rho);
            let refinement = refine_from(&self.pi, &self.rho, iv_pi, iv_rho, left_gap.clone());
            let right_gap = self.adv(k - 1, &refinement.iv_pi, &refinement.iv_rho);
            (Some(left_gap.gap), Some(right_gap.gap))
        };
        self.audit_node(k, iv_pi, iv_rho, g_prime, g_dprime)
    }

    /// Panic-free twin of [`adv`](Self::adv): leaves feed per item with
    /// every summary call guarded, refinement failures become typed
    /// aborts, and the audit bookkeeping is shared via
    /// [`audit_node`](Self::audit_node).
    fn try_adv(
        &mut self,
        k: u32,
        iv_pi: &Interval,
        iv_rho: &Interval,
    ) -> Result<GapInfo, TryAbort> {
        let (g_prime, g_dprime) = if k == 1 {
            self.try_leaf(iv_pi, iv_rho)?;
            (None, None)
        } else {
            let left_gap = self.try_adv(k - 1, iv_pi, iv_rho)?;
            let refinement =
                match try_refine_from(&self.pi, &self.rho, iv_pi, iv_rho, left_gap.clone()) {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(TryAbort::Model {
                            detail: e.to_string(),
                        })
                    }
                };
            let right_gap = self.try_adv(k - 1, &refinement.iv_pi, &refinement.iv_rho)?;
            (Some(left_gap.gap), Some(right_gap.gap))
        };
        Ok(self.audit_node(k, iv_pi, iv_rho, g_prime, g_dprime))
    }

    /// Computes the node's gap in its input intervals and pushes its
    /// [`NodeAudit`]; shared by both drivers. Returns the gap info
    /// (the parent's g′ or g″).
    fn audit_node(
        &mut self,
        k: u32,
        iv_pi: &Interval,
        iv_rho: &Interval,
        g_prime: Option<u64>,
        g_dprime: Option<u64>,
    ) -> GapInfo {
        let gap_now = compute_gap_scratch(
            &self.pi,
            &self.rho,
            iv_pi,
            iv_rho,
            self.tie_break,
            &mut self.gap_scratch,
        );
        // `try_run` validated N_k at the root; intermediate levels can
        // only be smaller, so the unwrap is for the panicking `run`
        // path alone — where `stream_len` itself would already have
        // panicked with the same message.
        let n_k = self.eps.try_stream_len(k).unwrap_or(u64::MAX);
        let s_k = gap_now.restricted_len;
        let claim1_ok = match (g_prime, g_dprime) {
            (Some(gp), Some(gd)) => claim1_holds(gap_now.gap, gp, gd),
            _ => true,
        };
        self.audits.push(NodeAudit {
            level: k,
            n_k,
            g: gap_now.gap,
            g_prime,
            g_dprime,
            s_k,
            // `compute_gap` guarantees s_k ≥ 2 (the two boundary entries
            // always enclose the restricted array); saturate anyway so a
            // buggy or non-conforming summary yields a zero count in the
            // audit instead of an underflow panic mid-run.
            stored_inside: s_k.saturating_sub(2),
            claim1_ok,
            lemma52_ok: space_gap_holds(self.eps, n_k, gap_now.gap, s_k),
            space_gap_rhs: space_gap_rhs(self.eps, n_k, gap_now.gap),
        });
        gap_now
    }

    /// Mints the two leaf runs of 2/ε fresh items inside the current
    /// intervals. While the intervals coincide (e.g. the first leaf) the
    /// very same items are appended to both streams — the paper's
    /// observation. Implicit streams seal in groups of
    /// [`LEAF_SEAL_GROUP`]: the run is replayed on demand through a
    /// `RunGenerator` afterwards, so per-item arena ids would only burn
    /// the 2³²-id mint space the whole-sweep budget needs.
    fn mint_leaf_runs(
        &self,
        iv_pi: &Interval,
        iv_rho: &Interval,
        n: usize,
    ) -> (Vec<Item>, Vec<Item>) {
        let mint = |iv: &Interval| match self.repr() {
            StreamRepr::Materialized => generate_increasing(iv, n),
            StreamRepr::Implicit => generate_increasing_grouped(iv, n, LEAF_SEAL_GROUP),
        };
        if iv_pi == iv_rho {
            let shared = mint(iv_pi);
            (shared.clone(), shared)
        } else {
            (mint(iv_pi), mint(iv_rho))
        }
    }

    /// Base case: append 2/ε fresh items inside the current intervals,
    /// in the same order on both streams.
    fn leaf(&mut self, iv_pi: &Interval, iv_rho: &Interval) {
        let n = self.eps.leaf_items() as usize;
        let (items_pi, items_rho) = self.mint_leaf_runs(iv_pi, iv_rho, n);
        match self.insert_mode {
            InsertMode::Batched => {
                self.pi.push_run_in(iv_pi, &items_pi);
                self.rho.push_run_in(iv_rho, &items_rho);
                self.check_size_divergence();
            }
            InsertMode::PerItem => {
                for (a, b) in items_pi.into_iter().zip(items_rho) {
                    self.pi.push(a);
                    self.rho.push(b);
                    // Cheap per-item probe; the full positional check
                    // runs per leaf below.
                    self.check_size_divergence();
                }
            }
        }
        if self.equivalence_error.is_none() {
            if let Err(e) = self.equiv.check(&self.pi, &self.rho) {
                self.equivalence_error = Some(e);
            }
        }
    }

    /// Records a stored-size divergence between the two summary copies —
    /// short-circuits once an error is already latched, so the per-item
    /// loop stops paying for the comparison after the first hit.
    fn check_size_divergence(&mut self) {
        if self.equivalence_error.is_some() {
            return;
        }
        if let Some(e) = self.size_divergence() {
            self.equivalence_error = Some(e);
        }
    }

    /// The divergence probe itself: compares the two copies' stored
    /// counts, describing any mismatch.
    fn size_divergence(&self) -> Option<String> {
        let (a, b) = (
            self.pi.summary.stored_count(),
            self.rho.summary.stored_count(),
        );
        if a != b {
            Some(format!(
                "|I| diverged at stream position {}: {a} vs {b}",
                self.pi.len().saturating_sub(1),
            ))
        } else {
            None
        }
    }

    /// Panic-free leaf: enforces the step budget up front, indexes the
    /// run in both treaps (so rank machinery stays coherent even if the
    /// summary dies mid-run), then feeds item by item with each `insert`
    /// guarded. After the run: space-understatement probe, the full
    /// Definition 3.2 check, and the stored-items budget.
    fn try_leaf(&mut self, iv_pi: &Interval, iv_rho: &Interval) -> Result<(), TryAbort> {
        let n = self.eps.leaf_items() as usize;
        if let Some(max_steps) = self.budget.max_steps {
            let fed = self.pi.len();
            if fed + n as u64 > max_steps {
                return Err(TryAbort::Budget {
                    detail: format!(
                        "step budget of {max_steps} items cannot cover the next leaf \
                         ({fed} fed, {n} more needed)"
                    ),
                });
            }
        }
        // Capacity guards, checked before minting so nothing is wasted
        // on a doomed leaf. All three are typed `Exhausted` aborts (the
        // run's prefix is salvaged into a `PartialRun`), never silent
        // wraparound: the arena mint counter, the implicit run-id
        // space, and — materialized only — the u32 treap arena links.
        if cqs_universe::ids_exhausted() {
            return Err(TryAbort::Exhausted {
                detail: "label arena mint ids exhausted (2^32 items minted across this \
                         process); implicit streams avoid per-item ids via grouped sealing"
                    .to_string(),
            });
        }
        if self.pi.runs_exhausted() || self.rho.runs_exhausted() {
            return Err(TryAbort::Exhausted {
                detail: "implicit stream run-id space exhausted (2^32 - 1 runs)".to_string(),
            });
        }
        if self.repr() == StreamRepr::Materialized
            && self.pi.len() + n as u64 >= u64::from(u32::MAX)
        {
            return Err(TryAbort::Exhausted {
                detail: format!(
                    "materialized stream index cannot address the next leaf: {} items \
                     indexed, {n} more would overflow the u32 arena; rerun with \
                     StreamRepr::Implicit",
                    self.pi.len()
                ),
            });
        }
        let (items_pi, items_rho) = self.mint_leaf_runs(iv_pi, iv_rho, n);
        self.pi.index_run_in(iv_pi, &items_pi);
        self.rho.index_run_in(iv_rho, &items_rho);
        for (a, b) in items_pi.into_iter().zip(items_rho) {
            let step = self.pi.len() + 1;
            let pi = &mut self.pi;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| pi.feed_summary(a))) {
                return Err(TryAbort::Panicked {
                    step,
                    during: "insert",
                    payload: payload_string(payload),
                });
            }
            let rho = &mut self.rho;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| rho.feed_summary(b))) {
                return Err(TryAbort::Panicked {
                    step,
                    during: "insert",
                    payload: payload_string(payload),
                });
            }
            if let Some(detail) = self.size_divergence() {
                return Err(TryAbort::Model { detail });
            }
        }
        for (name, st) in [("pi", &self.pi), ("rho", &self.rho)] {
            let claimed = st.summary.stored_count();
            let mut actual = 0usize;
            st.summary.for_each_item(&mut |_| actual += 1);
            if claimed < actual {
                return Err(TryAbort::Model {
                    detail: format!(
                        "summary ({name} copy) understates its space: stored_count() = \
                         {claimed} but the item array holds {actual} items"
                    ),
                });
            }
        }
        if let Err(detail) = self.equiv.check(&self.pi, &self.rho) {
            return Err(TryAbort::Model { detail });
        }
        if let Some(max_stored) = self.budget.max_stored {
            let peak = self
                .pi
                .summary
                .max_stored()
                .max(self.rho.summary.max_stored());
            if peak > max_stored {
                return Err(TryAbort::Budget {
                    detail: format!(
                        "stored-items budget of {max_stored} exceeded: peak |I| = {peak}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Post-construction probe: a ~64-point rank-query grid over [1, N]
    /// on the π copy, each call guarded. Catches summaries that panic
    /// only on query, answer with non-stream items (a comparison-model
    /// impossibility), or answer grossly non-monotonically; accumulates
    /// the worst true rank error for the verdict.
    fn final_rank_probe(&mut self) -> Result<RankProbe, TryAbort> {
        let n = self.pi.len();
        let rank_budget = self.eps.rank_budget(n);
        let steps = 64u64.min(n.max(1));
        let denom = steps.saturating_sub(1).max(1);
        let mut max_rank_error = 0u64;
        let mut highest_answer: Option<u64> = None;
        let mut queries = 0usize;
        for j in 0..steps {
            let target = (1 + j * n.saturating_sub(1) / denom).clamp(1, n);
            let pi = &self.pi;
            let answer = match catch_unwind(AssertUnwindSafe(|| pi.summary.query_rank(target))) {
                Ok(a) => a,
                Err(payload) => {
                    return Err(TryAbort::Panicked {
                        step: n,
                        during: "query_rank",
                        payload: payload_string(payload),
                    })
                }
            };
            queries += 1;
            let item = match answer {
                Some(it) => it,
                None => {
                    return Err(TryAbort::Model {
                        detail: format!(
                            "query_rank({target}) answered nothing on a stream of {n} items"
                        ),
                    })
                }
            };
            if self.pi.arrival_of(&item).is_none() {
                return Err(TryAbort::Model {
                    detail: format!(
                        "query_rank({target}) answered with an item that never appeared \
                         in the stream"
                    ),
                });
            }
            let rank = self.pi.rank(&item);
            // An ε-approximate answer sits within rank_budget of its
            // target, so along an increasing target grid no answer can
            // fall more than 2·rank_budget below the running max; a
            // bigger drop is non-monotonicity beyond what the model
            // permits any honest summary.
            if let Some(hi) = highest_answer {
                if rank + 2 * rank_budget < hi {
                    return Err(TryAbort::Model {
                        detail: format!(
                            "non-monotone rank responses: query_rank({target}) answered \
                             rank {rank}, more than 2x the rank budget {rank_budget} below \
                             an earlier answer at rank {hi}"
                        ),
                    });
                }
            }
            highest_answer = Some(highest_answer.map_or(rank, |hi| hi.max(rank)));
            max_rank_error = max_rank_error.max(self.pi.rank_error(&item, target));
        }
        Ok(RankProbe {
            queries,
            max_rank_error,
            rank_budget,
        })
    }

    /// Salvages the partial audit trail and wraps the abort reason into
    /// the public error. `max_stored` comes from [`MaxSpaceTracker`]'s
    /// cached running max, which stays readable after the summary itself
    /// was poisoned by a panic.
    fn into_error(self, abort: TryAbort, k: u32) -> AdversaryError {
        let partial = PartialRun {
            eps: self.eps,
            k,
            items_fed: self.pi.len().min(self.rho.len()),
            max_stored: self.pi.summary.max_stored(),
            audits: self.audits,
        };
        match abort {
            TryAbort::Panicked {
                step,
                during,
                payload,
            } => AdversaryError::SummaryPanicked {
                step,
                during,
                payload,
                partial,
            },
            TryAbort::Model { detail } => AdversaryError::ModelViolation { detail, partial },
            TryAbort::Budget { detail } => AdversaryError::BudgetExhausted { detail, partial },
            TryAbort::Exhausted { detail } => AdversaryError::CapacityExhausted { detail, partial },
        }
    }
}

impl<S: ComparisonSummary<Item>> AdversaryOutcome<S> {
    /// The root node's audit (the whole construction), or `None` for a
    /// degenerate outcome whose audit list is empty.
    pub fn root(&self) -> Option<&NodeAudit> {
        self.audits.last()
    }

    /// Final top-level gap gap(π, ϱ) (0 when no node was audited).
    pub fn final_gap(&self) -> u64 {
        self.root().map_or(0, |r| r.g)
    }

    /// Whether the summary kept the gap within Lemma 3.4's ceiling —
    /// a *necessary* condition for it to be ε-approximate.
    pub fn gap_within_correctness_ceiling(&self) -> bool {
        self.final_gap() <= self.eps.gap_bound(self.eps.stream_len(self.k))
    }

    /// Classifies a finished run: [`RunVerdict::ModelViolation`] if
    /// indistinguishability broke (legacy driver latching),
    /// [`RunVerdict::SummaryIncorrect`] if the final gap burst Lemma
    /// 3.4's ceiling or the rank probe (when present) measured an error
    /// beyond εN, [`RunVerdict::Completed`] otherwise.
    pub fn verdict(&self) -> RunVerdict {
        if self.equivalence_error.is_some() {
            return RunVerdict::ModelViolation;
        }
        let probe_ok = match &self.rank_probe {
            Some(p) => p.max_rank_error <= p.rank_budget,
            None => true,
        };
        if self.gap_within_correctness_ceiling() && probe_ok {
            RunVerdict::Completed
        } else {
            RunVerdict::SummaryIncorrect
        }
    }

    /// Flattens into a report.
    pub fn report(&self) -> AdversaryReport {
        let n = self.eps.stream_len(self.k);
        let (final_gap, rhs_at_gap) = self.root().map_or((0, 0.0), |r| (r.g, r.space_gap_rhs));
        AdversaryReport {
            eps: self.eps,
            k: self.k,
            n,
            final_gap,
            gap_ceiling: self.eps.gap_bound(n),
            stored_final: self.pi.summary.stored_count(),
            max_stored: self.pi.summary.max_stored(),
            space_gap_rhs_at_gap: rhs_at_gap,
            theorem22_bound: theorem22_bound(self.eps, self.k),
            claim1_violations: self.audits.iter().filter(|a| !a.claim1_ok).count(),
            lemma52_violations: self.audits.iter().filter(|a| !a.lemma52_ok).count(),
            equivalence_ok: self.equivalence_error.is_none(),
            max_label_depth: self.pi.max_label_depth(),
            summary_name: self.pi.summary.name(),
        }
    }
}

/// Convenience entry point: builds two fresh summaries via `make`, runs
/// the full construction at depth `k`, and returns the report.
pub fn run_lower_bound<S, F>(eps: Eps, k: u32, mut make: F) -> AdversaryReport
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make()).run(k).report()
}

/// Like [`run_lower_bound`] but returns the full outcome (stream states
/// and audits) for further reductions.
pub fn run_adversary<S, F>(eps: Eps, k: u32, mut make: F) -> AdversaryOutcome<S>
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make()).run(k)
}

/// Panic-free convenience entry point: builds two fresh summaries via
/// `make` and runs [`Adversary::try_run`] at depth `k` with an
/// unlimited budget. Pair with [`AdversaryOutcome::verdict`] /
/// [`AdversaryError::verdict`] for the full five-way taxonomy.
pub fn try_run_adversary<S, F>(
    eps: Eps,
    k: u32,
    mut make: F,
) -> Result<AdversaryOutcome<S>, AdversaryError>
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make()).try_run(k)
}

/// [`try_run_adversary`] with an explicit stream representation.
/// `StreamRepr::Implicit` keeps both order indexes interval-compressed
/// (memory sublinear in N for summaries that store o(N) items), which
/// is what lets the sweep drive N = 10⁸–10⁹ cells; `Materialized` is
/// byte-for-byte the classic treap path.
pub fn try_run_adversary_repr<S, F>(
    eps: Eps,
    k: u32,
    repr: StreamRepr,
    mut make: F,
) -> Result<AdversaryOutcome<S>, AdversaryError>
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    Adversary::new(eps, make(), make())
        .with_stream_repr(repr)
        .try_run(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};

    #[test]
    fn stream_lengths_and_tree_shape() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert_eq!(out.pi.len(), eps.stream_len(4)); // 64
        assert_eq!(out.rho.len(), eps.stream_len(4));
        // Full binary tree with 2^{k−1} leaves has 2^k − 1 nodes.
        assert_eq!(out.audits.len(), (1 << 4) - 1);
        assert_eq!(out.root().unwrap().level, 4);
    }

    #[test]
    fn try_run_matches_legacy_run_for_conforming_summaries() {
        let eps = Eps::from_inverse(8);
        let legacy = run_adversary(eps, 4, ExactSummary::new);
        let out = try_run_adversary(eps, 4, ExactSummary::new).unwrap();
        assert_eq!(out.audits, legacy.audits);
        assert_eq!(out.report(), legacy.report());
        assert_eq!(out.verdict(), RunVerdict::Completed);
        let probe = out.rank_probe.unwrap();
        assert_eq!(probe.max_rank_error, 0, "exact summary answers exactly");
    }

    #[test]
    fn try_run_flags_incorrect_summaries_without_erroring() {
        let eps = Eps::from_inverse(8);
        let out = try_run_adversary(eps, 5, || DecimatedSummary::new(3)).unwrap();
        assert_eq!(out.verdict(), RunVerdict::SummaryIncorrect);
    }

    #[test]
    fn try_run_rejects_zero_depth() {
        let eps = Eps::from_inverse(8);
        let err = try_run_adversary(eps, 0, ExactSummary::new).unwrap_err();
        assert!(matches!(err, AdversaryError::InvalidConfig { .. }));
    }

    #[test]
    fn depth_budget_stops_the_run_before_it_starts() {
        let eps = Eps::from_inverse(8);
        let budget = AdversaryBudget {
            max_depth: Some(3),
            ..AdversaryBudget::default()
        };
        let err = Adversary::new(eps, ExactSummary::<Item>::new(), ExactSummary::new())
            .with_budget(budget)
            .try_run(4)
            .unwrap_err();
        assert_eq!(err.verdict(), RunVerdict::BudgetExhausted);
        assert_eq!(err.partial().unwrap().items_fed, 0);
    }

    #[test]
    fn step_budget_preserves_the_audit_prefix() {
        let eps = Eps::from_inverse(8);
        // Enough for half the stream: the left subtree at depth k−1
        // completes, then the next leaf trips the budget.
        let n = eps.stream_len(4);
        let budget = AdversaryBudget {
            max_steps: Some(n / 2),
            ..AdversaryBudget::default()
        };
        let err = Adversary::new(eps, ExactSummary::<Item>::new(), ExactSummary::new())
            .with_budget(budget)
            .try_run(4)
            .unwrap_err();
        let full = run_adversary(eps, 4, ExactSummary::new);
        let partial = err.partial().unwrap();
        assert_eq!(partial.items_fed, n / 2);
        assert!(!partial.audits.is_empty());
        assert_eq!(
            partial.audits.as_slice(),
            &full.audits[..partial.audits.len()],
            "budget abort must preserve the audit prefix verbatim"
        );
        assert_eq!(partial.lemma52_violations(), 0);
    }

    #[test]
    fn empty_outcome_has_no_root_and_reports_gracefully() {
        let eps = Eps::from_inverse(8);
        let out = AdversaryOutcome {
            pi: StreamState::new(MaxSpaceTracker::new(ExactSummary::<Item>::new())),
            rho: StreamState::new(MaxSpaceTracker::new(ExactSummary::new())),
            eps,
            k: 1,
            audits: Vec::new(),
            equivalence_error: None,
            rank_probe: None,
        };
        assert!(out.root().is_none());
        assert_eq!(out.final_gap(), 0);
        let rep = out.report();
        assert_eq!(rep.final_gap, 0);
        assert_eq!(rep.claim1_violations, 0);
    }

    #[test]
    fn exact_summary_keeps_gap_minimal_and_all_checks_pass() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert!(
            out.equivalence_error.is_none(),
            "{:?}",
            out.equivalence_error
        );
        assert_eq!(out.final_gap(), 1, "exact summary leaves no uncertainty");
        let rep = out.report();
        assert_eq!(rep.claim1_violations, 0);
        assert_eq!(rep.lemma52_violations, 0);
        assert!(out.gap_within_correctness_ceiling());
    }

    #[test]
    fn decimated_summary_exceeds_gap_ceiling() {
        let eps = Eps::from_inverse(8);
        // Budget far below ⌈1/(2ε)⌉·(k+1): the gap must blow past 2εN.
        let out = run_adversary(eps, 5, || DecimatedSummary::new(3));
        assert!(
            out.equivalence_error.is_none(),
            "{:?}",
            out.equivalence_error
        );
        assert!(
            !out.gap_within_correctness_ceiling(),
            "gap {} should exceed ceiling {}",
            out.final_gap(),
            eps.gap_bound(eps.stream_len(5))
        );
    }

    #[test]
    fn space_gap_inequality_audited_everywhere_for_reference_summaries() {
        let eps = Eps::from_inverse(8);
        for budget in [3usize, 6, 12, 24] {
            let out = run_adversary(eps, 4, || DecimatedSummary::new(budget));
            let rep = out.report();
            // Lemma 5.2 holds for ANY comparison-based summary whose |I|
            // never decreases; DecimatedSummary's |I| is monotone up to
            // the budget, so no violations are expected.
            assert_eq!(
                rep.lemma52_violations, 0,
                "budget {budget}: space-gap inequality violated"
            );
            assert_eq!(
                rep.claim1_violations, 0,
                "budget {budget}: Claim 1 violated"
            );
        }
    }

    #[test]
    fn max_stored_dominates_theorem_bound_for_correct_summary() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 5, ExactSummary::new);
        let rep = out.report();
        // The exact summary is correct, so Theorem 2.2 applies; it
        // stores everything, so the bound is satisfied with huge slack.
        assert!(rep.max_stored as f64 >= rep.theorem22_bound);
    }

    #[test]
    fn label_depth_tracks_the_refinement_chain() {
        // The continuity assumption's cost: every refinement along the
        // in-order chain can deepen labels by O(1) bytes. With the
        // store-everything summary every gap ties at 1, the argmax never
        // moves, and the chain nests at every internal node — depth
        // doubles per level (Θ(2^k) = Θ(εN) bytes), the worst case the
        // paper's "make the strings even longer" remark licences.
        let eps = Eps::from_inverse(16);
        let d5 = run_adversary(eps, 5, ExactSummary::new)
            .report()
            .max_label_depth;
        let d8 = run_adversary(eps, 8, ExactSummary::new)
            .report()
            .max_label_depth;
        assert!(d5 >= 1 && d8 >= d5);
        // Geometric growth, but bounded by the refinement count: one
        // byte-ish per node of the recursion tree.
        assert!(
            d8 <= (1 << 8) + 64,
            "depth {d8} beyond the refinement-chain bound"
        );
        assert!(
            d8 <= 16 * d5,
            "depth growth wildly superlinear: {d5} -> {d8}"
        );
    }

    #[test]
    fn audits_are_post_order_with_root_last() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 3, ExactSummary::new);
        let levels: Vec<u32> = out.audits.iter().map(|a| a.level).collect();
        assert_eq!(levels, vec![1, 1, 2, 1, 1, 2, 3]);
    }

    #[test]
    fn absurd_configurations_become_typed_overflow_errors() {
        // 2^20 · 2^50 and the k ≥ 64 shift both blow past u64: the
        // panic-free driver must refuse up front, not unwind later.
        let eps = Eps::from_inverse(1 << 20);
        for k in [50u32, 64, u32::MAX] {
            let err = try_run_adversary(eps, k, ExactSummary::new).unwrap_err();
            assert!(
                matches!(err, AdversaryError::ConfigOverflow { .. }),
                "k = {k}: expected ConfigOverflow, got {err}"
            );
            assert_eq!(err.verdict(), RunVerdict::BudgetExhausted);
            assert!(err.partial().is_none(), "no stream was ever fed");
        }
        // The largest representable configuration still launches.
        assert!(try_run_adversary(Eps::from_inverse(4), 4, ExactSummary::new).is_ok());
    }

    #[test]
    fn implicit_streams_reproduce_the_materialized_report() {
        // The tentpole honesty check at unit scale: the
        // interval-compressed representation must be observationally
        // identical to the treap — same audits, same report, same
        // verdict — because the summary sees the very same items in the
        // very same order and every rank/tag query resolves through
        // Definition 3.2-equivalent answers.
        for (inv, k) in [(4u64, 3u32), (8, 4), (16, 5)] {
            let eps = Eps::from_inverse(inv);
            let classic = try_run_adversary(eps, k, ExactSummary::new).unwrap();
            let implicit =
                try_run_adversary_repr(eps, k, StreamRepr::Implicit, ExactSummary::new).unwrap();
            assert_eq!(implicit.audits, classic.audits, "1/eps = {inv}, k = {k}");
            assert_eq!(implicit.report(), classic.report());
            assert_eq!(implicit.verdict(), classic.verdict());
            assert_eq!(implicit.rank_probe, classic.rank_probe);
        }
    }

    #[test]
    fn implicit_streams_flag_incorrect_summaries_too() {
        let eps = Eps::from_inverse(8);
        let classic = try_run_adversary(eps, 5, || DecimatedSummary::new(3)).unwrap();
        let implicit =
            try_run_adversary_repr(eps, 5, StreamRepr::Implicit, || DecimatedSummary::new(3))
                .unwrap();
        assert_eq!(implicit.verdict(), RunVerdict::SummaryIncorrect);
        assert_eq!(implicit.report(), classic.report());
    }

    #[test]
    fn implicit_rejects_per_item_insertion() {
        let eps = Eps::from_inverse(8);
        let err = Adversary::new(eps, ExactSummary::new(), ExactSummary::new())
            .with_stream_repr(StreamRepr::Implicit)
            .with_insert_mode(InsertMode::PerItem)
            .try_run(3)
            .unwrap_err();
        assert!(
            matches!(err, AdversaryError::InvalidConfig { .. }),
            "expected InvalidConfig, got {err}"
        );
    }
}
