//! Theorem 6.5 — the Ω((1/ε)·log² εN) lower bound for biased quantiles.
//!
//! Biased (relative-error) quantile summaries must answer a ϕ-quantile
//! query with an item of rank (1±ε)·ϕN. The paper's k-phase construction
//! runs `AdvStrategy(i, …)` for i = 1..k, each phase drawing its
//! N_i = (1/ε)·2^i items from above everything seen before. Because all
//! later items are larger, the relative-error guarantee for phase-i ranks
//! stays Θ(εN_i) forever, so a correct summary retains Ω((1/ε)·i) items
//! *from each phase* — Ω((1/ε)·k²) in total.
//!
//! This module executes the phases against a live summary and audits the
//! per-phase retention at the end of the stream.

use cqs_universe::{Endpoint, Interval, Item};

use crate::adversary::Adversary;
use crate::eps::Eps;
use crate::model::ComparisonSummary;
use crate::spacegap::theorem22_bound;

/// Retention audit for one phase.
#[derive(Clone, Debug)]
pub struct PhaseAudit {
    /// Phase number i (1-based).
    pub phase: u32,
    /// Items appended in this phase, N_i = (1/ε)·2^i.
    pub n_i: u64,
    /// Arrival-position range [start, end) of the phase's items.
    pub start: u64,
    /// Exclusive end of the arrival range.
    pub end: u64,
    /// Gap within the phase's region at the end of the phase.
    pub gap_at_phase_end: u64,
    /// Items from this phase still stored when the phase ended.
    pub stored_at_phase_end: usize,
    /// Items from this phase still stored at the end of the stream.
    pub stored_at_stream_end: usize,
    /// The per-phase space bound c·(i+1)/(4ε) the theorem forces on a
    /// correct biased summary.
    pub bound: f64,
}

/// Full report of the biased-quantiles construction.
#[derive(Clone, Debug)]
pub struct BiasedReport {
    /// ε of the run.
    pub eps: Eps,
    /// Number of phases k.
    pub phases: u32,
    /// Total stream length Σ N_i = (1/ε)·(2^{k+1} − 2).
    pub total_len: u64,
    /// Per-phase audits.
    pub phase_audits: Vec<PhaseAudit>,
    /// Total items stored at the end.
    pub stored_final: usize,
    /// Running-max items stored.
    pub max_stored: usize,
    /// Σ_i bound_i — the Ω((1/ε)·k²) total a correct biased summary
    /// must meet.
    pub total_bound: f64,
    /// Whether indistinguishability held throughout.
    pub equivalence_ok: bool,
}

/// Runs the k-phase biased-quantiles construction against two fresh
/// copies of a summary.
pub fn run_biased_phases<S, F>(eps: Eps, k: u32, mut make: F) -> BiasedReport
where
    S: ComparisonSummary<Item>,
    F: FnMut() -> S,
{
    let mut adv = Adversary::new(eps, make(), make());
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    let mut phase_end_stats: Vec<(u64, usize)> = Vec::new();

    for i in 1..=k {
        let iv_pi = phase_interval(adv.pi().max());
        let iv_rho = phase_interval(adv.rho().max());
        let start = adv.pi().len();
        let gap = adv.extend(i, &iv_pi, &iv_rho);
        let end = adv.pi().len();
        ranges.push((start, end));
        let stored_now = stored_from_range(adv.pi(), start, end);
        phase_end_stats.push((gap.gap, stored_now));
    }

    let total_len = adv.pi().len();
    let stored_final = adv.pi().summary.stored_count();
    let max_stored = adv.pi().summary.max_stored();
    let equivalence_ok = adv.equivalence_error().is_none();

    let mut phase_audits = Vec::with_capacity(k as usize);
    for (idx, &(start, end)) in ranges.iter().enumerate() {
        let i = idx as u32 + 1;
        let (gap_at_phase_end, stored_at_phase_end) = phase_end_stats[idx];
        phase_audits.push(PhaseAudit {
            phase: i,
            n_i: eps.stream_len(i),
            start,
            end,
            gap_at_phase_end,
            stored_at_phase_end,
            stored_at_stream_end: stored_from_range(adv.pi(), start, end),
            bound: theorem22_bound(eps, i),
        });
    }
    let total_bound = phase_audits.iter().map(|p| p.bound).sum();

    BiasedReport {
        eps,
        phases: k,
        total_len,
        phase_audits,
        stored_final,
        max_stored,
        total_bound,
        equivalence_ok,
    }
}

fn phase_interval(max: Option<Item>) -> Interval {
    match max {
        None => Interval::whole(),
        Some(m) => Interval::new(Endpoint::Finite(m), Endpoint::PosInf),
    }
}

fn stored_from_range<S: ComparisonSummary<Item>>(
    st: &crate::state::StreamState<S>,
    start: u64,
    end: u64,
) -> usize {
    st.summary
        .item_array()
        .iter()
        .filter(|it| {
            st.arrival_of(it)
                .map(|p| p >= start && p < end)
                .unwrap_or(false)
        })
        .count()
}

/// The relative-error rank budget for a query at rank `r`: ⌊ε·r⌋.
/// (Biased quantiles replace the uniform εN with ε·ϕN.)
pub fn biased_budget(eps: Eps, r: u64) -> u64 {
    r / eps.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ExactSummary;

    #[test]
    fn phase_lengths_follow_geometric_schedule() {
        let eps = Eps::from_inverse(4);
        let rep = run_biased_phases(eps, 4, ExactSummary::new);
        assert_eq!(rep.phase_audits.len(), 4);
        for (i, p) in rep.phase_audits.iter().enumerate() {
            assert_eq!(p.n_i, eps.stream_len(i as u32 + 1));
            assert_eq!(p.end - p.start, p.n_i);
        }
        // Σ N_i = (1/ε)(2^{k+1} − 2) = 4·30 = 120.
        assert_eq!(rep.total_len, 120);
    }

    #[test]
    fn phases_are_order_disjoint_and_increasing() {
        let eps = Eps::from_inverse(4);
        let rep = run_biased_phases(eps, 3, ExactSummary::new);
        for w in rep.phase_audits.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(rep.equivalence_ok);
    }

    #[test]
    fn exact_summary_retains_every_phase_fully() {
        let eps = Eps::from_inverse(4);
        let rep = run_biased_phases(eps, 3, ExactSummary::new);
        for p in &rep.phase_audits {
            assert_eq!(p.stored_at_stream_end as u64, p.n_i);
            assert_eq!(p.gap_at_phase_end, 1);
        }
        assert_eq!(rep.stored_final as u64, rep.total_len);
    }

    #[test]
    fn total_bound_is_quadratic_in_k() {
        let eps = Eps::from_inverse(64);
        let r4 = run_biased_phases(eps, 4, ExactSummary::new).total_bound;
        let r8 = run_biased_phases(eps, 8, ExactSummary::new).total_bound;
        // Σ_{i≤k}(i+2) = k(k+5)/2: k=4 → 18, k=8 → 52.
        assert!((r8 / r4 - 52.0 / 18.0).abs() < 1e-9);
    }

    #[test]
    fn biased_budget_is_relative() {
        let eps = Eps::from_inverse(100);
        assert_eq!(biased_budget(eps, 50), 0);
        assert_eq!(biased_budget(eps, 100), 1);
        assert_eq!(biased_budget(eps, 100_000), 1000);
    }
}
