//! Theorem 6.2 — the Estimating Rank lower bound.
//!
//! A comparison-based data structure answering rank queries
//! (#stream items ≤ q, within ±εN) is subject to the same construction:
//! if the final gap exceeds 2εN + 2, draw fresh query items just above
//! the low gap extreme on π and just below the high gap extreme on ϱ.
//! Both copies see comparison-identical queries, so they return the same
//! estimate — but the true ranks differ by more than 2εN, so one answer
//! is off by more than εN.

use cqs_universe::{between_labels, Endpoint, Interval, Item};

use crate::adversary::AdversaryOutcome;
use crate::gap::compute_gap;
use crate::model::{ComparisonSummary, MaxSpaceTracker, RankEstimator};

/// A concrete rank query pair on which the estimator errs.
#[derive(Clone, Debug)]
pub struct RankWitness {
    /// The gap that made the witness possible.
    pub gap: u64,
    /// The threshold 2εN + 2.
    pub threshold: u64,
    /// Estimate returned for q_π on the π-copy.
    pub est_pi: u64,
    /// Estimate returned for q_ϱ on the ϱ-copy.
    pub est_rho: u64,
    /// True rank of q_π w.r.t. π.
    pub true_pi: u64,
    /// True rank of q_ϱ w.r.t. ϱ.
    pub true_rho: u64,
    /// Whether the two copies returned the same estimate (they must, for
    /// a conforming comparison-based estimator).
    pub estimates_agree: bool,
    /// Permitted budget ⌊εN⌋.
    pub budget: u64,
}

impl RankWitness {
    /// Whether at least one of the two answers exceeds the budget.
    pub fn demonstrates_failure(&self) -> bool {
        self.est_pi.abs_diff(self.true_pi) > self.budget
            || self.est_rho.abs_diff(self.true_rho) > self.budget
    }
}

/// Extracts a failing rank query from a finished adversary run, or
/// `None` when the gap stayed within 2εN + 2 (then the space bound
/// applies).
///
/// The summary must implement both traits: it was attacked through its
/// quantile interface and is now probed through its rank interface.
pub fn rank_failure_witness<S>(outcome: &AdversaryOutcome<S>) -> Option<RankWitness>
where
    S: ComparisonSummary<Item> + RankEstimator<Item>,
{
    let eps = outcome.eps;
    // A finished outcome implies `try_run` already validated N_k, so
    // the fallback is unreachable; it keeps this entry point unwind-free.
    let n = eps.try_stream_len(outcome.k).unwrap_or(u64::MAX);
    let threshold = eps.gap_bound(n) + 2;
    let whole = Interval::whole();
    let gap = compute_gap(&outcome.pi, &outcome.rho, &whole, &whole);
    if gap.gap <= threshold {
        return None;
    }

    // q_π ∈ (I_π[i], next(π, I_π[i])): strictly between the low extreme
    // and its stream successor, so its true rank is rank_π(I_π[i]).
    let q_pi = fresh_above(&outcome.pi, &gap.pi_low)?;
    // q_ϱ ∈ (prev(ϱ, I_ϱ[i+1]), I_ϱ[i+1]).
    let q_rho = fresh_below(&outcome.rho, &gap.rho_high)?;

    // True ranks: # items ≤ q (q itself never occurred in the stream).
    let true_pi = outcome.pi.rank(&q_pi) - 1;
    let true_rho = outcome.rho.rank(&q_rho) - 1;
    debug_assert!(true_rho - true_pi >= gap.gap - 2);

    let est_pi = outcome.pi.summary.inner().estimate_rank(&q_pi);
    let est_rho = outcome.rho.summary.inner().estimate_rank(&q_rho);

    Some(RankWitness {
        gap: gap.gap,
        threshold,
        est_pi,
        est_rho,
        true_pi,
        true_rho,
        estimates_agree: est_pi == est_rho,
        budget: eps.rank_budget(n),
    })
}

/// Mints a fresh item strictly between `low` and its successor in the
/// stream (or below the stream minimum when `low` is −∞). `None` on the
/// degenerate inputs no gap computation produces (an empty stream, or a
/// +∞ low extreme) — reachable only from driver paths, so it must not
/// panic.
fn fresh_above<S: ComparisonSummary<Item>>(
    st: &crate::state::StreamState<MaxSpaceTracker<S>>,
    low: &Endpoint,
) -> Option<Item> {
    match low {
        Endpoint::NegInf => {
            let min = st.min()?;
            Some(Item::from_label(between_labels(None, Some(min.label()))))
        }
        Endpoint::Finite(a) => {
            let hi = st.next(a);
            Some(Item::from_label(between_labels(
                Some(a.label()),
                hi.as_ref().map(|h| h.label()),
            )))
        }
        Endpoint::PosInf => None,
    }
}

/// Mints a fresh item strictly between the stream predecessor of `high`
/// and `high` (or above the stream maximum when `high` is +∞). `None`
/// on an empty stream or a −∞ high extreme, mirroring [`fresh_above`].
fn fresh_below<S: ComparisonSummary<Item>>(
    st: &crate::state::StreamState<MaxSpaceTracker<S>>,
    high: &Endpoint,
) -> Option<Item> {
    match high {
        Endpoint::PosInf => {
            let max = st.max()?;
            Some(Item::from_label(between_labels(Some(max.label()), None)))
        }
        Endpoint::Finite(b) => {
            let lo = st.prev(b);
            Some(Item::from_label(between_labels(
                lo.as_ref().map(|l| l.label()),
                Some(b.label()),
            )))
        }
        Endpoint::NegInf => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::run_adversary;
    use crate::eps::Eps;
    use crate::reference::ExactSummary;

    // ExactSummary answers ranks exactly; give it a RankEstimator view.
    impl<T: Ord + Clone> RankEstimator<T> for ExactSummary<T> {
        fn estimate_rank(&self, q: &T) -> u64 {
            self.true_rank(q)
        }
    }

    #[test]
    fn exact_estimator_yields_no_witness() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert!(rank_failure_witness(&out).is_none());
    }

    #[test]
    fn fresh_query_items_sit_in_empty_stream_regions() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        let min = out.pi.min().unwrap();
        let q = fresh_above(&out.pi, &Endpoint::NegInf).unwrap();
        assert!(q < min);
        let max = out.pi.max().unwrap();
        let q2 = fresh_below(&out.pi, &Endpoint::PosInf).unwrap();
        assert!(q2 > max);
        assert!(fresh_above(&out.pi, &Endpoint::PosInf).is_none());
        assert!(fresh_below(&out.pi, &Endpoint::NegInf).is_none());
    }
}
