//! The offline baseline from Section 1: with random access to the whole
//! data set, ⌈1/(2ε)⌉ stored items are sufficient — and necessary.
//!
//! Sufficiency: store the ε-, 3ε-, 5ε-, … quantiles; every target rank is
//! within εN of a stored one. Necessity: any summary answering from a set
//! of stored items must cover \[0,1\] with intervals of width 2ε around the
//! stored quantiles, so fewer than ⌈1/(2ε)⌉ items leave a hole.

use crate::eps::Eps;

/// The offline ε-approximate summary over a fully-known data set.
#[derive(Clone, Debug)]
pub struct OfflineSummary<T> {
    items: Vec<T>,
    ranks: Vec<u64>,
    n: u64,
    eps: Eps,
}

impl<T: Ord + Clone> OfflineSummary<T> {
    /// Builds from sorted data: selects the items of rank
    /// (2j−1)·εN for j = 1..⌈1/(2ε)⌉ (clamped to [1, N]).
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty or not sorted.
    pub fn build(sorted: &[T], eps: Eps) -> Self {
        assert!(!sorted.is_empty(), "offline summary needs data");
        assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        let n = sorted.len() as u64;
        let count = eps.inverse().div_ceil(2); // ⌈1/(2ε)⌉
        let mut items = Vec::with_capacity(count as usize);
        let mut ranks = Vec::with_capacity(count as usize);
        for j in 1..=count {
            // rank (2j−1)·εN, rounded to nearest so the ⌊εN⌋ error
            // budget is met on both sides of every stored rank.
            let r = (((2 * j - 1) * n + eps.inverse() / 2) / eps.inverse()).clamp(1, n);
            if ranks.last() == Some(&r) {
                continue; // tiny n can collapse adjacent picks
            }
            items.push(sorted[(r - 1) as usize].clone());
            ranks.push(r);
        }
        OfflineSummary {
            items,
            ranks,
            n,
            eps,
        }
    }

    /// Number of stored items — at most ⌈1/(2ε)⌉.
    pub fn stored_count(&self) -> usize {
        self.items.len()
    }

    /// Answers a rank query with the stored item of nearest selected
    /// rank.
    pub fn query_rank(&self, r: u64) -> &T {
        let r = r.clamp(1, self.n);
        let idx = match self.ranks.binary_search(&r) {
            Ok(i) => i,
            Err(i) => {
                // Nearest of ranks[i−1], ranks[i].
                if i == 0 {
                    0
                } else if i == self.ranks.len() {
                    i - 1
                } else if self.ranks[i] - r <= r - self.ranks[i - 1] {
                    i
                } else {
                    i - 1
                }
            }
        };
        &self.items[idx]
    }

    /// The stored rank actually returned for target `r` — used to verify
    /// the εN guarantee.
    pub fn answered_rank(&self, r: u64) -> u64 {
        let r = r.clamp(1, self.n);
        let item_idx = {
            let q = self.query_rank(r);
            self.items.iter().position(|x| x == q).expect("stored")
        };
        self.ranks[item_idx]
    }

    /// The worst-case rank error over all targets 1..=N.
    pub fn max_rank_error(&self) -> u64 {
        (1..=self.n)
            .map(|r| self.answered_rank(r).abs_diff(r))
            .max()
            .unwrap_or(0)
    }

    /// The ε this summary was built for.
    pub fn eps(&self) -> Eps {
        self.eps
    }
}

/// The Section-1 necessity argument, executable: given the sorted ranks a
/// summary can answer with (as fractions of N), returns a quantile ϕ that
/// is more than ε away from all of them, if one exists. Any summary
/// storing fewer than ⌈1/(2ε)⌉ items always leaves such a hole.
pub fn uncovered_quantile(stored_ranks: &[u64], n: u64, eps: Eps) -> Option<f64> {
    let budget = n as f64 / eps.inverse() as f64; // εN
    let mut prev = 0.0f64;
    for &r in stored_ranks {
        let r = r as f64;
        if r - prev > 2.0 * budget {
            return Some(((prev + r) / 2.0) / n as f64);
        }
        prev = r;
    }
    if n as f64 - prev > budget {
        return Some(((prev + n as f64) / 2.0 + budget / 2.0).min(n as f64) / n as f64);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64) -> Vec<u64> {
        (1..=n).collect()
    }

    #[test]
    fn stores_at_most_half_inverse_eps() {
        let eps = Eps::from_inverse(20);
        let s = OfflineSummary::build(&data(1000), eps);
        assert!(s.stored_count() <= 10);
        assert!(s.stored_count() >= 9);
    }

    #[test]
    fn every_rank_is_answered_within_budget() {
        let eps = Eps::from_inverse(20);
        let s = OfflineSummary::build(&data(1000), eps);
        assert!(
            s.max_rank_error() <= 1000 / 20,
            "error {} exceeds eps*N",
            s.max_rank_error()
        );
    }

    #[test]
    fn small_n_does_not_panic_or_duplicate() {
        let eps = Eps::from_inverse(100);
        let s = OfflineSummary::build(&data(10), eps);
        assert!(s.stored_count() <= 10);
        assert!(s.max_rank_error() <= 10);
    }

    #[test]
    fn too_few_stored_ranks_leave_a_hole() {
        let eps = Eps::from_inverse(20);
        let n = 1000;
        // Only 5 stored ranks where ~10 are needed: a hole must exist.
        let ranks: Vec<u64> = (1..=5).map(|j| j * n / 5).collect();
        let hole = uncovered_quantile(&ranks, n, eps);
        assert!(hole.is_some());
        let phi = hole.unwrap();
        let t = phi * n as f64;
        for &r in &ranks {
            assert!(
                (r as f64 - t).abs() > n as f64 / 20.0,
                "rank {r} covers the supposed hole at {t}"
            );
        }
    }

    #[test]
    fn full_offline_summary_leaves_no_hole() {
        let eps = Eps::from_inverse(20);
        let n = 1000;
        let s = OfflineSummary::build(&data(n), eps);
        assert!(uncovered_quantile(&s.ranks, n, eps).is_none());
    }
}
