//! Reference summaries used as ground truth and as test instruments.
//!
//! [`ExactSummary`] stores the entire stream — the trivially correct
//! (and trivially space-hungry) end of the trade-off. [`DecimatedSummary`]
//! keeps only every j-th item by rank — a deliberately *incorrect*
//! comparison-based summary used to exercise the failure-witness
//! machinery of Lemma 3.4.

use crate::model::ComparisonSummary;

/// A summary that stores every item. Exactly correct for all queries.
///
/// Insertion is O(n) (sorted `Vec`); it exists for ground truth and for
/// small-scale adversary tests, not for production use.
#[derive(Clone, Debug, Default)]
pub struct ExactSummary<T> {
    items: Vec<T>,
    n: u64,
}

impl<T: Ord + Clone> ExactSummary<T> {
    /// An empty exact summary.
    pub fn new() -> Self {
        ExactSummary {
            items: Vec::new(),
            n: 0,
        }
    }

    /// True rank of `q` (count of items `<= q`).
    pub fn true_rank(&self, q: &T) -> u64 {
        self.items.partition_point(|x| x <= q) as u64
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for ExactSummary<T> {
    fn insert(&mut self, item: T) {
        let pos = self.items.partition_point(|x| *x <= item);
        self.items.insert(pos, item);
        self.n += 1;
    }

    fn item_array(&self) -> Vec<T> {
        self.items.clone()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        for item in &self.items {
            f(item);
        }
    }

    fn stored_count(&self) -> usize {
        self.items.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let idx = (r.clamp(1, self.n) - 1) as usize;
        Some(self.items[idx].clone())
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// A deliberately lossy comparison-based summary: after every insert it
/// thins the stored set down to at most `budget` items, keeping the
/// extremes and an evenly spaced selection in between.
///
/// With a budget below ⌈1/(2ε)⌉ it *cannot* be ε-approximate, so the
/// adversary's gap grows past 2εN and Lemma 3.4 yields a concrete failing
/// query — which is exactly what this type is for.
#[derive(Clone, Debug)]
pub struct DecimatedSummary<T> {
    items: Vec<T>,
    n: u64,
    budget: usize,
}

impl<T: Ord + Clone> DecimatedSummary<T> {
    /// A summary that never stores more than `budget >= 2` items.
    pub fn new(budget: usize) -> Self {
        assert!(budget >= 2, "need room for min and max");
        DecimatedSummary {
            items: Vec::new(),
            n: 0,
            budget,
        }
    }

    fn thin(&mut self) {
        if self.items.len() <= self.budget {
            return;
        }
        let m = self.items.len();
        let keep = self.budget;
        let mut kept = Vec::with_capacity(keep);
        // Evenly spaced positions including both extremes. Positions are
        // pure index arithmetic — no item-value inspection — so this
        // remains comparison-based.
        for i in 0..keep {
            let pos = i * (m - 1) / (keep - 1);
            kept.push(self.items[pos].clone());
        }
        kept.dedup_by(|a, b| a == b);
        self.items = kept;
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for DecimatedSummary<T> {
    fn insert(&mut self, item: T) {
        let pos = self.items.partition_point(|x| *x <= item);
        self.items.insert(pos, item);
        self.n += 1;
        self.thin();
    }

    fn item_array(&self) -> Vec<T> {
        self.items.clone()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        for item in &self.items {
            f(item);
        }
    }

    fn stored_count(&self) -> usize {
        self.items.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        // Best effort: pretend stored items are evenly spaced.
        let frac = (r.clamp(1, self.n) - 1) as f64 / (self.n.max(1) - 1).max(1) as f64;
        let idx = (frac * (self.items.len() - 1) as f64).round() as usize;
        Some(self.items[idx].clone())
    }

    fn name(&self) -> &'static str {
        "decimated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_summary_answers_exactly() {
        let mut s = ExactSummary::new();
        for x in [30u32, 10, 20, 50, 40] {
            s.insert(x);
        }
        assert_eq!(s.query_rank(1), Some(10));
        assert_eq!(s.query_rank(3), Some(30));
        assert_eq!(s.query_rank(5), Some(50));
        assert_eq!(s.true_rank(&25), 2);
        assert_eq!(s.stored_count(), 5);
    }

    #[test]
    fn exact_summary_item_array_sorted() {
        let mut s = ExactSummary::new();
        for x in [5u32, 1, 4, 2, 3] {
            s.insert(x);
        }
        assert_eq!(s.item_array(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn decimated_respects_budget_and_extremes() {
        let mut s = DecimatedSummary::new(5);
        for x in 0..1000u32 {
            s.insert(x);
        }
        assert!(s.stored_count() <= 5);
        let arr = s.item_array();
        assert_eq!(arr.first(), Some(&0));
        assert_eq!(arr.last(), Some(&999));
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn decimated_counts_stream_length() {
        let mut s = DecimatedSummary::new(3);
        for x in 0..57u32 {
            s.insert(x);
        }
        assert_eq!(s.items_processed(), 57);
    }
}
