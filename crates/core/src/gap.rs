//! The largest-gap quantities of Definitions 3.3 and 5.1.
//!
//! For indistinguishable streams π and ϱ and a pair of current intervals,
//! the *largest gap* is the maximum, over consecutive positions of the
//! restricted item arrays, of
//!
//! ```text
//!   rank_ϱ̄(I'_ϱ[i+1]) − rank_π̄(I'_π[i])
//! ```
//!
//! where ranks are taken within the restricted substreams (boundary items
//! included, per Definition 5.1). A correct ε-approximate summary must
//! keep the top-level gap at most 2εN (Lemma 3.4); the adversary's whole
//! purpose is to grow it as fast as the summary's space allows.

use cqs_universe::{Endpoint, Interval, Item};

use crate::model::ComparisonSummary;
use crate::state::StreamState;

/// Where and how large the largest gap is.
#[derive(Clone, Debug)]
pub struct GapInfo {
    /// The largest gap value (paper's `g`), always ≥ 1.
    pub gap: u64,
    /// Index `i` of the gap in the restricted arrays (0-based into the
    /// enclosed arrays; the paper's 1-based `i`).
    pub index: usize,
    /// `I'_π[i]` — the low extreme of the gap on the π side.
    pub pi_low: Endpoint,
    /// `I'_ϱ[i+1]` — the high extreme of the gap on the ϱ side.
    pub rho_high: Endpoint,
    /// Size of the restricted item arrays (boundaries included).
    pub restricted_len: usize,
}

/// Computes the largest gap between the two summaries' restricted item
/// arrays in the given intervals (Definition 5.1; with whole-universe
/// intervals this is Definition 3.3's `gap(π, ϱ)` under the
/// construction's rank-ordering guarantee).
///
/// # Panics
///
/// Panics if the restricted arrays differ in length (that would mean the
/// streams are distinguishable — the paper proves they cannot be, so for
/// a conforming summary this indicates a model violation) or have fewer
/// than two entries.
pub fn compute_gap<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
) -> GapInfo {
    compute_gap_tie(pi, rho, iv_pi, iv_rho, TieBreak::LowestIndex)
}

/// How the argmax over equal largest gaps is resolved — the paper notes
/// "ties can be broken arbitrarily", so any policy yields a valid
/// construction; the ablation benches measure whether the choice
/// matters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Keep the first (lowest-index) maximal gap.
    #[default]
    LowestIndex,
    /// Keep the last (highest-index) maximal gap.
    HighestIndex,
}

/// [`compute_gap`] with an explicit tie-breaking policy.
///
/// Allocates one fresh rank scratch; the adversary's hot loop passes a
/// reusable one to [`compute_gap_scratch`] instead.
pub fn compute_gap_tie<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    tie: TieBreak,
) -> GapInfo {
    let mut scratch = GapScratch::default();
    compute_gap_scratch(pi, rho, iv_pi, iv_rho, tie, &mut scratch)
}

/// Reusable buffer for the gap scan: holds the ϱ-side restricted ranks
/// between invocations so the recursion's 2^k − 1 gap computations share
/// one allocation instead of cloning both restricted arrays every time.
#[derive(Default)]
pub struct GapScratch {
    ranks_rho: Vec<u64>,
}

/// Streaming argmax over the π-side restricted entries: visits entry `i`
/// with its restricted rank and clones the entry only when it becomes
/// the current best gap's low extreme.
struct GapScan<'a> {
    ranks_rho: &'a [u64],
    tie: TieBreak,
    i: usize,
    best: u64,
    best_i: usize,
    best_low: Endpoint,
}

impl GapScan<'_> {
    fn visit(&mut self, rank_pi: u64, entry: impl FnOnce() -> Endpoint) {
        let i = self.i;
        // Out-of-range entries only occur for a non-conforming summary
        // whose arrays diverged in size; the caller raises the proper
        // diagnostic after the walk.
        if i < self.ranks_rho.len() {
            // The construction keeps rank_π(I'_π[i]) ≤ rank_ϱ(I'_ϱ[i])
            // (Section 4.6); verify rather than assume.
            debug_assert!(
                rank_pi <= self.ranks_rho[i],
                "rank ordering invariant violated at index {i}: {} > {}",
                rank_pi,
                self.ranks_rho[i]
            );
            if i + 1 < self.ranks_rho.len() {
                // ranks_rho[i+1] ≥ ranks_pi[i] always (both sides sorted
                // and the ordering invariant); checked in debug builds.
                let g = self.ranks_rho[i + 1] - rank_pi;
                let wins = match self.tie {
                    TieBreak::LowestIndex => g > self.best,
                    TieBreak::HighestIndex => g >= self.best && g > 0,
                };
                if wins {
                    self.best = g;
                    self.best_i = i;
                    self.best_low = entry();
                }
            }
        }
        self.i += 1;
    }
}

/// [`compute_gap_tie`] against a caller-owned [`GapScratch`].
///
/// Three passes, none materialising a restricted array: (1) the ϱ-side
/// restricted ranks go into the scratch; (2) the π side streams through
/// [`GapScan`], computing each candidate gap on the fly; (3) the winning
/// index's ϱ-side entry is fetched by a positional re-walk.
pub fn compute_gap_scratch<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    tie: TieBreak,
    scratch: &mut GapScratch,
) -> GapInfo {
    let ranks_rho = &mut scratch.ranks_rho;
    ranks_rho.clear();
    let base_rho = rho.rank_base(iv_rho);
    ranks_rho.push(rho.rank_in(iv_rho, iv_rho.lo()));
    rho.for_each_stored_inside(iv_rho, &mut |it| {
        ranks_rho.push(rho.rank_in_item_from(iv_rho, base_rho, it));
    });
    ranks_rho.push(rho.rank_in(iv_rho, iv_rho.hi()));
    let m = ranks_rho.len();

    let mut scan = GapScan {
        ranks_rho,
        tie,
        i: 0,
        best: 0,
        best_i: 0,
        best_low: iv_pi.lo().clone(),
    };
    let base_pi = pi.rank_base(iv_pi);
    scan.visit(pi.rank_in(iv_pi, iv_pi.lo()), || iv_pi.lo().clone());
    pi.for_each_stored_inside(iv_pi, &mut |it| {
        scan.visit(pi.rank_in_item_from(iv_pi, base_pi, it), || {
            Endpoint::Finite(it.clone())
        });
    });
    scan.visit(pi.rank_in(iv_pi, iv_pi.hi()), || iv_pi.hi().clone());

    assert_eq!(
        scan.i, m,
        "restricted item arrays differ in size — summary is not comparison-based"
    );
    assert!(
        m >= 2,
        "restricted arrays must at least contain the two boundaries"
    );
    let (best, best_i, pi_low) = (scan.best, scan.best_i, scan.best_low);

    // Pass 3: I'_ϱ[best_i + 1]. Index m−1 is the high boundary; interior
    // index j is the (j−1)-th stored item inside the interval.
    let rho_high = if best_i + 1 == m - 1 {
        iv_rho.hi().clone()
    } else {
        let target = best_i; // = (best_i + 1) − 1
        let mut idx = 0usize;
        let mut found: Option<Endpoint> = None;
        rho.for_each_stored_inside(iv_rho, &mut |it| {
            if idx == target && found.is_none() {
                found = Some(Endpoint::Finite(it.clone()));
            }
            idx += 1;
        });
        // `best_i` indexes the same stored-item scan that produced it
        // above; an absent endpoint is a logic bug in this function,
        // not a reachable adversarial input.
        // cqs-lint: allow(driver-no-panic)
        found.expect("interior restricted index in range")
    };

    GapInfo {
        gap: best,
        index: best_i,
        pi_low,
        rho_high,
        restricted_len: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};
    use cqs_universe::generate_increasing;

    fn feed<S: ComparisonSummary<Item>>(summary: S, n: usize) -> StreamState<S> {
        let mut st = StreamState::new(summary);
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn exact_summary_has_unit_gap() {
        let pi = feed(ExactSummary::new(), 32);
        let rho = feed(ExactSummary::new(), 32);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // Every item stored on both sides: consecutive ranks differ by 1.
        assert_eq!(g.gap, 1);
        assert_eq!(g.restricted_len, 34); // 32 items + two sentinels
    }

    #[test]
    fn decimated_summary_has_large_gap() {
        let pi = feed(DecimatedSummary::new(4), 100);
        let rho = feed(DecimatedSummary::new(4), 100);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // 100 items thinned to 4: consecutive stored ranks ~33 apart.
        assert!(g.gap >= 25, "expected a large gap, got {}", g.gap);
    }

    #[test]
    fn gap_is_computed_within_interval_only() {
        let pi = feed(ExactSummary::new(), 16);
        let rho = feed(ExactSummary::new(), 16);
        let items = pi.summary.item_array();
        let iv = Interval::open(items[2].clone(), items[9].clone());
        let g = compute_gap(&pi, &rho, &iv, &iv);
        assert_eq!(g.gap, 1);
        // lo + 6 inside + hi.
        assert_eq!(g.restricted_len, 8);
    }

    #[test]
    fn gap_extremes_identify_the_widest_hole() {
        // π and ϱ identical; manually thin one region by using a small
        // budget, then the argmax straddles the thinned region.
        let pi = feed(DecimatedSummary::new(6), 200);
        let rho = feed(DecimatedSummary::new(6), 200);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // The identified extremes must be endpoints or genuinely stored.
        match (&g.pi_low, &g.rho_high) {
            (Endpoint::PosInf, _) => panic!("gap low extreme cannot be +inf"),
            (_, Endpoint::NegInf) => panic!("gap high extreme cannot be -inf"),
            _ => {}
        }
        assert!(g.index + 1 < g.restricted_len);
    }
}
