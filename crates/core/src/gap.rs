//! The largest-gap quantities of Definitions 3.3 and 5.1.
//!
//! For indistinguishable streams π and ϱ and a pair of current intervals,
//! the *largest gap* is the maximum, over consecutive positions of the
//! restricted item arrays, of
//!
//! ```text
//!   rank_ϱ̄(I'_ϱ[i+1]) − rank_π̄(I'_π[i])
//! ```
//!
//! where ranks are taken within the restricted substreams (boundary items
//! included, per Definition 5.1). A correct ε-approximate summary must
//! keep the top-level gap at most 2εN (Lemma 3.4); the adversary's whole
//! purpose is to grow it as fast as the summary's space allows.

use cqs_universe::{Endpoint, Interval, Item};

use crate::model::ComparisonSummary;
use crate::state::StreamState;

/// Where and how large the largest gap is.
#[derive(Clone, Debug)]
pub struct GapInfo {
    /// The largest gap value (paper's `g`), always ≥ 1.
    pub gap: u64,
    /// Index `i` of the gap in the restricted arrays (0-based into the
    /// enclosed arrays; the paper's 1-based `i`).
    pub index: usize,
    /// `I'_π[i]` — the low extreme of the gap on the π side.
    pub pi_low: Endpoint,
    /// `I'_ϱ[i+1]` — the high extreme of the gap on the ϱ side.
    pub rho_high: Endpoint,
    /// Size of the restricted item arrays (boundaries included).
    pub restricted_len: usize,
}

/// Computes the largest gap between the two summaries' restricted item
/// arrays in the given intervals (Definition 5.1; with whole-universe
/// intervals this is Definition 3.3's `gap(π, ϱ)` under the
/// construction's rank-ordering guarantee).
///
/// # Panics
///
/// Panics if the restricted arrays differ in length (that would mean the
/// streams are distinguishable — the paper proves they cannot be, so for
/// a conforming summary this indicates a model violation) or have fewer
/// than two entries.
pub fn compute_gap<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
) -> GapInfo {
    compute_gap_tie(pi, rho, iv_pi, iv_rho, TieBreak::LowestIndex)
}

/// How the argmax over equal largest gaps is resolved — the paper notes
/// "ties can be broken arbitrarily", so any policy yields a valid
/// construction; the ablation benches measure whether the choice
/// matters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Keep the first (lowest-index) maximal gap.
    #[default]
    LowestIndex,
    /// Keep the last (highest-index) maximal gap.
    HighestIndex,
}

/// [`compute_gap`] with an explicit tie-breaking policy.
///
/// Allocates one fresh rank scratch; the adversary's hot loop passes a
/// reusable one to [`compute_gap_scratch`] instead.
pub fn compute_gap_tie<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    tie: TieBreak,
) -> GapInfo {
    let mut scratch = GapScratch::default();
    compute_gap_scratch(pi, rho, iv_pi, iv_rho, tie, &mut scratch)
}

/// Reusable buffers for the gap scan: both sides' restricted ranks and
/// interior items, plus the batched walk's count scratch, so the
/// recursion's 2^k − 1 gap computations share five allocations instead
/// of cloning both restricted arrays every time.
#[derive(Default)]
pub struct GapScratch {
    ranks_rho: Vec<u64>,
    ranks_pi: Vec<u64>,
    items_rho: Vec<Item>,
    items_pi: Vec<Item>,
    les: Vec<usize>,
}

/// [`compute_gap_tie`] against a caller-owned [`GapScratch`].
///
/// One batched treap walk per side
/// ([`StreamState::restricted_ranks_inside`]) produces the full
/// Definition 5.1 rank sequences; the argmax is then a flat zip over the
/// two rank buffers, and the winning extremes resolve directly from the
/// collected interior items — no positional re-walk.
pub fn compute_gap_scratch<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    tie: TieBreak,
    scratch: &mut GapScratch,
) -> GapInfo {
    let GapScratch {
        ranks_rho,
        ranks_pi,
        items_rho,
        items_pi,
        les,
    } = scratch;
    let rho_off = rho.restricted_ranks_inside(iv_rho, items_rho, les, ranks_rho);
    let pi_off = pi.restricted_ranks_inside(iv_pi, items_pi, les, ranks_pi);

    let m = ranks_rho.len();
    assert_eq!(
        ranks_pi.len(),
        m,
        "restricted item arrays differ in size — summary is not comparison-based"
    );
    assert!(
        m >= 2,
        "restricted arrays must at least contain the two boundaries"
    );
    // The construction keeps rank_π(I'_π[i]) ≤ rank_ϱ(I'_ϱ[i])
    // (Section 4.6); verify rather than assume.
    debug_assert!(
        ranks_pi.iter().zip(ranks_rho.iter()).all(|(p, r)| p <= r),
        "rank ordering invariant violated: rank_pi > rank_rho"
    );

    let mut best = 0u64;
    let mut best_i = 0usize;
    for (i, (rank_pi, rank_rho_next)) in ranks_pi.iter().zip(ranks_rho.iter().skip(1)).enumerate() {
        // ranks_rho[i+1] ≥ ranks_pi[i] always (both sides sorted and the
        // ordering invariant); checked in debug builds above.
        let g = rank_rho_next - rank_pi;
        let wins = match tie {
            TieBreak::LowestIndex => g > best,
            TieBreak::HighestIndex => g >= best && g > 0,
        };
        if wins {
            best = g;
            best_i = i;
        }
    }

    // Map the winning indices back through the restricted array layout
    // `[lo] ++ interior ++ [hi]`: full index 0 is the low boundary,
    // m−1 the high boundary, and interior index j the j-th collected
    // item past that side's returned boundary offset. The argmax range
    // keeps best_i ≤ m−2, so the interior lookups are always in range;
    // the boundary fallbacks are unreachable but keep the function
    // total for the panic-free driver.
    let pi_low = match best_i.checked_sub(1) {
        None => iv_pi.lo().clone(),
        Some(j) => match items_pi.get(j + pi_off) {
            Some(it) => Endpoint::Finite(it.clone()),
            None => iv_pi.hi().clone(),
        },
    };
    let rho_high = if best_i + 1 == m - 1 {
        iv_rho.hi().clone()
    } else {
        match items_rho.get(best_i + rho_off) {
            Some(it) => Endpoint::Finite(it.clone()),
            None => iv_rho.hi().clone(),
        }
    };

    GapInfo {
        gap: best,
        index: best_i,
        pi_low,
        rho_high,
        restricted_len: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};
    use cqs_universe::generate_increasing;

    fn feed<S: ComparisonSummary<Item>>(summary: S, n: usize) -> StreamState<S> {
        let mut st = StreamState::new(summary);
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn exact_summary_has_unit_gap() {
        let pi = feed(ExactSummary::new(), 32);
        let rho = feed(ExactSummary::new(), 32);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // Every item stored on both sides: consecutive ranks differ by 1.
        assert_eq!(g.gap, 1);
        assert_eq!(g.restricted_len, 34); // 32 items + two sentinels
    }

    #[test]
    fn decimated_summary_has_large_gap() {
        let pi = feed(DecimatedSummary::new(4), 100);
        let rho = feed(DecimatedSummary::new(4), 100);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // 100 items thinned to 4: consecutive stored ranks ~33 apart.
        assert!(g.gap >= 25, "expected a large gap, got {}", g.gap);
    }

    #[test]
    fn gap_is_computed_within_interval_only() {
        let pi = feed(ExactSummary::new(), 16);
        let rho = feed(ExactSummary::new(), 16);
        let items = pi.summary.item_array();
        let iv = Interval::open(items[2].clone(), items[9].clone());
        let g = compute_gap(&pi, &rho, &iv, &iv);
        assert_eq!(g.gap, 1);
        // lo + 6 inside + hi.
        assert_eq!(g.restricted_len, 8);
    }

    #[test]
    fn gap_extremes_identify_the_widest_hole() {
        // π and ϱ identical; manually thin one region by using a small
        // budget, then the argmax straddles the thinned region.
        let pi = feed(DecimatedSummary::new(6), 200);
        let rho = feed(DecimatedSummary::new(6), 200);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // The identified extremes must be endpoints or genuinely stored.
        match (&g.pi_low, &g.rho_high) {
            (Endpoint::PosInf, _) => panic!("gap low extreme cannot be +inf"),
            (_, Endpoint::NegInf) => panic!("gap high extreme cannot be -inf"),
            _ => {}
        }
        assert!(g.index + 1 < g.restricted_len);
    }
}
