//! The largest-gap quantities of Definitions 3.3 and 5.1.
//!
//! For indistinguishable streams π and ϱ and a pair of current intervals,
//! the *largest gap* is the maximum, over consecutive positions of the
//! restricted item arrays, of
//!
//! ```text
//!   rank_ϱ̄(I'_ϱ[i+1]) − rank_π̄(I'_π[i])
//! ```
//!
//! where ranks are taken within the restricted substreams (boundary items
//! included, per Definition 5.1). A correct ε-approximate summary must
//! keep the top-level gap at most 2εN (Lemma 3.4); the adversary's whole
//! purpose is to grow it as fast as the summary's space allows.

use cqs_universe::{Endpoint, Interval, Item};

use crate::model::ComparisonSummary;
use crate::state::StreamState;

/// Where and how large the largest gap is.
#[derive(Clone, Debug)]
pub struct GapInfo {
    /// The largest gap value (paper's `g`), always ≥ 1.
    pub gap: u64,
    /// Index `i` of the gap in the restricted arrays (0-based into the
    /// enclosed arrays; the paper's 1-based `i`).
    pub index: usize,
    /// `I'_π[i]` — the low extreme of the gap on the π side.
    pub pi_low: Endpoint,
    /// `I'_ϱ[i+1]` — the high extreme of the gap on the ϱ side.
    pub rho_high: Endpoint,
    /// Size of the restricted item arrays (boundaries included).
    pub restricted_len: usize,
}

/// Computes the largest gap between the two summaries' restricted item
/// arrays in the given intervals (Definition 5.1; with whole-universe
/// intervals this is Definition 3.3's `gap(π, ϱ)` under the
/// construction's rank-ordering guarantee).
///
/// # Panics
///
/// Panics if the restricted arrays differ in length (that would mean the
/// streams are distinguishable — the paper proves they cannot be, so for
/// a conforming summary this indicates a model violation) or have fewer
/// than two entries.
pub fn compute_gap<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
) -> GapInfo {
    compute_gap_tie(pi, rho, iv_pi, iv_rho, TieBreak::LowestIndex)
}

/// How the argmax over equal largest gaps is resolved — the paper notes
/// "ties can be broken arbitrarily", so any policy yields a valid
/// construction; the ablation benches measure whether the choice
/// matters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Keep the first (lowest-index) maximal gap.
    #[default]
    LowestIndex,
    /// Keep the last (highest-index) maximal gap.
    HighestIndex,
}

/// [`compute_gap`] with an explicit tie-breaking policy.
pub fn compute_gap_tie<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    tie: TieBreak,
) -> GapInfo {
    let a_pi = pi.restricted_item_array(iv_pi);
    let a_rho = rho.restricted_item_array(iv_rho);
    assert_eq!(
        a_pi.len(),
        a_rho.len(),
        "restricted item arrays differ in size — summary is not comparison-based"
    );
    let m = a_pi.len();
    assert!(
        m >= 2,
        "restricted arrays must at least contain the two boundaries"
    );

    let ranks_pi: Vec<u64> = a_pi.iter().map(|e| pi.rank_in(iv_pi, e)).collect();
    let ranks_rho: Vec<u64> = a_rho.iter().map(|e| rho.rank_in(iv_rho, e)).collect();

    // The construction keeps rank_π(I'_π[i]) ≤ rank_ϱ(I'_ϱ[i]) (Section
    // 4.6); verify rather than assume.
    for i in 0..m {
        debug_assert!(
            ranks_pi[i] <= ranks_rho[i],
            "rank ordering invariant violated at index {i}: {} > {}",
            ranks_pi[i],
            ranks_rho[i]
        );
    }

    let mut best = 0u64;
    let mut best_i = 0usize;
    for i in 0..m - 1 {
        // ranks_rho[i+1] ≥ ranks_pi[i] always (both sides sorted and the
        // ordering invariant); keep the subtraction checked in debug.
        let g = ranks_rho[i + 1] - ranks_pi[i];
        let wins = match tie {
            TieBreak::LowestIndex => g > best,
            TieBreak::HighestIndex => g >= best && g > 0,
        };
        if wins {
            best = g;
            best_i = i;
        }
    }
    GapInfo {
        gap: best,
        index: best_i,
        pi_low: a_pi[best_i].clone(),
        rho_high: a_rho[best_i + 1].clone(),
        restricted_len: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};
    use cqs_universe::generate_increasing;

    fn feed<S: ComparisonSummary<Item>>(summary: S, n: usize) -> StreamState<S> {
        let mut st = StreamState::new(summary);
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn exact_summary_has_unit_gap() {
        let pi = feed(ExactSummary::new(), 32);
        let rho = feed(ExactSummary::new(), 32);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // Every item stored on both sides: consecutive ranks differ by 1.
        assert_eq!(g.gap, 1);
        assert_eq!(g.restricted_len, 34); // 32 items + two sentinels
    }

    #[test]
    fn decimated_summary_has_large_gap() {
        let pi = feed(DecimatedSummary::new(4), 100);
        let rho = feed(DecimatedSummary::new(4), 100);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // 100 items thinned to 4: consecutive stored ranks ~33 apart.
        assert!(g.gap >= 25, "expected a large gap, got {}", g.gap);
    }

    #[test]
    fn gap_is_computed_within_interval_only() {
        let pi = feed(ExactSummary::new(), 16);
        let rho = feed(ExactSummary::new(), 16);
        let items = pi.summary.item_array();
        let iv = Interval::open(items[2].clone(), items[9].clone());
        let g = compute_gap(&pi, &rho, &iv, &iv);
        assert_eq!(g.gap, 1);
        // lo + 6 inside + hi.
        assert_eq!(g.restricted_len, 8);
    }

    #[test]
    fn gap_extremes_identify_the_widest_hole() {
        // π and ϱ identical; manually thin one region by using a small
        // budget, then the argmax straddles the thinned region.
        let pi = feed(DecimatedSummary::new(6), 200);
        let rho = feed(DecimatedSummary::new(6), 200);
        let g = compute_gap(&pi, &rho, &Interval::whole(), &Interval::whole());
        // The identified extremes must be endpoints or genuinely stored.
        match (&g.pi_low, &g.rho_high) {
            (Endpoint::PosInf, _) => panic!("gap low extreme cannot be +inf"),
            (_, Endpoint::NegInf) => panic!("gap high extreme cannot be -inf"),
            _ => {}
        }
        assert!(g.index + 1 < g.restricted_len);
    }
}
