//! The comparison-based computational model (Definition 2.1).
//!
//! A summary in this model may only compare / equality-test items; its
//! memory is an *item array* `I` (items from the stream, sorted
//! non-decreasingly) plus general memory `G` containing no item
//! identifiers. The traits below expose exactly the introspection the
//! lower-bound adversary is entitled to: the contents of `I` and the
//! answers to quantile / rank queries.
//!
//! Genericity over `T: Ord + Clone` *enforces* condition (i) of the
//! definition at the type level: when instantiated with
//! [`cqs_universe::Item`] — whose only public capabilities are
//! comparison, equality, hashing and cloning — a summary physically
//! cannot average, bucket, or otherwise inspect item values.

/// A (deterministic) comparison-based ε-approximate quantile summary,
/// per Definition 2.1 of the paper.
///
/// Implementations must uphold:
///
/// * **(i)** only comparisons/equality tests on items (enforced by
///   genericity when `T` is opaque);
/// * **(ii)** [`item_array`](Self::item_array) returns exactly the items
///   currently stored, sorted non-decreasingly, each of which appeared in
///   the stream;
/// * **(iii)** processing of an arriving item depends only on comparison
///   outcomes against stored items and on general memory;
/// * **(iv)** query answers are stored items, chosen using only `G` and
///   `|I|`.
///
/// The minimum and maximum of the stream are expected to be stored at
/// all times (the paper grants this with O(1) extra space); the
/// adversary asserts it.
pub trait ComparisonSummary<T: Ord + Clone> {
    /// Processes the next stream item.
    fn insert(&mut self, item: T);

    /// Processes a non-decreasing run of stream items, returning the
    /// largest `|I|` observed at any point of the run (the honest space
    /// figure — a summary may compress mid-run, so the final
    /// [`stored_count`](Self::stored_count) can undercount the peak).
    ///
    /// The default falls back to per-item [`insert`](Self::insert), so
    /// every summary keeps working unchanged; implementations with a
    /// cheaper bulk path (e.g. the GK one-pass merge) must behave
    /// *identically* to the fallback — same stored state, same peak.
    ///
    /// Callers must pass `run` sorted non-decreasingly; this is the
    /// order `leaf()` of the adversary already generates.
    fn insert_sorted_run(&mut self, run: &[T]) -> usize {
        let mut peak = 0usize;
        for item in run {
            self.insert(item.clone());
            peak = peak.max(self.stored_count());
        }
        peak
    }

    /// The item array `I`: all stored items, sorted non-decreasingly.
    fn item_array(&self) -> Vec<T>;

    /// Visits the item array in order without materialising it: calls
    /// `f` once per stored item, non-decreasingly — the borrow-friendly
    /// face of [`item_array`](Self::item_array) used by the adversary's
    /// gap scans. The default allocates via `item_array`; summaries on
    /// the adversary hot path override it with a direct walk.
    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        for item in self.item_array() {
            f(&item);
        }
    }

    /// Visits, in order, the stored items strictly inside the open
    /// range `(lo, hi)` — `None` meaning unbounded on that side.
    /// Semantically identical to filtering
    /// [`for_each_item`](Self::for_each_item) by `lo < item < hi`; the
    /// default does exactly that, so it is correct for any storage.
    /// Summaries over sorted storage override it to locate the range
    /// start by binary search and stop at the first item `>= hi`,
    /// turning the adversary's per-node interval scans from O(|I|)
    /// into O(log |I| + inside).
    fn for_each_item_between(&self, lo: Option<&T>, hi: Option<&T>, f: &mut dyn FnMut(&T)) {
        let mut past_lo = lo.is_none();
        let mut done = false;
        self.for_each_item(&mut |it| {
            if done {
                return;
            }
            if !past_lo {
                match lo {
                    Some(lo) if *it <= *lo => return,
                    _ => past_lo = true,
                }
            }
            match hi {
                Some(hi) if *it >= *hi => done = true,
                _ => f(it),
            }
        });
    }

    /// `|I|` — the number of occupied item cells. Must be cheap (the
    /// harness polls it after every insert) and a deterministic function
    /// of the summary state; it should equal `item_array().len()` up to
    /// bookkeeping duplicates (e.g. separately pinned extremes that also
    /// appear in a buffer).
    fn stored_count(&self) -> usize;

    /// Number of stream items processed so far.
    fn items_processed(&self) -> u64;

    /// Answers a rank query: an item whose rank is within εN of `r`
    /// (1 ≤ r ≤ N). Returns `None` only on an empty summary.
    fn query_rank(&self, r: u64) -> Option<T>;

    /// Answers a quantile query ϕ ∈ [0, 1]: convenience wrapper mapping
    /// ϕ to the target rank `clamp(⌊ϕN⌋, 1, N)` per the paper.
    fn quantile(&self, phi: f64) -> Option<T> {
        let n = self.items_processed();
        if n == 0 {
            return None;
        }
        let r = ((phi * n as f64).floor() as u64).clamp(1, n);
        self.query_rank(r)
    }

    /// A human-readable algorithm name for reports.
    fn name(&self) -> &'static str {
        "summary"
    }
}

/// A comparison-based data structure for the Estimating Rank problem
/// (Section 6.2): given a query `q` from the universe, return the number
/// of stream items not larger than `q`, up to ±εN.
///
/// Extends [`ComparisonSummary`]: the storage model (Definition 2.1,
/// with item (iv) replaced by its rank-query analogue) is shared, only
/// the query interface differs.
pub trait RankEstimator<T: Ord + Clone>: ComparisonSummary<T> {
    /// Estimated number of stream items `<= q`, for any universe item
    /// `q` (present in the stream or not).
    fn estimate_rank(&self, q: &T) -> u64;
}

/// Wrapper that tracks the *maximum* item-array size over the lifetime
/// of a summary.
///
/// The paper assumes |I| never decreases ("otherwise, we would need to
/// take the maximum size of |I| during the computation"); real summaries
/// like GK shrink after a compress, so the honest figure to report
/// against the lower bound is the running maximum.
pub struct MaxSpaceTracker<S> {
    inner: S,
    max_stored: usize,
}

impl<S> MaxSpaceTracker<S> {
    /// Wraps a summary.
    pub fn new(inner: S) -> Self {
        MaxSpaceTracker {
            inner,
            max_stored: 0,
        }
    }

    /// Largest `stored_count()` observed after any insert.
    pub fn max_stored(&self) -> usize {
        self.max_stored
    }

    /// The wrapped summary.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<T: Ord + Clone, S: ComparisonSummary<T>> ComparisonSummary<T> for MaxSpaceTracker<S> {
    fn insert(&mut self, item: T) {
        self.inner.insert(item);
        self.max_stored = self.max_stored.max(self.inner.stored_count());
    }

    fn insert_sorted_run(&mut self, run: &[T]) -> usize {
        // Delegate so the inner summary's bulk path is used; its reported
        // intra-run peak keeps `max_stored` byte-identical to the
        // per-item fallback (which polls after every insert).
        let peak = self.inner.insert_sorted_run(run);
        self.max_stored = self.max_stored.max(peak);
        peak
    }

    fn item_array(&self) -> Vec<T> {
        self.inner.item_array()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        self.inner.for_each_item(f)
    }

    fn for_each_item_between(&self, lo: Option<&T>, hi: Option<&T>, f: &mut dyn FnMut(&T)) {
        self.inner.for_each_item_between(lo, hi, f)
    }

    fn stored_count(&self) -> usize {
        self.inner.stored_count()
    }

    fn items_processed(&self) -> u64 {
        self.inner.items_processed()
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        self.inner.query_rank(r)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ExactSummary;

    #[test]
    fn quantile_maps_phi_to_clamped_rank() {
        let mut s = ExactSummary::new();
        for x in 1..=10u32 {
            s.insert(x);
        }
        // ϕ = 0 clamps to rank 1; ϕ = 1 to rank N.
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(10));
        assert_eq!(s.quantile(0.5), Some(5)); // ⌊0.5·10⌋ = 5
    }

    #[test]
    fn quantile_on_empty_summary_is_none() {
        let s: ExactSummary<u32> = ExactSummary::new();
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn max_space_tracker_records_peak() {
        let mut s = MaxSpaceTracker::new(ExactSummary::new());
        for x in 0..100u32 {
            s.insert(x);
        }
        assert_eq!(s.max_stored(), 100);
        assert_eq!(s.stored_count(), 100);
    }
}
