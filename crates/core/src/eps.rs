//! The approximation parameter ε, kept as an exact integer inverse.
//!
//! The paper "assume\[s\] for simplicity that 1/ε is an integer"; keeping
//! the inverse exact avoids every floating-point rounding question in the
//! construction (leaf sizes 2/ε, stream lengths N_k = (1/ε)·2^k, gap
//! bounds 2εN = 2·N/inv, …).

use std::fmt;

/// An approximation guarantee ε = 1/inv with integral inverse.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Eps {
    inv: u64,
}

impl Eps {
    /// Constructs ε = 1/`inv`.
    ///
    /// # Panics
    ///
    /// Panics if `inv == 0`.
    pub fn from_inverse(inv: u64) -> Self {
        assert!(inv > 0, "1/eps must be positive");
        Eps { inv }
    }

    /// 1/ε as an integer.
    pub fn inverse(self) -> u64 {
        self.inv
    }

    /// ε as a float (for reporting and for float-parameterised summaries).
    pub fn value(self) -> f64 {
        1.0 / self.inv as f64
    }

    /// The stream length N_k = (1/ε)·2^k used by the construction.
    ///
    /// # Panics
    ///
    /// Panics when N_k overflows `u64`. The panic-free driver validates
    /// the configuration through
    /// [`try_stream_len`](Self::try_stream_len) before it ever reaches
    /// this accessor, turning an absurd (ε, k) into a typed
    /// `ConfigOverflow` error instead.
    pub fn stream_len(self, k: u32) -> u64 {
        self.try_stream_len(k).expect("N_k overflows u64")
    }

    /// [`stream_len`](Self::stream_len) without the panic: `None` when
    /// (1/ε)·2^k does not fit in `u64` (including k ≥ 64, where the
    /// shift itself would already be undefined).
    pub fn try_stream_len(self, k: u32) -> Option<u64> {
        let pow = 1u64.checked_shl(k)?;
        self.inv.checked_mul(pow)
    }

    /// The number of items appended per leaf of the recursion tree, 2/ε.
    pub fn leaf_items(self) -> u64 {
        2 * self.inv
    }

    /// The correctness gap bound of Lemma 3.4: 2εN = 2N/inv (exact when
    /// `inv | 2N`, which holds for all N_k).
    pub fn gap_bound(self, n: u64) -> u64 {
        2 * n / self.inv
    }

    /// εn rounded down — the additive rank-error budget on a stream of
    /// length `n`.
    pub fn rank_budget(self, n: u64) -> u64 {
        n / self.inv
    }

    /// Whether the paper's Theorem 2.2 precondition ε < 1/16 holds.
    pub fn satisfies_theorem_precondition(self) -> bool {
        self.inv > 16
    }
}

impl fmt::Debug for Eps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1/{}", self.inv)
    }
}

impl fmt::Display for Eps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1/{}", self.inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Exactness is the property under test: 1/16 is a dyadic rational.
    #[allow(clippy::float_cmp)]
    fn arithmetic_is_exact() {
        let e = Eps::from_inverse(16);
        assert_eq!(e.value(), 0.0625);
        assert_eq!(e.stream_len(3), 128);
        assert_eq!(e.leaf_items(), 32);
        assert_eq!(e.gap_bound(128), 16);
        assert_eq!(e.rank_budget(128), 8);
    }

    #[test]
    fn leaf_accounting_matches_stream_length() {
        // 2^{k−1} leaves × 2/ε items each = N_k.
        for k in 1..=10u32 {
            let e = Eps::from_inverse(32);
            assert_eq!((1u64 << (k - 1)) * e.leaf_items(), e.stream_len(k));
        }
    }

    #[test]
    fn theorem_precondition() {
        assert!(!Eps::from_inverse(16).satisfies_theorem_precondition());
        assert!(Eps::from_inverse(17).satisfies_theorem_precondition());
    }

    #[test]
    #[should_panic(expected = "1/eps must be positive")]
    fn zero_inverse_rejected() {
        Eps::from_inverse(0);
    }

    #[test]
    fn try_stream_len_detects_overflow() {
        let e = Eps::from_inverse(1 << 20);
        assert_eq!(e.try_stream_len(10), Some(1 << 30));
        // 2^20 · 2^44 = 2^64: one past the top.
        assert_eq!(e.try_stream_len(44), None);
        assert_eq!(e.try_stream_len(43), Some(1 << 63));
        // The shift itself out of range.
        assert_eq!(Eps::from_inverse(1).try_stream_len(64), None);
        assert_eq!(Eps::from_inverse(1).try_stream_len(63), Some(1 << 63));
    }
}
