//! Mergeable summaries: the composition contract behind sharding.
//!
//! The lower bound (Theorem 2.2) prices a *single* summary; a sharded
//! service runs S of them and periodically folds shards together. That
//! fold is only correct if merging composes the error bounds in a known
//! way — the Mergeable Summaries line of work (Agarwal et al., PODS
//! 2012) formalises the contract implemented here: merging an
//! ε₁-summary of n₁ items with an ε₂-summary of n₂ items yields a
//! summary of n₁+n₂ items with error at most (ε₁+ε₂)·(n₁+n₂) in the
//! worst case. Folding S equal shards left-to-right therefore lands at
//! S·ε₀; the service's merge worker always folds from scratch so the
//! composed ε stays bounded by the shard count instead of growing with
//! the number of merge cycles.
//!
//! [`MergeableSummary`] is deliberately fallible: GK-family summaries
//! must refuse a merge whose composed ε leaves (0, 0.5), MRL must refuse
//! incompatible buffer capacities, and q-digest (outside this trait —
//! it is not comparison-based) refuses mismatched universes. A typed
//! [`MergeError`] keeps those refusals out of the panic path the
//! hot-path lint polices.

use std::fmt;

use crate::model::ComparisonSummary;

/// Typed refusal of a summary merge.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeError {
    /// The two summaries were built with incompatible parameters (e.g.
    /// MRL buffer capacities, CKMS bias directions).
    IncompatibleParams {
        /// What disagreed, e.g. `"buffer capacity"`.
        what: &'static str,
        /// The receiver's value, rendered.
        left: String,
        /// The argument's value, rendered.
        right: String,
    },
    /// The composed error bound ε₁+ε₂ would leave the summary's valid
    /// range (0, 0.5) — the merged summary could no longer promise
    /// anything.
    EpsOverflow {
        /// The out-of-range composed ε.
        composed: f64,
    },
    /// The merged state failed the summary's own structural invariant —
    /// a bug guard: the re-validation the service runs after every fold.
    InvariantViolated {
        /// The invariant that failed, rendered.
        detail: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::IncompatibleParams { what, left, right } => {
                write!(f, "merge refused: {what} differs ({left} vs {right})")
            }
            MergeError::EpsOverflow { composed } => {
                write!(f, "merge refused: composed eps {composed} outside (0, 0.5)")
            }
            MergeError::InvariantViolated { detail } => {
                write!(f, "merge produced an invalid summary: {detail}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A comparison-based summary that supports the mergeable-summaries
/// composition: `try_merge` folds another summary of the *same type and
/// compatible parameters* into `self`, after which `self` summarises the
/// concatenation of both streams with error at most
/// [`eps_bound`](Self::eps_bound) times the combined length.
pub trait MergeableSummary<T: Ord + Clone>: ComparisonSummary<T> {
    /// Folds `other` into `self`. On a parameter refusal
    /// ([`MergeError::IncompatibleParams`] / [`MergeError::EpsOverflow`])
    /// the receiver is unchanged; [`MergeError::InvariantViolated`]
    /// reports a post-merge re-validation failure and the receiver must
    /// be discarded.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError>;

    /// The worst-case rank-error bound as a fraction of
    /// `items_processed()`, *after* any merges performed so far —
    /// deterministic summaries (GK family, MRL, CKMS) report their
    /// composed ε; randomized sketches (KLL) return `None` because
    /// their guarantee is probabilistic, not worst-case.
    fn eps_bound(&self) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_error_messages_name_the_refusal() {
        let e = MergeError::IncompatibleParams {
            what: "buffer capacity",
            left: "100".to_string(),
            right: "200".to_string(),
        };
        assert!(e.to_string().contains("buffer capacity"));
        let e = MergeError::EpsOverflow { composed: 0.6 };
        assert!(e.to_string().contains("0.6"));
        let e = MergeError::InvariantViolated {
            detail: "span".to_string(),
        };
        assert!(e.to_string().contains("span"));
    }
}
