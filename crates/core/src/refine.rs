//! `RefineIntervals` — Pseudocode 1 of the paper.
//!
//! Given indistinguishable streams π, ϱ and their current intervals, find
//! the largest gap between the restricted item arrays and return new,
//! strictly nested intervals in the *extreme regions* of that gap:
//!
//! * for π: `(I'_π[i], next(π, I'_π[i]))` — just above the low extreme;
//! * for ϱ: `(prev(ϱ, I'_ϱ[i+1]), I'_ϱ[i+1])` — just below the high
//!   extreme.
//!
//! Neither new interval contains any existing stream item
//! (Observation 1(i)), and items drawn from them compare identically
//! against the respective item arrays (Observation 1(ii)), which is what
//! keeps the streams indistinguishable while pushing their ranks apart.

use cqs_universe::{Endpoint, Interval, Item};

use crate::gap::{compute_gap, GapInfo};
use crate::model::ComparisonSummary;
use crate::state::StreamState;

/// Output of a refinement step: the nested intervals plus the gap that
/// was used to choose them (the paper's `g'` for this node).
#[derive(Clone, Debug)]
pub struct Refinement {
    /// New interval `(α_π, β_π)` for stream π.
    pub iv_pi: Interval,
    /// New interval `(α_ϱ, β_ϱ)` for stream ϱ.
    pub iv_rho: Interval,
    /// The gap information this refinement was derived from.
    pub gap: GapInfo,
}

/// Runs `RefineIntervals(π, ϱ, (ℓ_π, r_π), (ℓ_ϱ, r_ϱ))`.
///
/// Preconditions (asserted where observable): the streams are
/// indistinguishable and only their most recent `N' ≥ 2` items lie inside
/// the given intervals.
pub fn refine_intervals<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
) -> Refinement {
    assert!(
        pi.count_inside(iv_pi) >= 2,
        "need N' >= 2 items inside the interval"
    );
    assert_eq!(
        pi.count_inside(iv_pi),
        rho.count_inside(iv_rho),
        "intervals must contain the same number of items on both streams"
    );
    let gap = compute_gap(pi, rho, iv_pi, iv_rho);
    refine_from(pi, rho, iv_pi, iv_rho, gap)
}

/// A refinement step could not derive valid nested intervals — the gap
/// extremes contradict the stream contents (possible only when the
/// summary under attack lied about its item array or ranks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefineError(pub String);

impl std::fmt::Display for RefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "refine: {}", self.0)
    }
}

/// Like [`refine_intervals`] but reuses an already computed [`GapInfo`]
/// for these streams and intervals (the adversary computes each node's
/// gap exactly once).
pub fn refine_from<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    gap: GapInfo,
) -> Refinement {
    match try_refine_from(pi, rho, iv_pi, iv_rho, gap) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`refine_from`] for the panic-free driver path: structural
/// contradictions (an empty stream behind a −∞/+∞ extreme, an extreme on
/// the wrong side) become a [`RefineError`] instead of aborting.
pub fn try_refine_from<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    iv_pi: &Interval,
    iv_rho: &Interval,
    gap: GapInfo,
) -> Result<Refinement, RefineError> {
    // New interval for π: (I'_π[i], next(π, I'_π[i])).
    let (pi_lo, pi_hi) = match &gap.pi_low {
        Endpoint::NegInf => {
            // next(π, −∞) is the stream minimum.
            let min = pi
                .min()
                .ok_or_else(|| RefineError("stream π is empty below a -inf gap extreme".into()))?;
            (Endpoint::NegInf, Endpoint::Finite(min))
        }
        Endpoint::Finite(a) => {
            let nxt = pi.next(a).map_or(Endpoint::PosInf, Endpoint::Finite);
            (Endpoint::Finite(a.clone()), nxt)
        }
        Endpoint::PosInf => {
            return Err(RefineError("gap low extreme is +inf".into()));
        }
    };

    // New interval for ϱ: (prev(ϱ, I'_ϱ[i+1]), I'_ϱ[i+1]).
    let (rho_lo, rho_hi) = match &gap.rho_high {
        Endpoint::PosInf => {
            let max = rho
                .max()
                .ok_or_else(|| RefineError("stream ϱ is empty below a +inf gap extreme".into()))?;
            (Endpoint::Finite(max), Endpoint::PosInf)
        }
        Endpoint::Finite(b) => {
            let prv = rho.prev(b).map_or(Endpoint::NegInf, Endpoint::Finite);
            (prv, Endpoint::Finite(b.clone()))
        }
        Endpoint::NegInf => {
            return Err(RefineError("gap high extreme is -inf".into()));
        }
    };

    let new_pi = Interval::new(pi_lo, pi_hi);
    let new_rho = Interval::new(rho_lo, rho_hi);

    // Observation 1(i): no existing stream item lies inside either new
    // interval — they sit between order-adjacent stream items.
    debug_assert_eq!(pi.count_inside(&new_pi), 0);
    debug_assert_eq!(rho.count_inside(&new_rho), 0);
    debug_assert!(iv_pi.encloses(&new_pi));
    debug_assert!(iv_rho.encloses(&new_rho));

    Ok(Refinement {
        iv_pi: new_pi,
        iv_rho: new_rho,
        gap,
    })
}

/// Checks Observation 1(ii): fresh items `a ∈ (α_π, β_π)` and
/// `b ∈ (α_ϱ, β_ϱ)` land at the same position of the respective item
/// arrays, i.e. `min{i | a ≤ I_π[i]} = min{i | b ≤ I_ϱ[i]}`.
///
/// Used by tests and the adversary's paranoid mode.
pub fn check_observation1<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
    a: &Item,
    b: &Item,
) -> bool {
    let pos = |arr: &[Item], x: &Item| arr.iter().position(|v| x <= v);
    let ia = pi.summary.item_array();
    let ib = rho.summary.item_array();
    pos(&ia, a) == pos(&ib, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{DecimatedSummary, ExactSummary};
    use cqs_universe::{between_items, generate_increasing};

    fn feed<S: ComparisonSummary<Item>>(summary: S, n: usize) -> StreamState<S> {
        let mut st = StreamState::new(summary);
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn refinement_intervals_are_nested_and_empty() {
        let pi = feed(DecimatedSummary::new(5), 64);
        let rho = feed(DecimatedSummary::new(5), 64);
        let whole = Interval::whole();
        let r = refine_intervals(&pi, &rho, &whole, &whole);
        assert!(whole.encloses(&r.iv_pi));
        assert!(whole.encloses(&r.iv_rho));
        assert_eq!(pi.count_inside(&r.iv_pi), 0);
        assert_eq!(rho.count_inside(&r.iv_rho), 0);
        assert!(r.gap.gap >= 2, "decimated summary should have left a gap");
    }

    #[test]
    fn fresh_items_in_refined_intervals_compare_identically() {
        let pi = feed(DecimatedSummary::new(5), 64);
        let rho = feed(DecimatedSummary::new(5), 64);
        let whole = Interval::whole();
        let r = refine_intervals(&pi, &rho, &whole, &whole);
        let a = generate_increasing(&r.iv_pi, 1).pop().unwrap();
        let b = generate_increasing(&r.iv_rho, 1).pop().unwrap();
        assert!(
            check_observation1(&pi, &rho, &a, &b),
            "Observation 1(ii) violated"
        );
    }

    #[test]
    fn exact_summary_refinement_still_works() {
        // With everything stored the gap is 1, but refinement must still
        // produce valid (empty) intervals between adjacent items.
        let pi = feed(ExactSummary::new(), 16);
        let rho = feed(ExactSummary::new(), 16);
        let whole = Interval::whole();
        let r = refine_intervals(&pi, &rho, &whole, &whole);
        assert_eq!(r.gap.gap, 1);
        // The interval sits between order-adjacent items, and the
        // universe is continuous, so we can still mint items inside it.
        let fresh = generate_increasing(&r.iv_pi, 3);
        assert_eq!(fresh.len(), 3);
        for it in &fresh {
            assert!(r.iv_pi.contains(it));
        }
    }

    #[test]
    fn refinement_respects_adjacent_items() {
        let pi = feed(ExactSummary::new(), 8);
        let rho = feed(ExactSummary::new(), 8);
        let whole = Interval::whole();
        let r = refine_intervals(&pi, &rho, &whole, &whole);
        // For π the new interval is (I'_π[i], next(π, ·)): inserting the
        // midpoint keeps order between the two.
        if let (Endpoint::Finite(lo), Endpoint::Finite(hi)) = (r.iv_pi.lo(), r.iv_pi.hi()) {
            let mid = between_items(lo, hi);
            assert!(r.iv_pi.contains(&mid));
        }
    }
}
