//! The space-bound landscape (Section 1.1): every bound the paper
//! discusses, as evaluable shapes.
//!
//! All values are in *items* with the papers' unoptimised constants
//! elided — these are for comparing growth shapes (who is above whom,
//! and where crossovers fall), which is exactly how the paper positions
//! its contribution against Hung–Ting and the trivial bound.

use crate::eps::Eps;

/// εN computed in integer space first: quotient and remainder are
/// exact, so the result is correct to one final rounding for every
/// `u64` stream length. The old `n as f64 / inv as f64` shape went
/// through a lossy `u64 → f64` conversion of `n` *before* dividing:
/// above 2⁵³ the conversion discards low bits, and the division then
/// rounds a second time — at billion-item-sweep scales (N = 10⁸–10⁹
/// per cell, extrapolation plots far beyond) the εN the bound charts
/// was silently off by up to a unit. Dividing first keeps εN exact
/// whenever it is representable, which covers every N_k = (1/ε)·2^k
/// the construction can address.
fn eps_n(eps: Eps, n: u64) -> f64 {
    let inv = eps.inverse();
    (n / inv) as f64 + (n % inv) as f64 / inv as f64
}

/// The trivial lower bound Ω(1/ε) that "holds even offline" (via the
/// ⌈1/(2ε)⌉ interval-covering argument).
pub fn trivial_lower(eps: Eps) -> f64 {
    eps.inverse() as f64 / 2.0
}

/// Hung & Ting (2010): Ω((1/ε)·log(1/ε)) — the best bound before this
/// paper. Independent of N; their construction needs
/// N ≈ ((1/ε)·log(1/ε))².
pub fn hung_ting_lower(eps: Eps) -> f64 {
    let inv = eps.inverse() as f64;
    inv * inv.log2().max(1.0)
}

/// The stream length Hung & Ting's construction realises its bound at.
pub fn hung_ting_stream_len(eps: Eps) -> f64 {
    let b = hung_ting_lower(eps);
    b * b
}

/// Cormode & Veselý (this paper): Ω((1/ε)·log εN), valid at every
/// N ≥ Ω(1/ε).
pub fn cv_lower(eps: Eps, n: u64) -> f64 {
    let inv = eps.inverse() as f64;
    inv * eps_n(eps, n).max(2.0).log2()
}

/// The paper's concrete constant: c·(k+2)/(4ε) with c = 1/8 − 2ε at
/// N = (1/ε)·2^k (see `spacegap::theorem22_bound` for the audited
/// version; this one interpolates continuous N).
///
/// Small-N clamp: the construction needs at least one halving step
/// (k ≥ 1, i.e. N ≥ 2/ε), so εN is clamped at 2 — the same floor
/// [`cv_lower`] uses. Clamping at 1 (as this function once did) would
/// let the concrete bound keep sinking toward k = 0 on streams too
/// short for the construction to exist at all.
pub fn cv_lower_concrete(eps: Eps, n: u64) -> f64 {
    let inv = eps.inverse() as f64;
    let k = eps_n(eps, n).max(2.0).log2();
    (0.125 - 2.0 * eps.value()) * (k + 2.0) * inv / 4.0
}

/// Greenwald & Khanna upper bound O((1/ε)·log εN) — what the paper
/// proves tight.
pub fn gk_upper(eps: Eps, n: u64) -> f64 {
    cv_lower(eps, n) // same shape; constants elided
}

/// Manku–Rajagopalan–Lindsay upper bound O((1/ε)·log²(εN)).
pub fn mrl_upper(eps: Eps, n: u64) -> f64 {
    let inv = eps.inverse() as f64;
    let l = eps_n(eps, n).max(2.0).log2();
    inv * l * l
}

/// q-digest upper bound O((1/ε)·log |U|) — escapes the lower bound by
/// not being comparison-based.
pub fn qdigest_upper(eps: Eps, log_universe: u32) -> f64 {
    eps.inverse() as f64 * log_universe as f64
}

/// KLL randomized upper bound O((1/ε)·log log(1/εδ)).
pub fn kll_upper(eps: Eps, delta: f64) -> f64 {
    let inv = eps.inverse() as f64;
    inv * (inv / delta).log2().max(2.0).log2()
}

/// The biased-quantiles lower bound of Theorem 6.5: Ω((1/ε)·log² εN).
pub fn biased_lower(eps: Eps, n: u64) -> f64 {
    mrl_upper(eps, n) // same shape
}

/// The N beyond which this paper's bound strictly exceeds Hung–Ting's:
/// log₂ εN > log₂(1/ε), i.e. N > 1/ε².
pub fn crossover_vs_hung_ting(eps: Eps) -> u64 {
    eps.inverse() * eps.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_bounds_at_large_n() {
        let eps = Eps::from_inverse(100);
        let n = 1u64 << 30;
        assert!(trivial_lower(eps) < hung_ting_lower(eps));
        assert!(hung_ting_lower(eps) < cv_lower(eps, n));
        assert!(cv_lower(eps, n) < mrl_upper(eps, n));
        // q-digest with a 32-bit universe beats the comparison-based
        // bound at this N — the paper's Section 2 remark.
        assert!(qdigest_upper(eps, 32) < cv_lower(eps, 1u64 << 45));
    }

    #[test]
    fn crossover_is_at_inverse_eps_squared() {
        let eps = Eps::from_inverse(64);
        let x = crossover_vs_hung_ting(eps);
        assert_eq!(x, 4096);
        // Strictly above the crossover, CV > HT; below, CV ≤ HT.
        assert!(cv_lower(eps, 4 * x) > hung_ting_lower(eps));
        assert!(cv_lower(eps, x / 4) < hung_ting_lower(eps));
    }

    #[test]
    fn cv_concrete_is_below_shape_but_grows_identically() {
        let eps = Eps::from_inverse(64);
        for exp in [14u32, 20, 26] {
            let n = 1u64 << exp;
            assert!(cv_lower_concrete(eps, n) < cv_lower(eps, n));
        }
        let r1 = cv_lower_concrete(eps, 1 << 20) / cv_lower_concrete(eps, 1 << 14);
        let r2 = (cv_lower(eps, 1 << 20) + 2.0 * 64.0) / (cv_lower(eps, 1 << 14) + 2.0 * 64.0);
        assert!(
            (r1 / r2 - 1.0).abs() < 0.2,
            "growth shapes diverge: {r1} vs {r2}"
        );
    }

    #[test]
    fn tiny_n_clamps_agree_on_the_construction_floor() {
        // Below N = 2/ε (no room for one halving step) both the shape
        // and the concrete bound must flatten at their k = 1 value, not
        // keep shrinking — and they must share that floor.
        let eps = Eps::from_inverse(64);
        let floor = 2 * eps.inverse();
        for n in [1u64, 4, 64, 127, floor] {
            assert!((cv_lower(eps, n) - cv_lower(eps, floor)).abs() < 1e-9);
            assert!((cv_lower_concrete(eps, n) - cv_lower_concrete(eps, floor)).abs() < 1e-9);
        }
        // Strictly above the floor both grow again.
        assert!(cv_lower(eps, 4 * floor) > cv_lower(eps, floor) + 1e-9);
        assert!(cv_lower_concrete(eps, 4 * floor) > cv_lower_concrete(eps, floor) + 1e-9);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exactness is the property under test
    fn eps_n_is_exact_beyond_the_f64_mantissa() {
        // n = 3·(2⁵³+1) does not survive a u64 → f64 round-trip: the
        // conversion rounds it up a notch, and the float-first division
        // then reported εN one ulp above 3. Integer-first division is
        // exact.
        let inv = (1u64 << 53) + 1;
        let eps = Eps::from_inverse(inv);
        let n = 3 * inv;
        assert_eq!(eps_n(eps, n), 3.0);
        let float_first = n as f64 / inv as f64;
        assert!(
            float_first > 3.0,
            "float-first division regained exactness; this regression \
             guard can be retired"
        );
        // And the bound built on it is the exact-εN value.
        assert_eq!(cv_lower(eps, n), inv as f64 * 3.0f64.log2());
    }

    #[test]
    #[allow(clippy::float_cmp)] // εN = 2^k exactly ⇒ the bound is exact
    fn large_n_keeps_the_construction_floor_clamp() {
        // The k ≥ 1 clamp must survive the integer-first rewrite at
        // both ends of the scale: gigantic 1/ε keeps tiny εN pinned at
        // the 2/ε floor...
        let eps = Eps::from_inverse(1u64 << 60);
        for n in [1u64, 1 << 30, 1 << 53, (1 << 60) + 12_345, 1 << 61] {
            assert!((cv_lower(eps, n) - cv_lower(eps, 2 * (1 << 60))).abs() < 1e-6);
            assert!(
                (cv_lower_concrete(eps, n) - cv_lower_concrete(eps, 2 * (1 << 60))).abs() < 1e-6
            );
        }
        // ...while billion-scale N with ordinary ε sits far above it
        // and stays strictly monotone in k across the 2⁵³ line.
        let eps = Eps::from_inverse(1024);
        let mut prev = 0.0;
        for k in [17u32, 20, 30, 44, 50, 53] {
            let b = cv_lower(eps, eps.stream_len(k));
            assert!(b > prev, "bound not increasing at k = {k}");
            // εN = 2^k exactly, so the bound is analytically k·(1/ε).
            assert_eq!(b, 1024.0 * f64::from(k));
            prev = b;
        }
    }

    #[test]
    fn hung_ting_needs_quadratic_stream() {
        let eps = Eps::from_inverse(32);
        let n_ht = hung_ting_stream_len(eps);
        // ((1/ε)·log 1/ε)² = (32·5)² = 25 600.
        assert_eq!(n_ht as u64, 25_600);
    }

    #[test]
    fn kll_is_doubly_logarithmic_in_delta() {
        let eps = Eps::from_inverse(100);
        let a = kll_upper(eps, 1e-3);
        let b = kll_upper(eps, 1e-12);
        assert!(
            b < a * 1.6,
            "δ from 1e-3 to 1e-12 should barely move the bound"
        );
    }
}
