//! Lemma 3.4 made concrete: when the gap exceeds 2εN, *some* quantile
//! query must be answered with error > εN — and we can exhibit it.
//!
//! The paper's argument: place ϕ·N in the middle of the oversized gap
//! between `rank_π(I_π[i])` and `rank_ϱ(I_ϱ[i+1])`. The summary's answer
//! to ϕ is the same array position j on both streams
//! (indistinguishability + comparison-basedness); if j ≤ i the answer is
//! too low on π, otherwise too high on ϱ. Running both live copies, we
//! simply measure both errors and observe that at least one exceeds the
//! budget.

use cqs_universe::{Interval, Item};

use crate::adversary::AdversaryOutcome;
use crate::model::ComparisonSummary;

/// A concrete quantile query on which the summary errs.
#[derive(Clone, Debug)]
pub struct FailureWitness {
    /// The quantile ϕ placed in the middle of the gap.
    pub phi: f64,
    /// The corresponding target rank ⌊ϕ·N⌋.
    pub target_rank: u64,
    /// The top-level gap that made this possible.
    pub gap: u64,
    /// Lemma 3.4's ceiling 2εN that the gap exceeded.
    pub gap_ceiling: u64,
    /// True rank (w.r.t. π) of the answer the π-copy returned.
    pub answer_rank_pi: u64,
    /// True rank (w.r.t. ϱ) of the answer the ϱ-copy returned.
    pub answer_rank_rho: u64,
    /// |answer_rank_pi − target_rank|.
    pub err_pi: u64,
    /// |answer_rank_rho − target_rank|.
    pub err_rho: u64,
    /// The permitted budget ⌊εN⌋.
    pub budget: u64,
}

impl FailureWitness {
    /// Whether the witness indeed demonstrates failure (it must, for any
    /// conforming summary).
    pub fn demonstrates_failure(&self) -> bool {
        self.err_pi > self.budget || self.err_rho > self.budget
    }
}

/// Extracts a failing quantile query from a finished adversary run, or
/// `None` if the summary kept the gap within the correctness ceiling
/// (in which case Theorem 2.2's space bound applies instead — the two
/// horns of the paper's dilemma).
pub fn quantile_failure_witness<S: ComparisonSummary<Item>>(
    outcome: &AdversaryOutcome<S>,
) -> Option<FailureWitness> {
    // A finished outcome implies `try_run` already validated N_k, so
    // the fallback is unreachable; it keeps this entry point unwind-free.
    let n = outcome.eps.try_stream_len(outcome.k).unwrap_or(u64::MAX);
    let ceiling = outcome.eps.gap_bound(n);
    let root = outcome.root()?;
    if root.g <= ceiling {
        return None;
    }

    // Recover the gap extremes' global ranks. The root audit's gap was
    // computed in the whole-universe intervals, where rank_in equals the
    // global rank (with sentinels at 0 and N+1).
    let whole = Interval::whole();
    let gap = crate::gap::compute_gap(&outcome.pi, &outcome.rho, &whole, &whole);
    let r_low = outcome.pi.rank_in(&whole, &gap.pi_low);
    let r_high = outcome.rho.rank_in(&whole, &gap.rho_high);
    debug_assert_eq!(r_high - r_low, gap.gap);

    let target = ((r_low + r_high) / 2).clamp(1, n);
    let phi = target as f64 / n as f64;
    let budget = outcome.eps.rank_budget(n);

    // A summary that answers no quantile at all on a non-empty stream
    // yields no witness (its emptiness is caught by the model audit, not
    // here) — so this driver-reachable path must not panic.
    let ans_pi = outcome.pi.summary.query_rank(target)?;
    let ans_rho = outcome.rho.summary.query_rank(target)?;
    let rank_pi = outcome.pi.rank(&ans_pi);
    let rank_rho = outcome.rho.rank(&ans_rho);

    Some(FailureWitness {
        phi,
        target_rank: target,
        gap: gap.gap,
        gap_ceiling: ceiling,
        answer_rank_pi: rank_pi,
        answer_rank_rho: rank_rho,
        err_pi: rank_pi.abs_diff(target),
        err_rho: rank_rho.abs_diff(target),
        budget,
    })
}

/// Audits a summary's answers across a whole grid of target ranks
/// against the true ranks of one live stream; returns the maximum
/// observed rank error. Useful as a "the summary really is ε-approximate
/// on this stream" check for the other side of the dilemma.
pub fn max_rank_error_on_grid<S: ComparisonSummary<Item>>(
    state: &crate::state::StreamState<S>,
    grid: usize,
) -> u64 {
    let n = state.len();
    if n == 0 {
        return 0;
    }
    let steps = grid.max(1) as u64;
    let mut worst = 0u64;
    for j in 0..=steps {
        let target = (1 + j * (n - 1) / steps).clamp(1, n);
        if let Some(ans) = state.summary.query_rank(target) {
            worst = worst.max(state.rank(&ans).abs_diff(target));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::run_adversary;
    use crate::eps::Eps;
    use crate::reference::{DecimatedSummary, ExactSummary};

    #[test]
    fn exact_summary_yields_no_witness() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert!(quantile_failure_witness(&out).is_none());
    }

    #[test]
    fn starved_summary_yields_demonstrated_failure() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 5, || DecimatedSummary::new(3));
        let w = quantile_failure_witness(&out).expect("gap must exceed ceiling");
        assert!(w.gap > w.gap_ceiling);
        assert!(
            w.demonstrates_failure(),
            "one of the copies must err: pi={} rho={} budget={}",
            w.err_pi,
            w.err_rho,
            w.budget
        );
        assert!(w.phi > 0.0 && w.phi <= 1.0);
    }

    #[test]
    fn grid_audit_confirms_exact_summary_exactness() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        assert_eq!(max_rank_error_on_grid(&out.pi, 64), 0);
    }

    #[test]
    fn grid_audit_detects_decimated_sloppiness() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 5, || DecimatedSummary::new(3));
        let n = out.pi.len();
        let budget = eps.rank_budget(n);
        assert!(
            max_rank_error_on_grid(&out.pi, 128) > budget,
            "a 3-item summary cannot be eps-approximate on 256 items"
        );
    }
}
