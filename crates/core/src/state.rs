//! A live (stream, summary) pair with order-statistic indexing.
//!
//! The adversary grows two of these — one for π, one for ϱ. Each tracks:
//!
//! * the summary under attack (any [`ComparisonSummary<Item>`]);
//! * an order-statistic treap over all stream items, giving the paper's
//!   `rank_σ(a)`, `next(σ, a)` and `prev(σ, b)` in O(log N) — each node
//!   also carries the item's arrival position as its tag, used to
//!   *verify* (not assume) indistinguishability: Definition 3.2(2)
//!   demands that the i-th stored items of the two summaries arrived at
//!   the same stream position.

use cqs_ostree::OsTree;
use cqs_universe::{Endpoint, Interval, Item};

use crate::implicit::ImplicitOrder;
use crate::model::ComparisonSummary;

/// How a [`StreamState`] represents the stream's order statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamRepr {
    /// Every stream item lives in an order-statistic treap: Θ(N)
    /// memory, supports arbitrary per-item appends. The default.
    Materialized,
    /// Interval-compressed: runs are stored as generators plus a
    /// fragment treap ([`crate::implicit`]), so memory is sublinear in
    /// N. Streams must grow through the run-based entry points
    /// ([`StreamState::push_run_in`] / [`StreamState::index_run_in`]).
    Implicit,
}

/// The order-statistic index behind a [`StreamState`], in either
/// representation. Every query forwards to the active index; the two
/// sides answer byte-identically for the same stream (the implicit
/// side replays the deterministic mint subdivision), which the
/// `cqs-bench` differential suite pins end-to-end.
enum OrderIndex {
    Materialized(OsTree<Item>),
    Implicit(ImplicitOrder),
}

impl OrderIndex {
    fn len(&self) -> u64 {
        match self {
            OrderIndex::Materialized(t) => t.len() as u64,
            OrderIndex::Implicit(i) => i.len(),
        }
    }

    fn count_less(&self, q: &Item) -> u64 {
        match self {
            OrderIndex::Materialized(t) => t.count_less(q) as u64,
            OrderIndex::Implicit(i) => i.count_less(q),
        }
    }

    fn count_le(&self, q: &Item) -> u64 {
        match self {
            OrderIndex::Materialized(t) => t.count_le(q) as u64,
            OrderIndex::Implicit(i) => i.count_le(q),
        }
    }

    fn successor(&self, q: &Item) -> Option<Item> {
        match self {
            OrderIndex::Materialized(t) => t.successor(q).cloned(),
            OrderIndex::Implicit(i) => i.successor(q),
        }
    }

    fn predecessor(&self, q: &Item) -> Option<Item> {
        match self {
            OrderIndex::Materialized(t) => t.predecessor(q).cloned(),
            OrderIndex::Implicit(i) => i.predecessor(q),
        }
    }

    fn min(&self) -> Option<Item> {
        match self {
            OrderIndex::Materialized(t) => t.min().cloned(),
            OrderIndex::Implicit(i) => i.min(),
        }
    }

    fn max(&self) -> Option<Item> {
        match self {
            OrderIndex::Materialized(t) => t.max().cloned(),
            OrderIndex::Implicit(i) => i.max(),
        }
    }

    fn tag_of(&self, q: &Item) -> Option<u64> {
        match self {
            OrderIndex::Materialized(t) => t.tag_of(q),
            OrderIndex::Implicit(i) => i.tag_of(q),
        }
    }

    /// Batched `count_le` over sorted queries. Counts land in `usize`
    /// scratch (the materialized treap's native width); implicit counts
    /// are exact — stream lengths stay far below `usize::MAX` on the
    /// 64-bit targets the billion-item sweep runs on.
    fn multi_count_le(&self, qs: &[Item], out: &mut Vec<usize>) {
        match self {
            OrderIndex::Materialized(t) => t.multi_count_le(qs, out),
            OrderIndex::Implicit(i) => {
                out.clear();
                out.reserve(qs.len());
                for q in qs {
                    out.push(i.count_le(q) as usize);
                }
            }
        }
    }

    fn multi_tag_of(&self, qs: &[Item], out: &mut Vec<Option<u64>>) {
        match self {
            OrderIndex::Materialized(t) => t.multi_tag_of(qs, out),
            OrderIndex::Implicit(i) => {
                out.clear();
                i.multi_tag_of(qs, out);
            }
        }
    }

    fn for_each_tagged(&self, f: &mut dyn FnMut(&Item, u64)) {
        match self {
            OrderIndex::Materialized(t) => t.for_each_tagged(f),
            OrderIndex::Implicit(i) => i.for_each_tagged(f),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            OrderIndex::Materialized(t) => t.reserve(additional),
            // The implicit index allocates per fragment, not per item;
            // run counts are unknowable here and tiny anyway.
            OrderIndex::Implicit(_) => {}
        }
    }
}

/// A stream being fed to a summary, with full order-statistic indexing.
pub struct StreamState<S> {
    /// The summary under adversarial attack.
    pub summary: S,
    order: OrderIndex,
    n: u64,
    max_label_depth: usize,
}

impl<S: ComparisonSummary<Item>> StreamState<S> {
    /// Wraps a fresh summary; the stream starts empty. Materialized
    /// representation — see [`with_repr`](Self::with_repr).
    pub fn new(summary: S) -> Self {
        Self::with_repr(summary, StreamRepr::Materialized)
    }

    /// Wraps a fresh summary with an explicit stream representation.
    pub fn with_repr(summary: S, repr: StreamRepr) -> Self {
        let order = match repr {
            StreamRepr::Materialized => OrderIndex::Materialized(OsTree::new()),
            StreamRepr::Implicit => OrderIndex::Implicit(ImplicitOrder::new()),
        };
        StreamState {
            summary,
            order,
            n: 0,
            max_label_depth: 0,
        }
    }

    /// The active stream representation.
    pub fn repr(&self) -> StreamRepr {
        match self.order {
            OrderIndex::Materialized(_) => StreamRepr::Materialized,
            OrderIndex::Implicit(_) => StreamRepr::Implicit,
        }
    }

    /// Whether the stream is interval-compressed.
    pub fn is_implicit(&self) -> bool {
        matches!(self.order, OrderIndex::Implicit(_))
    }

    /// Rebuilds a state from snapshot parts: a restored summary plus the
    /// stream's `(item, arrival tag)` pairs in sorted item order.
    ///
    /// Validates everything a corrupt or hand-forged snapshot could get
    /// wrong — items must be strictly increasing, the tags must be a
    /// permutation of `0..pairs.len()`, and the summary must have
    /// processed exactly `pairs.len()` items — and returns a diagnostic
    /// instead of restoring silently. `max_label_depth` is recomputed
    /// from the items themselves.
    pub fn from_snapshot_parts(summary: S, pairs: Vec<(Item, u64)>) -> Result<Self, String> {
        let n = pairs.len() as u64;
        if !pairs.windows(2).all(|w| match (w.first(), w.last()) {
            (Some(a), Some(b)) => a.0 < b.0,
            _ => true,
        }) {
            return Err("stream snapshot items are not strictly increasing".to_string());
        }
        let mut seen = vec![false; pairs.len()];
        for &(_, tag) in &pairs {
            match seen.get_mut(tag as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => {
                    return Err(format!(
                        "stream snapshot arrival tags are not a permutation of 0..{n} \
                         (tag {tag} repeated or out of range)"
                    ));
                }
            }
        }
        if summary.items_processed() != n {
            return Err(format!(
                "stream snapshot length {n} disagrees with summary items_processed {}",
                summary.items_processed()
            ));
        }
        let max_label_depth = pairs.iter().map(|(it, _)| it.depth()).max().unwrap_or(0);
        let mut order = OsTree::new();
        order.extend_sorted_tagged(pairs);
        Ok(StreamState {
            summary,
            order: OrderIndex::Materialized(order),
            n,
            max_label_depth,
        })
    }

    /// Visits every stream item in sorted order with its arrival tag —
    /// the exact pairs [`from_snapshot_parts`](Self::from_snapshot_parts)
    /// accepts back.
    pub fn for_each_arrival(&self, f: &mut dyn FnMut(&Item, u64)) {
        self.order.for_each_tagged(f);
    }

    /// Appends one item to the stream and feeds it to the summary.
    ///
    /// # Panics
    ///
    /// Panics if the item already occurred — the adversarial streams
    /// consist of distinct items, and `rank_σ` is only well-defined then.
    pub fn push(&mut self, item: Item) {
        let OrderIndex::Materialized(order) = &mut self.order else {
            // Per-item appends carry no interval, which the implicit
            // index needs to register a run; the adversary rejects
            // per-item insertion mode on implicit streams up front.
            panic!("per-item push requires a materialized stream");
        };
        self.max_label_depth = self.max_label_depth.max(item.depth());
        // The treap descent doubles as the distinctness check, and the
        // node's tag records the arrival position — one walk where the
        // old BTreeMap-plus-treap layout paid for two.
        let fresh = order.insert_unique_tagged(item.clone(), self.n);
        assert!(fresh, "adversarial stream items must be distinct");
        self.summary.insert(item);
        self.n += 1;
    }

    /// Appends a strictly increasing run of fresh items whose closed span
    /// `[run[0], run[last]]` contains no existing stream item — exactly
    /// the situation at every adversary leaf, where the current interval
    /// was refined to be empty of stream items. Returns the largest `|I|`
    /// the summary reported at any point of the run (cf.
    /// [`ComparisonSummary::insert_sorted_run`]).
    ///
    /// Equivalent to calling [`push`](Self::push) per item, but the treap
    /// side costs one bulk join instead of |run| descents.
    ///
    /// # Panics
    ///
    /// Panics (with the same "distinct" diagnostic as `push`) if the run
    /// is not strictly increasing or its span overlaps existing items.
    pub fn push_run(&mut self, run: &[Item]) -> usize {
        self.index_run(run);
        let peak = self.summary.insert_sorted_run(run);
        self.n += run.len() as u64;
        peak
    }

    /// [`push_run`](Self::push_run) for a run minted inside the open
    /// interval `iv` — the entry point that works in **both** stream
    /// representations. A materialized stream indexes the items
    /// directly (the interval is redundant there); an implicit stream
    /// registers the interval's run generator and fragments instead of
    /// the items. Validity requirements and return value match
    /// [`push_run`](Self::push_run).
    pub fn push_run_in(&mut self, iv: &Interval, run: &[Item]) -> usize {
        self.index_run_in(iv, run);
        let peak = self.summary.insert_sorted_run(run);
        self.n += run.len() as u64;
        peak
    }

    /// Indexes a strictly increasing run of fresh items in the
    /// order-statistic treap *without* feeding the summary or advancing
    /// the stream length — the first half of [`push`](Self::push), split
    /// out for the panic-free driver: the treap must know the items
    /// before any summary call so that, when the summary panics mid-run,
    /// rank/next/prev queries for the partial audit trail stay coherent.
    /// Follow up with [`feed_summary`](Self::feed_summary) per item.
    ///
    /// # Panics
    ///
    /// Same validity requirements as [`push_run`](Self::push_run).
    pub fn index_run(&mut self, run: &[Item]) {
        self.validate_run(run);
        let OrderIndex::Materialized(order) = &mut self.order else {
            panic!("index_run requires a materialized stream; use index_run_in");
        };
        let start = self.n;
        order.extend_sorted_tagged(run.iter().cloned().zip(start..));
    }

    /// [`index_run`](Self::index_run) for a run minted inside `iv`,
    /// working in both representations (see
    /// [`push_run_in`](Self::push_run_in)).
    ///
    /// # Panics
    ///
    /// Same validity requirements as [`push_run`](Self::push_run); on
    /// an implicit stream additionally panics if the run-id space is
    /// exhausted (callers on the panic-free driver path check
    /// [`runs_exhausted`](Self::runs_exhausted) first).
    pub fn index_run_in(&mut self, iv: &Interval, run: &[Item]) {
        self.validate_run(run);
        match &mut self.order {
            OrderIndex::Materialized(order) => {
                let start = self.n;
                order.extend_sorted_tagged(run.iter().cloned().zip(start..));
            }
            OrderIndex::Implicit(imp) => {
                debug_assert!(
                    run.iter().all(|it| iv.contains(it)),
                    "run item escaped its mint interval"
                );
                imp.insert_run(iv, run);
            }
        }
    }

    /// Shared validity checks of the run entry points: strictly
    /// increasing items whose closed span contains no existing stream
    /// item. Also folds the run into the label-depth statistic.
    fn validate_run(&mut self, run: &[Item]) {
        assert!(
            run.iter().zip(run.iter().skip(1)).all(|(a, b)| a < b),
            "adversarial stream items must be distinct"
        );
        if let (Some(first), Some(last)) = (run.first(), run.last()) {
            let occupied = self.order.count_le(last) - self.order.count_less(first);
            assert!(occupied == 0, "adversarial stream items must be distinct");
        }
        for it in run {
            self.max_label_depth = self.max_label_depth.max(it.depth());
        }
    }

    /// Whether the stream can no longer accept runs: an implicit stream
    /// has a `u32` run-id space (4 × 10⁹ runs ≈ 10¹² items at the
    /// adversary's leaf sizes — a capacity probe, not a practical
    /// limit). Materialized streams never exhaust here.
    pub fn runs_exhausted(&self) -> bool {
        match &self.order {
            OrderIndex::Materialized(_) => false,
            OrderIndex::Implicit(imp) => imp.runs_exhausted(),
        }
    }

    /// Feeds one item (already indexed via [`index_run`](Self::index_run))
    /// to the summary and advances the stream length. The caller is
    /// responsible for feeding items in the same order they were indexed;
    /// the arrival tags assigned by `index_run` assume it.
    pub fn feed_summary(&mut self, item: Item) {
        self.summary.insert(item);
        self.n += 1;
    }

    /// Pre-allocates order-statistic index capacity for `additional`
    /// more stream items (see [`OsTree::reserve`]).
    pub fn reserve_items(&mut self, additional: usize) {
        self.order.reserve(additional);
    }

    /// Stream length so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// The longest universe label (in bytes) the stream has minted — the
    /// adversary-side cost of the continuity assumption. Balanced
    /// subdivision adds only O(log 1/ε) per leaf, but the in-order
    /// refinement chain can nest Θ(2^k) times when every gap ties (the
    /// store-everything summary), so worst-case depth is Θ(εN) bytes —
    /// matching the paper's remark that the string universe works "by
    /// making the strings even longer".
    pub fn max_label_depth(&self) -> usize {
        self.max_label_depth
    }

    /// Whether the stream is still empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `rank_σ(a)`: 1-based position of `a` in the sorted order of the
    /// stream (valid for any universe item, present or not).
    pub fn rank(&self, a: &Item) -> u64 {
        self.order.count_less(a) + 1
    }

    /// `next(σ, a)`: smallest stream item strictly greater than `a`.
    pub fn next(&self, a: &Item) -> Option<Item> {
        self.order.successor(a)
    }

    /// `prev(σ, b)`: largest stream item strictly smaller than `b`.
    pub fn prev(&self, b: &Item) -> Option<Item> {
        self.order.predecessor(b)
    }

    /// Smallest stream item.
    pub fn min(&self) -> Option<Item> {
        self.order.min()
    }

    /// Largest stream item.
    pub fn max(&self) -> Option<Item> {
        self.order.max()
    }

    /// Arrival position (0-based) of a stream item — the tag its treap
    /// node carries.
    pub fn arrival_of(&self, a: &Item) -> Option<u64> {
        self.order.tag_of(a)
    }

    /// Number of stream items strictly inside the open interval.
    pub fn count_inside(&self, iv: &Interval) -> u64 {
        let below_hi = match iv.hi() {
            Endpoint::PosInf => self.order.len(),
            Endpoint::Finite(h) => self.order.count_less(h),
            Endpoint::NegInf => 0,
        };
        let upto_lo = match iv.lo() {
            Endpoint::NegInf => 0,
            Endpoint::Finite(l) => self.order.count_le(l),
            Endpoint::PosInf => self.order.len(),
        };
        below_hi - upto_lo
    }

    /// The rank of an endpoint within the *restricted substream* of
    /// interval `iv`: the conceptual sorted list
    /// `[lo if finite] ++ (stream items strictly inside iv) ++ [hi if finite]`,
    /// 1-based. The −∞ sentinel has rank 0; the +∞ sentinel has rank
    /// (list length + 1). This realises Definition 5.1's
    /// `rank_σ̄` including the enclosing boundary items of `I^(ℓ,r)`.
    pub fn rank_in(&self, iv: &Interval, x: &Endpoint) -> u64 {
        let lo_finite = matches!(iv.lo(), Endpoint::Finite(_));
        let base = match iv.lo() {
            Endpoint::NegInf => 0,
            Endpoint::Finite(l) => self.order.count_le(l),
            // Interval construction forbids a +inf lower endpoint.
            // cqs-lint: allow(driver-no-panic)
            Endpoint::PosInf => unreachable!("interval lo cannot be +inf"),
        };
        match x {
            Endpoint::NegInf => 0,
            Endpoint::Finite(it) => {
                debug_assert!(
                    iv.lo().cmp_item(it).is_le() && iv.hi().cmp_item(it).is_ge(),
                    "rank_in item outside interval"
                );
                let le = self.order.count_le(it);
                (lo_finite as u64) + le.saturating_sub(base)
            }
            Endpoint::PosInf => (lo_finite as u64) + self.count_inside(iv) + 1,
        }
    }

    /// [`rank_in`](Self::rank_in) for a finite item without wrapping it
    /// in an [`Endpoint`] — the shape the gap scan iterates in, sparing
    /// an `Arc` clone per visited item.
    pub fn rank_in_item(&self, iv: &Interval, it: &Item) -> u64 {
        self.rank_in_item_from(iv, self.rank_base(iv), it)
    }

    /// The interval-lo data that [`rank_in_item`](Self::rank_in_item)
    /// recomputes per call: whether `lo` is finite, and `count_le(lo)`.
    /// Callers ranking many items within one interval hoist this once
    /// and use [`rank_in_item_from`](Self::rank_in_item_from), halving
    /// the treap descents of the scan.
    pub fn rank_base(&self, iv: &Interval) -> (bool, u64) {
        match iv.lo() {
            Endpoint::NegInf => (false, 0),
            Endpoint::Finite(l) => (true, self.order.count_le(l)),
            // Interval construction forbids a +inf lower endpoint. (No
            // lint suppression here: since the fused rank_in_item_from
            // took over the gap scan, no driver root reaches this.)
            Endpoint::PosInf => unreachable!("interval lo cannot be +inf"),
        }
    }

    /// [`rank_in_item`](Self::rank_in_item) with the interval-lo work
    /// precomputed by [`rank_base`](Self::rank_base) — one treap descent
    /// per item instead of two.
    pub fn rank_in_item_from(&self, iv: &Interval, base: (bool, u64), it: &Item) -> u64 {
        debug_assert!(
            iv.lo().cmp_item(it).is_le() && iv.hi().cmp_item(it).is_ge(),
            "rank_in item outside interval"
        );
        let (lo_finite, base) = base;
        let le = self.order.count_le(it);
        (lo_finite as u64) + le.saturating_sub(base)
    }

    /// Batched [`rank_in_item_from`](Self::rank_in_item_from) over the
    /// whole restricted item array: fills `out` with the Definition 5.1
    /// rank sequence
    /// `[rank(lo)] ++ [rank(it) for stored it inside iv] ++ [rank(hi)]`
    /// while collecting the enclosed restricted array — finite
    /// boundaries included — into `items` (O(1) arena clones). ALL ranks
    /// come from ONE batched treap walk ([`OsTree::multi_count_le`]):
    /// the finite boundaries ride along as the first/last queries (the
    /// open interval keeps the batch sorted), so the per-call
    /// `rank_base`/`rank_in` descents of the unfused version disappear,
    /// and a +∞ high sentinel needs only the tree size. `les` is the
    /// walk's count scratch.
    ///
    /// Returns the interior offset into `items`: `1` when the low
    /// boundary is finite (and therefore occupies `items[0]`), else `0`
    /// — interior item `j` of the restricted array lives at
    /// `items[j + offset]`.
    pub fn restricted_ranks_inside(
        &self,
        iv: &Interval,
        items: &mut Vec<Item>,
        les: &mut Vec<usize>,
        out: &mut Vec<u64>,
    ) -> usize {
        items.clear();
        let lo_finite = match iv.lo() {
            Endpoint::Finite(l) => {
                items.push(l.clone());
                true
            }
            _ => false,
        };
        self.for_each_stored_inside(iv, &mut |it| items.push(it.clone()));
        let hi_finite = match iv.hi() {
            Endpoint::Finite(h) => {
                items.push(h.clone());
                true
            }
            _ => false,
        };
        self.order.multi_count_le(items, les);
        let lo_off = usize::from(lo_finite);
        let base = if lo_finite {
            les.first().copied().unwrap_or(0) as u64
        } else {
            0
        };
        out.clear();
        out.reserve(les.len() + 2);
        // The low boundary's restricted rank is 1 when finite (it is the
        // array's first element), 0 for the −∞ sentinel.
        out.push(u64::from(lo_finite));
        let interior = les.len().saturating_sub(lo_off + usize::from(hi_finite));
        for &le in les.iter().skip(lo_off).take(interior) {
            out.push(u64::from(lo_finite) + (le as u64).saturating_sub(base));
        }
        let hi_rank = if hi_finite {
            u64::from(lo_finite) + (les.last().copied().unwrap_or(0) as u64).saturating_sub(base)
        } else {
            // +∞ sentinel: one past the whole restricted substream,
            // whose length is the tree size minus everything ≤ lo.
            u64::from(lo_finite) + self.order.len().saturating_sub(base) + 1
        };
        out.push(hi_rank);
        lo_off
    }

    /// Batched [`arrival_of`](Self::arrival_of): arrival tags for a
    /// *sorted* slice of query items, one treap walk for the whole
    /// batch.
    pub fn multi_arrival_of(&self, qs: &[Item], out: &mut Vec<Option<u64>>) {
        self.order.multi_tag_of(qs, out);
    }

    /// The restricted item array `I^(ℓ,r)`: the summary's stored items
    /// that fall strictly inside `iv`, *enclosed* by the interval's own
    /// endpoints (which, per the paper, count as array elements even when
    /// the summary has discarded them).
    pub fn restricted_item_array(&self, iv: &Interval) -> Vec<Endpoint> {
        let mut out = Vec::new();
        out.push(iv.lo().clone());
        self.summary.for_each_item(&mut |it| {
            if iv.contains(it) {
                out.push(Endpoint::Finite(it.clone()));
            }
        });
        out.push(iv.hi().clone());
        out
    }

    /// Visits, in order, the summary's stored items strictly inside `iv`
    /// — the allocation-free face of
    /// [`restricted_item_array`](Self::restricted_item_array), minus the
    /// two boundary entries the caller supplies itself.
    pub fn for_each_stored_inside(&self, iv: &Interval, f: &mut dyn FnMut(&Item)) {
        let lo = match iv.lo() {
            Endpoint::Finite(l) => Some(l),
            _ => None,
        };
        let hi = match iv.hi() {
            Endpoint::Finite(h) => Some(h),
            _ => None,
        };
        self.summary.for_each_item_between(lo, hi, f);
    }

    /// Number of summary-stored items strictly inside `iv`.
    pub fn stored_inside(&self, iv: &Interval) -> usize {
        let mut count = 0usize;
        self.for_each_stored_inside(iv, &mut |_| count += 1);
        count
    }

    /// True rank error of answering rank-query `r` with item `x`:
    /// `|rank_σ(x) − r|`.
    pub fn rank_error(&self, x: &Item, r: u64) -> u64 {
        self.rank(x).abs_diff(r)
    }
}

/// Verifies the *observable* part of stream indistinguishability
/// (Definition 3.2) between the two live states: equal item-array sizes,
/// and positional correspondence — the i-th stored item of each summary
/// arrived at the same position of its stream.
///
/// Returns `Err` with a human-readable reason on the first violation.
/// A violation means the summary is not deterministic-comparison-based
/// (or the construction is buggy); the paper's argument then does not
/// apply, so the harness treats it as fatal.
pub fn check_indistinguishable<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
) -> Result<(), String> {
    let ia = pi.summary.item_array();
    let ib = rho.summary.item_array();
    if ia.len() != ib.len() {
        return Err(format!(
            "item arrays differ in size: |I_pi| = {}, |I_rho| = {}",
            ia.len(),
            ib.len()
        ));
    }
    for (i, (a, b)) in ia.iter().zip(ib.iter()).enumerate() {
        let pa = pi.arrival_of(a);
        let pb = rho.arrival_of(b);
        if pa.is_none() || pb.is_none() {
            return Err(format!(
                "stored item at index {i} never appeared in its stream"
            ));
        }
        if pa != pb {
            return Err(format!(
                "stored items at index {i} arrived at different positions: {pa:?} vs {pb:?}"
            ));
        }
    }
    Ok(())
}

/// Incremental re-verifier for [`check_indistinguishable`] over a
/// growing pair of streams.
///
/// Arrival positions never change once an item enters its stream, so an
/// item's tag, once learned, is valid forever. The checker memoizes
/// tags per side in a direct-mapped arena-id table ([`TagTable`]): each
/// call streams the item arrays straight off the summaries (no
/// materialisation, no item clones for previously seen items) and only
/// never-seen items pay a treap lookup — all of them in one batched
/// walk. Amortized cost per leaf is therefore O(|I| + new·log N)
/// instead of O(|I|·log N), which is what makes the per-leaf
/// Definition 3.2 check affordable at depth k = 12.
///
/// Any anomaly (size mismatch, unknown item, tag divergence) falls back
/// to the full [`check_indistinguishable`] walk, so results — including
/// the diagnostic strings — are always identical to the non-memoized
/// check.
#[derive(Default)]
pub struct EquivalenceChecker {
    tag_pi: TagTable,
    tag_rho: TagTable,
    // Streaming scratch, reused across calls so a steady-state check
    // performs no allocation at all.
    tags_pi: Vec<u64>,
    tags_rho: Vec<u64>,
    misses: Vec<Item>,
    miss_pos: Vec<usize>,
    miss_tags: Vec<Option<u64>>,
}

impl EquivalenceChecker {
    /// A checker with an empty memo (first call runs at full cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Semantically identical to [`check_indistinguishable`] on the same
    /// pair of states; see the type docs for the cost model.
    pub fn check<S: ComparisonSummary<Item>>(
        &mut self,
        pi: &StreamState<S>,
        rho: &StreamState<S>,
    ) -> Result<(), String> {
        let ok = resolve_side_streaming(
            pi,
            &mut self.tag_pi,
            &mut self.tags_pi,
            &mut self.misses,
            &mut self.miss_pos,
            &mut self.miss_tags,
        ) && resolve_side_streaming(
            rho,
            &mut self.tag_rho,
            &mut self.tags_rho,
            &mut self.misses,
            &mut self.miss_pos,
            &mut self.miss_tags,
        );
        // Equal tag sequences imply equal array sizes (one tag per
        // stored item), so this is the whole Definition 3.2 condition.
        if ok && self.tags_pi == self.tags_rho {
            return Ok(());
        }
        // Anomaly: let the reference walk produce the diagnostic. The
        // tag tables stay — a memoized tag is an immutable fact about
        // its stream, never stale.
        check_indistinguishable(pi, rho)
    }
}

/// Direct-mapped arena-id → arrival-tag memo for one stream side.
///
/// Arrival positions never change once an item enters its stream, and
/// arena ids are globally unique with id equality proving label equality
/// ([`Item::arena_id`]), so `id → tag` is an immutable fact: the table
/// only ever grows and is never invalidated. Ids minted during one
/// adversary run form a compact range, so a plain vector offset by the
/// first id seen beats a hash map; `u32::MAX` marks unknown slots.
///
/// Tags are stored as `u32`: the table is the equivalence check's
/// hottest randomly-accessed structure, and halving its footprint keeps
/// it cache-resident at bench stream lengths. A stream position at or
/// beyond `u32::MAX` (never reached in practice) is simply not
/// memoized — the item stays a miss and resolves through the batched
/// treap walk, costing speed, never correctness.
#[derive(Default)]
struct TagTable {
    base: u32,
    tags: Vec<u32>,
}

impl TagTable {
    const EMPTY: u32 = u32::MAX;

    fn get(&self, id: u32) -> Option<u64> {
        let idx = (id as usize).checked_sub(self.base as usize)?;
        match self.tags.get(idx) {
            Some(&t) if t != Self::EMPTY => Some(u64::from(t)),
            _ => None,
        }
    }

    fn set(&mut self, id: u32, tag: u64) {
        let Ok(tag) = u32::try_from(tag) else {
            // Beyond the compact representation; the item would just
            // stay a cache miss.
            return;
        };
        if tag == Self::EMPTY {
            // The sentinel value itself is likewise unrepresentable.
            return;
        }
        if self.tags.is_empty() {
            self.base = id;
        } else if id < self.base {
            // Rare: an id below the first one seen. Re-base by
            // prepending empty slots.
            let shift = (self.base - id) as usize;
            let old = std::mem::take(&mut self.tags);
            self.tags = std::iter::repeat_n(Self::EMPTY, shift).chain(old).collect();
            self.base = id;
        }
        let idx = (id - self.base) as usize;
        if idx >= self.tags.len() {
            self.tags.resize(idx + 1, Self::EMPTY);
        }
        if let Some(slot) = self.tags.get_mut(idx) {
            *slot = tag;
        }
    }
}

/// Arrival tags of one side's item array, streamed straight off the
/// summary (no intermediate `item_array` materialisation): items seen in
/// any earlier call resolve from the [`TagTable`] in O(1) with no item
/// clone at all, and the newly stored remainder — sorted, because the
/// walk is — pays ONE batched treap walk
/// ([`StreamState::multi_arrival_of`]) instead of an O(log N) descent
/// per miss, then lands in the table for every later call. Fills `tags`
/// with the array's tag sequence. Returns `false` if any item never
/// appeared in its stream (an anomaly; the caller falls back to the
/// reference walk for the diagnostic).
fn resolve_side_streaming<S: ComparisonSummary<Item>>(
    st: &StreamState<S>,
    table: &mut TagTable,
    tags: &mut Vec<u64>,
    misses: &mut Vec<Item>,
    miss_pos: &mut Vec<usize>,
    miss_tags: &mut Vec<Option<u64>>,
) -> bool {
    tags.clear();
    misses.clear();
    miss_pos.clear();
    // The dense id-indexed table spans the full range of arena ids the
    // run has minted — Θ(N) slots. That is the right trade on a
    // materialized stream (which is Θ(N) anyway), but it would be the
    // single superlinear structure of an interval-compressed stream,
    // whose own index already memoizes id → tag in bounded space. So
    // implicit streams skip the table: every item goes through the
    // batched lookup, which the implicit index answers from its memo.
    let memoize = !st.is_implicit();
    // Pass 1: table lookups; misses are queued for the batch, with a
    // placeholder tag marking the slot to patch.
    st.summary.for_each_item(&mut |q| {
        let hit = if memoize {
            q.arena_id().and_then(|id| table.get(id))
        } else {
            None
        };
        match hit {
            Some(t) => tags.push(t),
            None => {
                miss_pos.push(tags.len());
                tags.push(0);
                misses.push(q.clone());
            }
        }
    });
    // Pass 2: all index lookups in one walk.
    st.multi_arrival_of(misses, miss_tags);
    if miss_tags.len() != miss_pos.len() {
        return false;
    }
    // Pass 3: patch the batched answers into their slots and memoize.
    for ((&pos, mt), q) in miss_pos.iter().zip(miss_tags.iter()).zip(misses.iter()) {
        match (tags.get_mut(pos), mt) {
            (Some(slot), Some(t)) => {
                *slot = *t;
                if memoize {
                    if let Some(id) = q.arena_id() {
                        table.set(id, *t);
                    }
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ExactSummary;
    use cqs_universe::generate_increasing;

    fn state_with(n: usize) -> StreamState<ExactSummary<Item>> {
        let mut st = StreamState::new(ExactSummary::new());
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn ranks_and_neighbours() {
        let st = state_with(10);
        let items = st.summary.item_array();
        for (i, it) in items.iter().enumerate() {
            assert_eq!(st.rank(it), i as u64 + 1);
        }
        assert_eq!(st.next(&items[3]), Some(items[4].clone()));
        assert_eq!(st.prev(&items[3]), Some(items[2].clone()));
        assert_eq!(st.min(), Some(items[0].clone()));
        assert_eq!(st.max(), Some(items[9].clone()));
    }

    #[test]
    fn rank_in_whole_interval_matches_global_rank() {
        let st = state_with(10);
        let iv = Interval::whole();
        let items = st.summary.item_array();
        assert_eq!(st.rank_in(&iv, &Endpoint::NegInf), 0);
        assert_eq!(st.rank_in(&iv, &Endpoint::PosInf), 11);
        for (i, it) in items.iter().enumerate() {
            assert_eq!(st.rank_in(&iv, &Endpoint::Finite(it.clone())), i as u64 + 1);
        }
    }

    #[test]
    fn rank_in_finite_interval_counts_boundary_as_one() {
        let st = state_with(10);
        let items = st.summary.item_array();
        // Interval (items[2], items[7]): inside are items 3..=6 (4 items).
        let iv = Interval::open(items[2].clone(), items[7].clone());
        assert_eq!(st.count_inside(&iv), 4);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[2].clone())), 1);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[3].clone())), 2);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[6].clone())), 5);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[7].clone())), 6);
    }

    #[test]
    fn restricted_item_array_encloses_with_boundaries() {
        let st = state_with(10);
        let items = st.summary.item_array();
        let iv = Interval::open(items[2].clone(), items[7].clone());
        let arr = st.restricted_item_array(&iv);
        // lo + 4 inside + hi.
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0], Endpoint::Finite(items[2].clone()));
        assert_eq!(arr[5], Endpoint::Finite(items[7].clone()));
        assert_eq!(st.stored_inside(&iv), 4);
    }

    #[test]
    fn identical_streams_are_indistinguishable() {
        let a = state_with(20);
        let b = state_with(20);
        assert!(check_indistinguishable(&a, &b).is_ok());
    }

    #[test]
    fn different_length_arrays_are_flagged() {
        let a = state_with(20);
        let b = state_with(21);
        assert!(check_indistinguishable(&a, &b).is_err());
    }

    #[test]
    fn incremental_checker_matches_reference_as_streams_grow() {
        let items = generate_increasing(&Interval::whole(), 30);
        let mut a = StreamState::new(ExactSummary::new());
        let mut b = StreamState::new(ExactSummary::new());
        let mut chk = EquivalenceChecker::new();
        for it in items {
            a.push(it.clone());
            b.push(it);
            assert_eq!(chk.check(&a, &b), check_indistinguishable(&a, &b));
        }
    }

    #[test]
    fn incremental_checker_reports_reference_diagnostics() {
        let items = generate_increasing(&Interval::whole(), 8);
        let mut a = StreamState::new(ExactSummary::new());
        let mut b = StreamState::new(ExactSummary::new());
        let mut chk = EquivalenceChecker::new();
        // Same first four items, verified once to warm the memo.
        for it in &items[..4] {
            a.push(it.clone());
            b.push(it.clone());
        }
        assert!(chk.check(&a, &b).is_ok());
        // Diverge: the same two items arrive in swapped order, so the
        // sorted arrays agree but positional correspondence breaks and
        // the memoized path must produce the exact reference diagnostics.
        a.push(items[5].clone());
        a.push(items[4].clone());
        b.push(items[4].clone());
        b.push(items[5].clone());
        assert_eq!(chk.check(&a, &b), check_indistinguishable(&a, &b));
        assert!(chk.check(&a, &b).is_err());
        // After a fallback the memo restarts cold and keeps agreeing.
        a.push(items[6].clone());
        b.push(items[6].clone());
        assert_eq!(chk.check(&a, &b), check_indistinguishable(&a, &b));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_stream_items_rejected() {
        let mut st = StreamState::new(ExactSummary::new());
        let it = generate_increasing(&Interval::whole(), 1).pop().unwrap();
        st.push(it.clone());
        st.push(it);
    }

    #[test]
    fn push_run_matches_per_item_push() {
        let items = generate_increasing(&Interval::whole(), 24);
        let mut bulk = StreamState::new(ExactSummary::new());
        bulk.push_run(&items);
        let mut single = StreamState::new(ExactSummary::new());
        for it in items.clone() {
            single.push(it);
        }
        assert_eq!(bulk.len(), single.len());
        assert_eq!(bulk.summary.item_array(), single.summary.item_array());
        for it in &items {
            assert_eq!(bulk.rank(it), single.rank(it));
            assert_eq!(bulk.arrival_of(it), single.arrival_of(it));
            assert_eq!(bulk.next(it), single.next(it));
            assert_eq!(bulk.prev(it), single.prev(it));
        }
    }

    #[test]
    fn push_run_tracks_label_depth_and_peak() {
        let items = generate_increasing(&Interval::whole(), 8);
        let depth = items.iter().map(|i| i.depth()).max().unwrap();
        let mut st = StreamState::new(ExactSummary::new());
        let peak = st.push_run(&items);
        assert_eq!(peak, 8, "exact summary peak is the run length");
        assert_eq!(st.max_label_depth(), depth);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn push_run_rejects_span_overlapping_existing_items() {
        let items = generate_increasing(&Interval::whole(), 4);
        let mut st = StreamState::new(ExactSummary::new());
        st.push(items[1].clone());
        // The run's closed span [items[0], items[2]] contains items[1].
        st.push_run(&[items[0].clone(), items[2].clone()]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn push_run_rejects_non_increasing_runs() {
        let items = generate_increasing(&Interval::whole(), 2);
        let mut st = StreamState::new(ExactSummary::new());
        st.push_run(&[items[1].clone(), items[0].clone()]);
    }
}
