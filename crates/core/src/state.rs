//! A live (stream, summary) pair with order-statistic indexing.
//!
//! The adversary grows two of these — one for π, one for ϱ. Each tracks:
//!
//! * the summary under attack (any [`ComparisonSummary<Item>`]);
//! * an order-statistic treap over all stream items, giving the paper's
//!   `rank_σ(a)`, `next(σ, a)` and `prev(σ, b)` in O(log N);
//! * each item's arrival position, used to *verify* (not assume)
//!   indistinguishability: Definition 3.2(2) demands that the i-th stored
//!   items of the two summaries arrived at the same stream position.

use std::collections::BTreeMap;

use cqs_ostree::OsTree;
use cqs_universe::{Endpoint, Interval, Item};

use crate::model::ComparisonSummary;

/// A stream being fed to a summary, with full order-statistic indexing.
pub struct StreamState<S> {
    /// The summary under adversarial attack.
    pub summary: S,
    order: OsTree<Item>,
    arrival: BTreeMap<Item, u64>,
    n: u64,
    max_label_depth: usize,
}

impl<S: ComparisonSummary<Item>> StreamState<S> {
    /// Wraps a fresh summary; the stream starts empty.
    pub fn new(summary: S) -> Self {
        StreamState {
            summary,
            order: OsTree::new(),
            arrival: BTreeMap::new(),
            n: 0,
            max_label_depth: 0,
        }
    }

    /// Appends one item to the stream and feeds it to the summary.
    ///
    /// # Panics
    ///
    /// Panics if the item already occurred — the adversarial streams
    /// consist of distinct items, and `rank_σ` is only well-defined then.
    pub fn push(&mut self, item: Item) {
        self.max_label_depth = self.max_label_depth.max(item.depth());
        let prev = self.arrival.insert(item.clone(), self.n);
        assert!(prev.is_none(), "adversarial stream items must be distinct");
        self.order.insert(item.clone());
        self.summary.insert(item);
        self.n += 1;
    }

    /// Stream length so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// The longest universe label (in bytes) the stream has minted — the
    /// adversary-side cost of the continuity assumption. Balanced
    /// subdivision adds only O(log 1/ε) per leaf, but the in-order
    /// refinement chain can nest Θ(2^k) times when every gap ties (the
    /// store-everything summary), so worst-case depth is Θ(εN) bytes —
    /// matching the paper's remark that the string universe works "by
    /// making the strings even longer".
    pub fn max_label_depth(&self) -> usize {
        self.max_label_depth
    }

    /// Whether the stream is still empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `rank_σ(a)`: 1-based position of `a` in the sorted order of the
    /// stream (valid for any universe item, present or not).
    pub fn rank(&self, a: &Item) -> u64 {
        self.order.rank(a) as u64
    }

    /// `next(σ, a)`: smallest stream item strictly greater than `a`.
    pub fn next(&self, a: &Item) -> Option<Item> {
        self.order.successor(a).cloned()
    }

    /// `prev(σ, b)`: largest stream item strictly smaller than `b`.
    pub fn prev(&self, b: &Item) -> Option<Item> {
        self.order.predecessor(b).cloned()
    }

    /// Smallest stream item.
    pub fn min(&self) -> Option<Item> {
        self.order.min().cloned()
    }

    /// Largest stream item.
    pub fn max(&self) -> Option<Item> {
        self.order.max().cloned()
    }

    /// Arrival position (0-based) of a stream item.
    pub fn arrival_of(&self, a: &Item) -> Option<u64> {
        self.arrival.get(a).copied()
    }

    /// Number of stream items strictly inside the open interval.
    pub fn count_inside(&self, iv: &Interval) -> u64 {
        let below_hi = match iv.hi() {
            Endpoint::PosInf => self.order.len(),
            Endpoint::Finite(h) => self.order.count_less(h),
            Endpoint::NegInf => 0,
        };
        let upto_lo = match iv.lo() {
            Endpoint::NegInf => 0,
            Endpoint::Finite(l) => self.order.count_le(l),
            Endpoint::PosInf => self.order.len(),
        };
        (below_hi - upto_lo) as u64
    }

    /// The rank of an endpoint within the *restricted substream* of
    /// interval `iv`: the conceptual sorted list
    /// `[lo if finite] ++ (stream items strictly inside iv) ++ [hi if finite]`,
    /// 1-based. The −∞ sentinel has rank 0; the +∞ sentinel has rank
    /// (list length + 1). This realises Definition 5.1's
    /// `rank_σ̄` including the enclosing boundary items of `I^(ℓ,r)`.
    pub fn rank_in(&self, iv: &Interval, x: &Endpoint) -> u64 {
        let lo_finite = matches!(iv.lo(), Endpoint::Finite(_));
        let base = match iv.lo() {
            Endpoint::NegInf => 0,
            Endpoint::Finite(l) => self.order.count_le(l) as u64,
            Endpoint::PosInf => unreachable!("interval lo cannot be +inf"),
        };
        match x {
            Endpoint::NegInf => 0,
            Endpoint::Finite(it) => {
                debug_assert!(
                    iv.lo().cmp_item(it).is_le() && iv.hi().cmp_item(it).is_ge(),
                    "rank_in item outside interval"
                );
                let le = self.order.count_le(it) as u64;
                (lo_finite as u64) + le.saturating_sub(base)
            }
            Endpoint::PosInf => (lo_finite as u64) + self.count_inside(iv) + 1,
        }
    }

    /// The restricted item array `I^(ℓ,r)`: the summary's stored items
    /// that fall strictly inside `iv`, *enclosed* by the interval's own
    /// endpoints (which, per the paper, count as array elements even when
    /// the summary has discarded them).
    pub fn restricted_item_array(&self, iv: &Interval) -> Vec<Endpoint> {
        let mut out = Vec::new();
        out.push(iv.lo().clone());
        for it in self.summary.item_array() {
            if iv.contains(&it) {
                out.push(Endpoint::Finite(it));
            }
        }
        out.push(iv.hi().clone());
        out
    }

    /// Number of summary-stored items strictly inside `iv`.
    pub fn stored_inside(&self, iv: &Interval) -> usize {
        self.summary
            .item_array()
            .iter()
            .filter(|it| iv.contains(it))
            .count()
    }

    /// True rank error of answering rank-query `r` with item `x`:
    /// `|rank_σ(x) − r|`.
    pub fn rank_error(&self, x: &Item, r: u64) -> u64 {
        self.rank(x).abs_diff(r)
    }
}

/// Verifies the *observable* part of stream indistinguishability
/// (Definition 3.2) between the two live states: equal item-array sizes,
/// and positional correspondence — the i-th stored item of each summary
/// arrived at the same position of its stream.
///
/// Returns `Err` with a human-readable reason on the first violation.
/// A violation means the summary is not deterministic-comparison-based
/// (or the construction is buggy); the paper's argument then does not
/// apply, so the harness treats it as fatal.
pub fn check_indistinguishable<S: ComparisonSummary<Item>>(
    pi: &StreamState<S>,
    rho: &StreamState<S>,
) -> Result<(), String> {
    let ia = pi.summary.item_array();
    let ib = rho.summary.item_array();
    if ia.len() != ib.len() {
        return Err(format!(
            "item arrays differ in size: |I_pi| = {}, |I_rho| = {}",
            ia.len(),
            ib.len()
        ));
    }
    for (i, (a, b)) in ia.iter().zip(ib.iter()).enumerate() {
        let pa = pi.arrival_of(a);
        let pb = rho.arrival_of(b);
        if pa.is_none() || pb.is_none() {
            return Err(format!(
                "stored item at index {i} never appeared in its stream"
            ));
        }
        if pa != pb {
            return Err(format!(
                "stored items at index {i} arrived at different positions: {pa:?} vs {pb:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ExactSummary;
    use cqs_universe::generate_increasing;

    fn state_with(n: usize) -> StreamState<ExactSummary<Item>> {
        let mut st = StreamState::new(ExactSummary::new());
        for it in generate_increasing(&Interval::whole(), n) {
            st.push(it);
        }
        st
    }

    #[test]
    fn ranks_and_neighbours() {
        let st = state_with(10);
        let items = st.summary.item_array();
        for (i, it) in items.iter().enumerate() {
            assert_eq!(st.rank(it), i as u64 + 1);
        }
        assert_eq!(st.next(&items[3]), Some(items[4].clone()));
        assert_eq!(st.prev(&items[3]), Some(items[2].clone()));
        assert_eq!(st.min(), Some(items[0].clone()));
        assert_eq!(st.max(), Some(items[9].clone()));
    }

    #[test]
    fn rank_in_whole_interval_matches_global_rank() {
        let st = state_with(10);
        let iv = Interval::whole();
        let items = st.summary.item_array();
        assert_eq!(st.rank_in(&iv, &Endpoint::NegInf), 0);
        assert_eq!(st.rank_in(&iv, &Endpoint::PosInf), 11);
        for (i, it) in items.iter().enumerate() {
            assert_eq!(st.rank_in(&iv, &Endpoint::Finite(it.clone())), i as u64 + 1);
        }
    }

    #[test]
    fn rank_in_finite_interval_counts_boundary_as_one() {
        let st = state_with(10);
        let items = st.summary.item_array();
        // Interval (items[2], items[7]): inside are items 3..=6 (4 items).
        let iv = Interval::open(items[2].clone(), items[7].clone());
        assert_eq!(st.count_inside(&iv), 4);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[2].clone())), 1);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[3].clone())), 2);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[6].clone())), 5);
        assert_eq!(st.rank_in(&iv, &Endpoint::Finite(items[7].clone())), 6);
    }

    #[test]
    fn restricted_item_array_encloses_with_boundaries() {
        let st = state_with(10);
        let items = st.summary.item_array();
        let iv = Interval::open(items[2].clone(), items[7].clone());
        let arr = st.restricted_item_array(&iv);
        // lo + 4 inside + hi.
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[0], Endpoint::Finite(items[2].clone()));
        assert_eq!(arr[5], Endpoint::Finite(items[7].clone()));
        assert_eq!(st.stored_inside(&iv), 4);
    }

    #[test]
    fn identical_streams_are_indistinguishable() {
        let a = state_with(20);
        let b = state_with(20);
        assert!(check_indistinguishable(&a, &b).is_ok());
    }

    #[test]
    fn different_length_arrays_are_flagged() {
        let a = state_with(20);
        let b = state_with(21);
        assert!(check_indistinguishable(&a, &b).is_err());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_stream_items_rejected() {
        let mut st = StreamState::new(ExactSummary::new());
        let it = generate_increasing(&Interval::whole(), 1).pop().unwrap();
        st.push(it.clone());
        st.push(it);
    }
}
