//! Theorems 6.3 / 6.4 — the randomized lower bound via derandomization.
//!
//! If a randomized comparison-based summary fails with probability
//! δ < 1/N!, a union bound over all N! orderings of any fixed item set
//! shows some choice of random bits succeeds on *every* stream of length
//! N; hard-coding those bits yields a deterministic summary, to which the
//! deterministic lower bound applies. Theorem 6.4 strengthens the prior
//! Ω((1/ε)·log log 1/δ) bound to hold at every stream length because
//! Theorem 2.2 holds at every stream length.
//!
//! This module provides the exact arithmetic of that reduction (log-space
//! factorials, the bound values) — the executable side of the argument
//! (a fixed-seed KLL sketch run through the adversary) lives in the
//! bench crate.

use crate::eps::Eps;

/// ln(n!) via the log-gamma series (Stirling with correction terms);
/// exact summation below 32 to keep small cases precise.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 32 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
}

/// log₂(1/δ) for the theorem's δ = 1/N!.
pub fn log2_inv_delta(n: u64) -> f64 {
    ln_factorial(n) / std::f64::consts::LN_2
}

/// The randomized space lower bound Ω((1/ε)·log log 1/δ) at δ = 1/N!,
/// with the paper's unoptimised constants elided (we report the raw
/// (1/ε)·log₂ log₂ (1/δ) shape).
pub fn randomized_bound_shape(eps: Eps, n: u64) -> f64 {
    let ll = log2_inv_delta(n).max(2.0).log2();
    eps.inverse() as f64 * ll
}

/// The deterministic bound shape (1/ε)·log₂(εN) for comparison.
pub fn deterministic_bound_shape(eps: Eps, n: u64) -> f64 {
    let en = (n as f64 / eps.inverse() as f64).max(2.0);
    eps.inverse() as f64 * en.log2()
}

/// Whether a failure probability δ (given as ln δ) is small enough for
/// the union bound over all N! orderings: ln δ + ln N! < 0.
pub fn union_bound_applies(ln_delta: f64, n: u64) -> bool {
    ln_delta + ln_factorial(n) < 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // ln(0!) and ln(1!) are exactly 0.0 by definition of the sum.
    #[allow(clippy::float_cmp)]
    fn ln_factorial_small_values_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_factorial_stirling_matches_summation() {
        // At the switchover the series must agree with direct summation.
        let direct: f64 = (2..=40u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(40) - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn union_bound_threshold() {
        // δ = 1/N! is exactly the edge; slightly smaller passes.
        let n = 100;
        let ln_delta = -ln_factorial(n) - 1.0;
        assert!(union_bound_applies(ln_delta, n));
        let ln_delta_big = -ln_factorial(n) + 1.0;
        assert!(!union_bound_applies(ln_delta_big, n));
    }

    #[test]
    fn log_log_inv_delta_is_theta_log_n() {
        // At δ = 1/N!: log₂(1/δ) = log₂ N! = Θ(N log N), so
        // log₂ log₂ (1/δ) = log₂ N + Θ(log log N). This identity is the
        // engine of Theorem 6.4 — it turns the deterministic Ω(log εN)
        // into the randomized Ω(log log 1/δ) at every stream length.
        for exp in [10u32, 16, 24] {
            let n = 1u64 << exp;
            let ll = log2_inv_delta(n).log2();
            let lo = exp as f64;
            let hi = exp as f64 + 2.0 * (exp as f64).log2() + 2.0;
            assert!(
                ll >= lo && ll <= hi,
                "n=2^{exp}: loglog(1/δ)={ll} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn randomized_and_deterministic_bounds_same_order() {
        // Because log log(1/N!) = Θ(log N), the two bound shapes stay
        // within a constant factor of each other at fixed ε as N grows.
        let eps = Eps::from_inverse(64);
        for exp in [16u32, 20, 24, 28] {
            let n = 1u64 << exp;
            let ratio = randomized_bound_shape(eps, n) / deterministic_bound_shape(eps, n);
            assert!(
                (0.5..=4.0).contains(&ratio),
                "n=2^{exp}: ratio {ratio} not Θ(1)"
            );
        }
    }
}
