//! The space-gap inequality (Lemma 5.2) and its consequences.
//!
//! For any execution of `AdvStrategy(k, …)` with final gap `g` in the
//! node's input intervals, the restricted item array must satisfy
//!
//! ```text
//!   S_k ≥ c · (log₂ g + 1) · (N_k/g − 1/(4ε)),   c = 1/8 − 2ε.
//! ```
//!
//! Setting g to its correctness ceiling 2εN_k (Lemma 3.4) yields
//! Theorem 2.2: S_k ≥ c·(k+1)/(4ε) = Ω((1/ε)·log εN).

use crate::eps::Eps;

/// Numerator description of the paper's constant c = 1/8 − 2ε (the paper
/// notes it does not optimize this constant).
pub const SPACE_GAP_C_NUM: &str = "c = 1/8 - 2*eps";

/// The constant c = 1/8 − 2ε from Lemma 5.2.
pub fn space_gap_c(eps: Eps) -> f64 {
    0.125 - 2.0 * eps.value()
}

/// Right-hand side of the space-gap inequality for a node that appended
/// `n_k` items and ended with gap `g` in its input intervals.
///
/// Non-positive (hence trivially satisfied) when `g ≥ 4εn_k` or when
/// ε ≥ 1/16.
pub fn space_gap_rhs(eps: Eps, n_k: u64, g: u64) -> f64 {
    assert!(g >= 1, "gap is always at least 1");
    let c = space_gap_c(eps);
    c * ((g as f64).log2() + 1.0) * (n_k as f64 / g as f64 - eps.inverse() as f64 / 4.0)
}

/// Checks `s_k ≥ RHS` with a small float tolerance.
pub fn space_gap_holds(eps: Eps, n_k: u64, g: u64, s_k: usize) -> bool {
    s_k as f64 >= space_gap_rhs(eps, n_k, g) - 1e-9
}

/// Claim 1: the node gap dominates the sum of its children's gaps,
/// `g ≥ g′ + g″ − 1`.
pub fn claim1_holds(g: u64, g_prime: u64, g_dprime: u64) -> bool {
    g + 1 >= g_prime + g_dprime
}

/// Theorem 2.2's concrete space bound for a *correct* summary at the top
/// level: evaluating the space-gap RHS at the correctness ceiling
/// g = 2εN_k = 2^{k+1} gives c·(log₂(2εN_k)+1)·(1/(4ε)) = c·(k+2)/(4ε).
pub fn theorem22_bound(eps: Eps, k: u32) -> f64 {
    let c = space_gap_c(eps);
    c * (k as f64 + 2.0) * eps.inverse() as f64 / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_decreases_in_g() {
        let eps = Eps::from_inverse(64);
        let n_k = eps.stream_len(8);
        let mut prev = f64::INFINITY;
        for g in [1u64, 2, 4, 16, 64, 256, 1024] {
            let r = space_gap_rhs(eps, n_k, g);
            assert!(r <= prev + 1e-9, "RHS not non-increasing at g={g}");
            prev = r;
        }
    }

    #[test]
    fn rhs_nonpositive_beyond_4_eps_n() {
        let eps = Eps::from_inverse(32);
        let n_k = eps.stream_len(6);
        let g = 4 * n_k / eps.inverse(); // 4εN
        assert!(space_gap_rhs(eps, n_k, g) <= 1e-9);
    }

    #[test]
    fn theorem22_matches_rhs_at_gap_ceiling() {
        let eps = Eps::from_inverse(64);
        for k in 2..=10u32 {
            let n_k = eps.stream_len(k);
            let g = eps.gap_bound(n_k); // 2εN_k = 2^{k+1}
            let rhs = space_gap_rhs(eps, n_k, g);
            let thm = theorem22_bound(eps, k);
            assert!(
                (rhs - thm).abs() < 1e-6,
                "k={k}: rhs={rhs} vs theorem bound={thm}"
            );
        }
    }

    #[test]
    fn theorem22_grows_linearly_in_k() {
        let eps = Eps::from_inverse(128);
        let b4 = theorem22_bound(eps, 4);
        let b8 = theorem22_bound(eps, 8);
        // (8+2)/(4+2) growth.
        assert!((b8 / b4 - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn claim1_edge_cases() {
        assert!(claim1_holds(5, 3, 3)); // 5 ≥ 3+3−1
        assert!(claim1_holds(1, 1, 1));
        assert!(!claim1_holds(4, 3, 3)); // 4 < 5
    }

    #[test]
    fn constant_positive_only_below_sixteenth() {
        assert!(space_gap_c(Eps::from_inverse(17)) > 0.0);
        assert!(space_gap_c(Eps::from_inverse(16)) <= 0.0);
    }
}
