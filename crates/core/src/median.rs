//! Theorem 6.1 — finding an approximate median is as hard as the full
//! quantile problem.
//!
//! Reduction: run the adversarial construction. Either the gap stayed
//! within 4εN — then the space-gap analysis already forces
//! Ω((1/ε)·log εN) space — or there is a quantile ϕ′ with no stored
//! 2ε-approximation; appending ≤ N items *below* everything (if ϕ′ < ½)
//! or *above* everything (if ϕ′ ≥ ½) slides that hole onto the median,
//! and the summary cannot answer an ε-approximate median query on the
//! padded stream.

use cqs_universe::{generate_increasing, Endpoint, Interval, Item};

use crate::adversary::AdversaryOutcome;
use crate::gap::compute_gap;
use crate::model::ComparisonSummary;
use crate::spacegap::space_gap_rhs;

/// Which horn of Theorem 6.1's dilemma the run landed on.
#[derive(Clone, Debug)]
pub enum MedianOutcome {
    /// Gap ≤ 4εN: the space-gap inequality lower-bounds the space.
    SpaceBound {
        /// Items stored at the end of the construction.
        stored: usize,
        /// The space-gap RHS at the measured gap.
        rhs: f64,
    },
    /// Gap > 4εN: after padding, the median query fails.
    MedianFailure {
        /// The uncovered quantile ϕ′ before padding.
        phi_prime: f64,
        /// Items appended below/above everything.
        appended: u64,
        /// Total stream length after padding.
        total_len: u64,
        /// Median target rank on the padded stream.
        median_rank: u64,
        /// Rank error of the π-copy's median answer.
        err_pi: u64,
        /// Rank error of the ϱ-copy's median answer.
        err_rho: u64,
        /// Permitted budget ⌊ε·total_len⌋.
        budget: u64,
    },
}

/// Full report of the median reduction.
#[derive(Clone, Debug)]
pub struct MedianReport {
    /// Gap at the end of the base construction.
    pub gap: u64,
    /// The 4εN threshold separating the two horns.
    pub threshold: u64,
    /// The outcome.
    pub outcome: MedianOutcome,
}

impl MedianReport {
    /// Whether the run demonstrates the theorem (either horn suffices).
    pub fn demonstrates_theorem(&self) -> bool {
        match &self.outcome {
            MedianOutcome::SpaceBound { stored, rhs } => *stored as f64 >= rhs - 1e-9,
            MedianOutcome::MedianFailure {
                err_pi,
                err_rho,
                budget,
                ..
            } => *err_pi > *budget || *err_rho > *budget,
        }
    }
}

/// Runs the median reduction on a finished adversary outcome (consuming
/// it: the failure horn appends padding items to both streams).
pub fn median_reduction<S: ComparisonSummary<Item>>(outcome: AdversaryOutcome<S>) -> MedianReport {
    quantile_reduction(outcome, 0.5)
}

/// The generalisation the paper notes in passing: the same reduction
/// works "for any other ϕ-quantile as long as ε ≪ ϕ ≪ 1 − ε". Padding
/// below everything raises the hole's quantile; padding above lowers
/// it; we pick whichever direction moves the uncovered quantile ϕ′ onto
/// the requested target ϕ.
///
/// # Panics
///
/// Panics unless `0 < phi < 1`.
pub fn quantile_reduction<S: ComparisonSummary<Item>>(
    mut outcome: AdversaryOutcome<S>,
    phi: f64,
) -> MedianReport {
    let eps = outcome.eps;
    let n = eps.stream_len(outcome.k);
    let threshold = 2 * eps.gap_bound(n); // 4εN
    let whole = Interval::whole();
    let gap = compute_gap(&outcome.pi, &outcome.rho, &whole, &whole);

    if gap.gap <= threshold {
        return MedianReport {
            gap: gap.gap,
            threshold,
            outcome: MedianOutcome::SpaceBound {
                stored: outcome.pi.summary.stored_count(),
                rhs: space_gap_rhs(eps, n, gap.gap),
            },
        };
    }

    // ϕ′·N sits mid-gap; no stored item is a 2ε-approximate ϕ′-quantile.
    let r_low = outcome.pi.rank_in(&whole, &gap.pi_low);
    let r_high = outcome.rho.rank_in(&whole, &gap.rho_high);
    let t = ((r_low + r_high) / 2).clamp(1, n);
    let phi_prime = t as f64 / n as f64;

    assert!(phi > 0.0 && phi < 1.0, "phi must be strictly inside (0, 1)");
    // Padding, generalised from the paper's median case: append m items
    // so the hole at rank t lands on rank ϕ·(N + m) of the padded stream.
    //
    //   hole below target (t < ϕN): pad below everything, which raises
    //   the hole's rank to t + m; solve t + m = ϕ(N + m), giving
    //   m = (ϕN − t)/(1 − ϕ).
    //
    //   hole at/above target: pad above everything, leaving the hole's
    //   rank at t; solve t = ϕ(N + m), giving m = t/ϕ − N.
    //
    // For the paper's ε ≪ ϕ ≪ 1 − ε regime m stays O(N); we cap at 4N
    // as a guard for extreme ϕ.
    let phi_n = phi * n as f64;
    let below = (t as f64) < phi_n;
    let m = if below {
        (((phi_n - t as f64) / (1.0 - phi)).round() as u64).min(4 * n)
    } else {
        (((t as f64) / phi - n as f64).round() as u64).min(4 * n)
    };
    let pad_interval = |st: &crate::state::StreamState<crate::model::MaxSpaceTracker<S>>| {
        if below {
            Interval::new(
                Endpoint::NegInf,
                Endpoint::Finite(st.min().expect("non-empty stream")),
            )
        } else {
            Interval::new(
                Endpoint::Finite(st.max().expect("non-empty stream")),
                Endpoint::PosInf,
            )
        }
    };
    let pad_pi = generate_increasing(&pad_interval(&outcome.pi), m as usize);
    let pad_rho = generate_increasing(&pad_interval(&outcome.rho), m as usize);
    for (a, b) in pad_pi.into_iter().zip(pad_rho) {
        outcome.pi.push(a);
        outcome.rho.push(b);
    }

    let total = n + m;
    let median_rank = ((phi * total as f64) as u64).clamp(1, total);
    let budget = eps.rank_budget(total);
    let ans_pi = outcome
        .pi
        .summary
        .query_rank(median_rank)
        .expect("non-empty");
    let ans_rho = outcome
        .rho
        .summary
        .query_rank(median_rank)
        .expect("non-empty");
    let err_pi = outcome.pi.rank(&ans_pi).abs_diff(median_rank);
    let err_rho = outcome.rho.rank(&ans_rho).abs_diff(median_rank);

    MedianReport {
        gap: gap.gap,
        threshold,
        outcome: MedianOutcome::MedianFailure {
            phi_prime,
            appended: m,
            total_len: total,
            median_rank,
            err_pi,
            err_rho,
            budget,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::run_adversary;
    use crate::eps::Eps;
    use crate::reference::{DecimatedSummary, ExactSummary};

    #[test]
    fn exact_summary_lands_on_space_horn() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 4, ExactSummary::new);
        let rep = median_reduction(out);
        assert!(matches!(rep.outcome, MedianOutcome::SpaceBound { .. }));
        assert!(rep.demonstrates_theorem());
    }

    #[test]
    fn starved_summary_lands_on_failure_horn() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 6, || DecimatedSummary::new(3));
        let rep = median_reduction(out);
        match &rep.outcome {
            MedianOutcome::MedianFailure {
                err_pi,
                err_rho,
                budget,
                total_len,
                appended,
                ..
            } => {
                assert!(err_pi > budget || err_rho > budget, "median must fail");
                assert!(*appended <= eps.stream_len(6));
                assert_eq!(*total_len, eps.stream_len(6) + appended);
            }
            other => panic!("expected failure horn, got {other:?}"),
        }
        assert!(rep.demonstrates_theorem());
    }

    #[test]
    fn arbitrary_quantile_targets_also_fail() {
        // The paper's parenthetical: the reduction works for any
        // eps << phi << 1 - eps.
        let eps = Eps::from_inverse(8);
        for phi in [0.25f64, 0.4, 0.6, 0.75] {
            let out = run_adversary(eps, 6, || DecimatedSummary::new(3));
            let rep = quantile_reduction(out, phi);
            match &rep.outcome {
                MedianOutcome::MedianFailure {
                    median_rank,
                    total_len,
                    err_pi,
                    err_rho,
                    budget,
                    ..
                } => {
                    // The target rank really is the requested quantile of
                    // the padded stream…
                    let realised = *median_rank as f64 / *total_len as f64;
                    assert!(
                        (realised - phi).abs() < 0.02,
                        "phi={phi}: landed at {realised}"
                    );
                    // …and the query fails there.
                    assert!(
                        err_pi > budget || err_rho > budget,
                        "phi={phi} did not fail"
                    );
                }
                other => panic!("phi={phi}: expected failure horn, got {other:?}"),
            }
        }
    }

    #[test]
    fn padding_preserves_indistinguishability() {
        let eps = Eps::from_inverse(8);
        let out = run_adversary(eps, 6, || DecimatedSummary::new(3));
        // median_reduction internally pushes padding to both copies in
        // lockstep; afterwards the item arrays must still correspond.
        // We re-run it and inspect the states via a fresh run (the report
        // does not expose states), so instead check the weaker property:
        // the reduction ran without tripping any distinctness assertion.
        let rep = median_reduction(out);
        assert!(rep.gap > 0);
    }
}
