//! Property-based tests over the whole construction: for *random*
//! adversary parameters and random summary behaviours, the paper's
//! inequalities must hold without exception.

#![cfg(test)]

use proptest::prelude::*;

use crate::adversary::run_adversary;
use crate::eps::Eps;
use crate::failure::quantile_failure_witness;
use crate::reference::{DecimatedSummary, ExactSummary};
use crate::spacegap::claim1_holds;
use cqs_universe::{between_items, generate_increasing, Interval, Item};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The construction's audited inequalities hold for any budgeted
    /// comparison-based summary at any (small) parameterisation.
    #[test]
    fn adversary_invariants_hold_for_random_parameters(
        inv in 4u64..24,
        k in 1u32..6,
        budget in 3usize..40,
    ) {
        let eps = Eps::from_inverse(inv);
        let out = run_adversary(eps, k, || DecimatedSummary::<Item>::new(budget));
        prop_assert!(out.equivalence_error.is_none(), "{:?}", out.equivalence_error);
        prop_assert_eq!(out.pi.len(), eps.stream_len(k));
        prop_assert_eq!(out.audits.len(), (1usize << k) - 1);
        for a in &out.audits {
            prop_assert!(a.claim1_ok, "Claim 1 failed at level {}", a.level);
            prop_assert!(a.lemma52_ok, "Lemma 5.2 failed at level {}", a.level);
            prop_assert!(a.g >= 1);
            if let (Some(gp), Some(gd)) = (a.g_prime, a.g_dprime) {
                prop_assert!(claim1_holds(a.g, gp, gd));
            }
        }
    }

    /// The dilemma is total: every run either keeps the gap within 2εN
    /// or yields a demonstrated failure witness.
    #[test]
    fn dilemma_is_total(
        inv in 4u64..16,
        k in 2u32..6,
        budget in 3usize..30,
    ) {
        let eps = Eps::from_inverse(inv);
        let out = run_adversary(eps, k, || DecimatedSummary::<Item>::new(budget));
        match quantile_failure_witness(&out) {
            Some(w) => prop_assert!(
                w.demonstrates_failure(),
                "witness exists but demonstrates nothing: {w:?}"
            ),
            None => prop_assert!(out.gap_within_correctness_ceiling()),
        }
    }

    /// Gap monotonicity under storage: storing *more* (a bigger budget)
    /// never increases the final gap.
    #[test]
    fn bigger_budget_never_bigger_gap(inv in 4u64..12, k in 2u32..5, b in 4usize..20) {
        let eps = Eps::from_inverse(inv);
        let small = run_adversary(eps, k, || DecimatedSummary::<Item>::new(b)).final_gap();
        let large = run_adversary(eps, k, || DecimatedSummary::<Item>::new(4 * b)).final_gap();
        prop_assert!(large <= small, "budget {b}->{}: gap {small} -> {large}", 4 * b);
    }

    /// Universe continuity under arbitrary nesting: a chain of random
    /// interval refinements always admits fresh in-between items.
    #[test]
    fn universe_supports_random_refinement_chains(choices in proptest::collection::vec(0u8..4, 1..40)) {
        let mut iv = Interval::whole();
        for c in choices {
            let pts = generate_increasing(&iv, 3);
            let (lo, hi) = match c {
                0 => (pts[0].clone(), pts[1].clone()),
                1 => (pts[1].clone(), pts[2].clone()),
                2 => (pts[0].clone(), pts[2].clone()),
                _ => (pts[0].clone(), between_items(&pts[0], &pts[1])),
            };
            prop_assert!(lo < hi);
            iv = Interval::open(lo, hi);
        }
        // Still continuous at the end of the chain.
        let last = generate_increasing(&iv, 2);
        prop_assert!(iv.contains(&last[0]) && iv.contains(&last[1]));
    }

    /// ExactSummary under the adversary: gap exactly 1 and every audit
    /// node sees S_k = N_k + 2 (all items plus the two boundaries).
    #[test]
    fn exact_summary_audits_are_tight(inv in 2u64..10, k in 1u32..5) {
        let eps = Eps::from_inverse(inv);
        let out = run_adversary(eps, k, ExactSummary::<Item>::new);
        prop_assert_eq!(out.final_gap(), 1);
        for a in &out.audits {
            // All N_k items of the node's subtree fall inside the node's
            // intervals and are stored.
            prop_assert_eq!(a.stored_inside as u64, a.n_k, "level {}", a.level);
        }
    }

    /// The rank_in/restricted-array machinery agrees with a brute-force
    /// recomputation on random decimation patterns.
    #[test]
    fn restricted_ranks_match_bruteforce(keep in proptest::collection::btree_set(0usize..40, 2..20)) {
        let items = generate_increasing(&Interval::whole(), 40);
        let mut st = crate::state::StreamState::new(ExactSummary::<Item>::new());
        for it in &items {
            st.push(it.clone());
        }
        // Interval spanned by two random-ish kept positions.
        let lo_idx = *keep.iter().next().unwrap();
        let hi_idx = *keep.iter().last().unwrap();
        prop_assume!(hi_idx > lo_idx + 1);
        let iv = Interval::open(items[lo_idx].clone(), items[hi_idx].clone());
        for (pos, it) in items.iter().enumerate().take(hi_idx + 1).skip(lo_idx) {
            let r = st.rank_in(&iv, &cqs_universe::Endpoint::Finite(it.clone()));
            // Brute force: position within [lo..=pos] window.
            prop_assert_eq!(r as usize, pos - lo_idx + 1);
        }
        prop_assert_eq!(st.count_inside(&iv) as usize, hi_idx - lo_idx - 1);
    }
}

#[cfg(test)]
mod regression {
    use super::*;

    /// k = 1 degenerate tree: a single leaf, no refinement.
    #[test]
    fn single_leaf_tree() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 1, ExactSummary::<Item>::new);
        assert_eq!(out.audits.len(), 1);
        assert_eq!(out.pi.len(), 8);
    }

    /// Budget exactly at the extremes-only floor.
    #[test]
    fn minimal_budget_summary_survives() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 4, || DecimatedSummary::<Item>::new(2));
        assert!(out.equivalence_error.is_none());
        assert!(out.final_gap() > 1);
    }

    /// A summary that stores nothing inside refined intervals still has
    /// well-defined (boundary-only) restricted arrays everywhere.
    #[test]
    fn boundary_only_restricted_arrays() {
        let eps = Eps::from_inverse(4);
        let out = run_adversary(eps, 5, || DecimatedSummary::<Item>::new(2));
        for a in &out.audits {
            assert!(a.s_k >= 2, "restricted array lost its boundaries");
        }
    }
}
