//! A tiny in-tree deterministic PRNG (SplitMix64).
//!
//! The determinism requirement of the lower bound (the adversary's
//! indistinguishability argument of Lemma 3.4 needs summary behaviour to
//! be a pure function of comparison outcomes) rules out ambient
//! randomness such as `thread_rng` or OS entropy — and the repo's
//! conformance lint (`cqs-xtask`) rejects them statically. Randomized
//! summaries (KLL, reservoir sampling) are still in scope via the
//! derandomization reduction of Section 6.3: a *fixed-seed* generator is
//! just hard-coded random bits, i.e. a deterministic summary.
//!
//! [`SplitMix64`] is that generator: Steele, Lea & Flood's 64-bit
//! finalizer-based stream (the same one `rand` uses to seed its
//! generators), small enough to carry in-tree so the workspace builds
//! with zero external dependencies and no registry access.
//!
//! ```
//! use cqs_core::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! ```

/// A deterministic, seedable SplitMix64 generator.
///
/// Passes BigCrush in its original publication; more than adequate for
/// compactor coin flips, reservoir slots, and workload shuffles. Not
/// cryptographic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// output streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & (1 << 63) != 0
    }

    /// A uniform integer in `0..n` (Lemire's unbiased multiply-shift
    /// rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo < n {
                // 2^64 mod n: the size of the biased low fringe.
                let t = n.wrapping_neg() % n;
                if lo < t {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// A uniform index in `0..len` for slice access.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, from the published SplitMix64
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never drawn");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SplitMix64::new(11);
        let heads = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
