//! Interval-compressed stream index — the billion-item adversary's
//! order statistics without the billion items.
//!
//! The materialized [`StreamState`](crate::state::StreamState) keeps
//! every appended item in an order-statistic treap, so memory grows as
//! Θ(N). But the adversary's stream has far more structure than an
//! arbitrary item sequence: it is a concatenation of *runs*, each run
//! minted by the deterministic balanced subdivision of
//! [`cqs_universe::generate_increasing`] inside one open interval. A
//! run is therefore a **pure function of its interval and count** — the
//! stream is fully described by the run table, which has one entry per
//! leaf of the recursion tree (2^{k-1} entries) instead of one per item
//! (N = (1/ε)·2^k).
//!
//! [`ImplicitOrder`] stores exactly that: a [`RunGenerator`] per run
//! (the label oracle), a fragment treap ([`RunTree`]) ordering the
//! runs' contiguous blocks by label with cached *virtual* counts, and a
//! bounded id→arrival-tag memo so the hot queries — rank and arrival
//! tag of summary-retained items — skip the O(log n · |label|)
//! generator descent. Every answer is byte-identical to what the
//! materialized treap over the same stream would give (the differential
//! suite in `cqs-bench` pins this at moderate N), because both sides
//! replay the identical subdivision.
//!
//! Memory is O(#fragments + memo capacity + summary-retained label
//! bytes): sublinear in N, which is what lets the Theorem 2.2 sweep
//! verify the Ω((1/ε)·log εN) shape at N = 10⁸–10⁹ on one machine.

use std::cell::RefCell;
use std::collections::BTreeMap;

use cqs_ostree::{Fragment, RunTree};
use cqs_universe::{Interval, Item, RunGenerator};

/// Bounded two-generation memo from arena id to global arrival tag.
///
/// Seeded eagerly when a run is inserted (every item's tag is known at
/// that moment for free) and consulted on every rank / tag query. A hit
/// resolves the item's in-run index by subtraction; a miss falls back
/// to the generator descent and re-memoizes. Eviction is generational:
/// when the current generation fills, it becomes the previous
/// generation and a fresh one starts — entries touched at least once
/// per generation (summary-retained items are touched every leaf)
/// survive indefinitely, while one-shot transients age out. Memory is
/// bounded by `2 × cap` entries regardless of N.
struct TagMemo {
    cap: usize,
    cur: BTreeMap<u32, u64>,
    prev: BTreeMap<u32, u64>,
}

impl TagMemo {
    fn new(cap: usize) -> Self {
        TagMemo {
            cap: cap.max(1),
            cur: BTreeMap::new(),
            prev: BTreeMap::new(),
        }
    }

    /// Looks up an id, promoting previous-generation hits so recently
    /// used entries keep surviving rotations.
    fn get(&mut self, id: u32) -> Option<u64> {
        if let Some(&tag) = self.cur.get(&id) {
            return Some(tag);
        }
        if let Some(tag) = self.prev.remove(&id) {
            self.insert(id, tag);
            return Some(tag);
        }
        None
    }

    fn insert(&mut self, id: u32, tag: u64) {
        if self.cur.len() >= self.cap {
            self.prev = std::mem::take(&mut self.cur);
        }
        self.cur.insert(id, tag);
    }
}

/// Default memo capacity per generation. Sized to hold the largest
/// plausible summary working set (stored items + one leaf run) with
/// ample slack: 2 × 2¹⁸ entries ≈ 6 MiB of map either side,
/// independent of N.
const MEMO_CAP: usize = 1 << 18;

/// The interval-compressed order index. See the module docs.
pub(crate) struct ImplicitOrder {
    /// Label oracle per run, indexed by the `run` field of fragments.
    gens: Vec<RunGenerator>,
    /// Global arrival tag of each run's item 0: runs arrive whole, so
    /// the tag of run `r`'s `j`-th item is `starts[r] + j`.
    starts: Vec<u64>,
    /// Fragments of contiguous in-run index ranges, in label order.
    tree: RunTree<Item>,
    /// Total virtual items (= stream length so far).
    len: u64,
    /// Id → arrival tag fast path; interior-mutable because rank and
    /// tag queries take `&self` but hits promote generations.
    memo: RefCell<TagMemo>,
}

impl ImplicitOrder {
    pub(crate) fn new() -> Self {
        ImplicitOrder {
            gens: Vec::new(),
            starts: Vec::new(),
            tree: RunTree::new(),
            len: 0,
            memo: RefCell::new(TagMemo::new(MEMO_CAP)),
        }
    }

    /// Number of virtual items indexed.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Number of fragments — the actual resident footprint driver.
    #[cfg(test)]
    pub(crate) fn fragment_count(&self) -> usize {
        self.tree.fragment_count()
    }

    /// Appends a freshly minted run of `items` (strictly increasing,
    /// all inside the open interval `iv`) to the stream.
    ///
    /// The adversary only ever mints into an interval whose endpoints
    /// are order-adjacent existing stream items (or ±∞), so at most the
    /// fragment containing `iv`'s low endpoint needs splitting — the
    /// high endpoint is the very next virtual item and lands on a
    /// fragment boundary automatically.
    ///
    /// # Panics
    ///
    /// Panics if the run table would exceed the fragment treap's `u32`
    /// run-id space; callers on the panic-free driver path check
    /// [`Self::runs_exhausted`] before minting.
    pub(crate) fn insert_run(&mut self, iv: &Interval, items: &[Item]) {
        let Some((first, last)) = items.first().zip(items.last()) else {
            return;
        };
        assert!(
            self.gens.len() < u32::MAX as usize,
            "implicit stream exhausted the u32 run-id space"
        );
        self.split_at_endpoint(iv);
        let run = self.gens.len() as u32;
        let count = items.len() as u64;
        self.tree.insert_fragment(Fragment {
            lo: first.clone(),
            hi: last.clone(),
            count,
            run,
            base: 0,
        });
        let start = self.len;
        {
            let memo = &mut *self.memo.borrow_mut();
            for (j, it) in items.iter().enumerate() {
                if let Some(id) = it.arena_id() {
                    memo.insert(id, start + j as u64);
                }
            }
        }
        self.gens.push(RunGenerator::new(iv, count));
        self.starts.push(start);
        self.len += count;
    }

    /// Whether one more run can be registered without overflowing the
    /// `u32` run-id space.
    pub(crate) fn runs_exhausted(&self) -> bool {
        self.gens.len() >= u32::MAX as usize
    }

    /// Splits the fragment containing `iv`'s low endpoint so the
    /// endpoint becomes a fragment's `hi`. No-op when the endpoint is
    /// infinite, not inside any fragment, or already a boundary.
    fn split_at_endpoint(&mut self, iv: &Interval) {
        let cqs_universe::Endpoint::Finite(a) = iv.lo() else {
            return;
        };
        let needs_split = match self.tree.locate(a).hit {
            Some(f) => f.hi != *a,
            None => false,
        };
        if !needs_split {
            return;
        }
        // A locate hit guarantees both lookups succeed; on the guarded
        // driver path we still degrade to a no-op (reinserting what was
        // removed) rather than unwind.
        let Some(f) = self.tree.remove_containing(a) else {
            return;
        };
        let Some(gen) = self.gens.get(f.run as usize) else {
            self.tree.insert_fragment(f);
            return;
        };
        let Some(idx) = self.id_index(f.run, a).or_else(|| gen.index_of(a.label())) else {
            self.tree.insert_fragment(f);
            return;
        };
        debug_assert!(idx >= f.base && idx < f.base + f.count);
        let left = Fragment {
            lo: f.lo,
            hi: a.clone(),
            count: idx + 1 - f.base,
            run: f.run,
            base: f.base,
        };
        let right = Fragment {
            lo: gen.item_at(idx + 1),
            hi: f.hi,
            count: f.base + f.count - idx - 1,
            run: f.run,
            base: idx + 1,
        };
        debug_assert!(right.count >= 1, "endpoint was not mid-fragment after all");
        self.tree.insert_fragment(left);
        self.tree.insert_fragment(right);
    }

    /// Memo fast path: the in-run index of `q` within run `run`, if the
    /// memo knows `q`'s arrival tag and it belongs to that run.
    fn id_index(&self, run: u32, q: &Item) -> Option<u64> {
        let id = q.arena_id()?;
        let tag = self.memo.borrow_mut().get(id)?;
        let start = *self.starts.get(run as usize)?;
        let idx = tag.checked_sub(start)?;
        (idx < self.gens.get(run as usize)?.count()).then_some(idx)
    }

    /// How many stream items compare strictly below `q`.
    pub(crate) fn count_less(&self, q: &Item) -> u64 {
        let l = self.tree.locate(q);
        match l.hit {
            None => l.before,
            Some(f) => {
                let in_run = match self.id_index(f.run, q) {
                    Some(idx) if idx >= f.base && idx < f.base + f.count => idx,
                    _ => self
                        .gens
                        .get(f.run as usize)
                        .map_or(f.base, |g| g.count_less(q.label())),
                };
                l.before + (in_run - f.base)
            }
        }
    }

    /// How many stream items compare `<= q`.
    pub(crate) fn count_le(&self, q: &Item) -> u64 {
        let l = self.tree.locate(q);
        match l.hit {
            None => l.before,
            Some(f) => {
                let le_in_run = match self.id_index(f.run, q) {
                    Some(idx) if idx >= f.base && idx < f.base + f.count => idx + 1,
                    _ => self
                        .gens
                        .get(f.run as usize)
                        .map_or(f.base, |g| g.count_le(q.label())),
                };
                l.before + (le_in_run - f.base)
            }
        }
    }

    /// The arrival tag of stream item `q`, if `q` is in the stream.
    pub(crate) fn tag_of(&self, q: &Item) -> Option<u64> {
        if let Some(id) = q.arena_id() {
            if let Some(tag) = self.memo.borrow_mut().get(id) {
                return Some(tag);
            }
        }
        let f = self.tree.locate(q).hit?;
        let idx = self.gens.get(f.run as usize)?.index_of(q.label())?;
        debug_assert!(idx >= f.base && idx < f.base + f.count);
        let tag = *self.starts.get(f.run as usize)? + idx;
        if let Some(id) = q.arena_id() {
            self.memo.borrow_mut().insert(id, tag);
        }
        Some(tag)
    }

    /// The smallest stream item strictly above `q`, freshly
    /// materialized. Label-equality makes the mint interchangeable with
    /// the original arrival.
    pub(crate) fn successor(&self, q: &Item) -> Option<Item> {
        let l = self.tree.locate(q);
        match l.hit {
            Some(f) => {
                let le_in_run = match self.id_index(f.run, q) {
                    Some(idx) if idx >= f.base && idx < f.base + f.count => idx + 1,
                    _ => self
                        .gens
                        .get(f.run as usize)
                        .map_or(f.base, |g| g.count_le(q.label())),
                };
                if le_in_run < f.base + f.count {
                    self.gens.get(f.run as usize).map(|g| g.item_at(le_in_run))
                } else {
                    l.succ.map(|s| s.lo.clone())
                }
            }
            None => l.succ.map(|s| s.lo.clone()),
        }
    }

    /// The largest stream item strictly below `q`, freshly materialized.
    pub(crate) fn predecessor(&self, q: &Item) -> Option<Item> {
        let l = self.tree.locate(q);
        match l.hit {
            Some(f) => {
                let less_in_run = match self.id_index(f.run, q) {
                    Some(idx) if idx >= f.base && idx < f.base + f.count => idx,
                    _ => self
                        .gens
                        .get(f.run as usize)
                        .map_or(f.base, |g| g.count_less(q.label())),
                };
                if less_in_run > f.base {
                    self.gens
                        .get(f.run as usize)
                        .map(|g| g.item_at(less_in_run - 1))
                } else {
                    l.pred.map(|p| p.hi.clone())
                }
            }
            None => l.pred.map(|p| p.hi.clone()),
        }
    }

    /// The smallest stream item.
    pub(crate) fn min(&self) -> Option<Item> {
        self.tree.first().map(|f| f.lo.clone())
    }

    /// The largest stream item.
    pub(crate) fn max(&self) -> Option<Item> {
        self.tree.last().map(|f| f.hi.clone())
    }

    /// Batched [`Self::tag_of`] over label-sorted queries.
    pub(crate) fn multi_tag_of(&self, qs: &[Item], out: &mut Vec<Option<u64>>) {
        out.reserve(qs.len());
        for q in qs {
            out.push(self.tag_of(q));
        }
    }

    /// Visits every stream item in label order with its arrival tag,
    /// materializing each item on the fly. O(N log N) label mints —
    /// meant for snapshots and differential tests at moderate N, not
    /// for the billion-item hot path.
    pub(crate) fn for_each_tagged(&self, f: &mut dyn FnMut(&Item, u64)) {
        self.tree.for_each(&mut |frag| {
            let (Some(gen), Some(&start)) = (
                self.gens.get(frag.run as usize),
                self.starts.get(frag.run as usize),
            ) else {
                return;
            };
            for j in frag.base..frag.base + frag.count {
                let it = gen.item_at(j);
                f(&it, start + j);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_ostree::OsTree;
    use cqs_universe::{generate_increasing, Endpoint};

    /// Builds the same stream both ways: a materialized treap and an
    /// implicit index, from a root run refined twice in the adversary's
    /// pattern (mint between order-adjacent items).
    fn build_both(root_n: usize, leaf_n: usize) -> (OsTree<Item>, ImplicitOrder) {
        let mut mat = OsTree::new();
        let mut imp = ImplicitOrder::new();
        let mut tag = 0u64;
        let mut feed =
            |mat: &mut OsTree<Item>, imp: &mut ImplicitOrder, iv: &Interval, n: usize| {
                let items = generate_increasing(iv, n);
                for it in &items {
                    mat.insert_unique_tagged(it.clone(), tag);
                    tag += 1;
                }
                imp.insert_run(iv, &items);
                items
            };
        let whole = Interval::whole();
        let root = feed(&mut mat, &mut imp, &whole, root_n);
        // Refine between two order-adjacent items in the middle.
        let m = root_n / 2;
        let iv1 = Interval::open(root[m].clone(), root[m + 1].clone());
        let left = feed(&mut mat, &mut imp, &iv1, leaf_n);
        // And again inside the new run (order-adjacent pair of it).
        let iv2 = Interval::open(left[0].clone(), left[1].clone());
        feed(&mut mat, &mut imp, &iv2, leaf_n);
        // Also refine at a fragment boundary: just above the root max.
        let iv3 = Interval::new(Endpoint::Finite(root[root_n - 1].clone()), Endpoint::PosInf);
        feed(&mut mat, &mut imp, &iv3, leaf_n);
        (mat, imp)
    }

    #[test]
    fn matches_materialized_treap_on_refined_stream() {
        let (mat, imp) = build_both(32, 8);
        assert_eq!(imp.len(), mat.len() as u64);
        let mut all: Vec<(Item, u64)> = Vec::new();
        mat.for_each_tagged(&mut |it, t| all.push((it.clone(), t)));
        for (it, t) in &all {
            assert_eq!(imp.count_less(it), mat.count_less(it) as u64);
            assert_eq!(imp.count_le(it), mat.count_le(it) as u64);
            assert_eq!(imp.tag_of(it), Some(*t));
            assert_eq!(imp.successor(it), mat.successor(it).cloned());
            assert_eq!(imp.predecessor(it), mat.predecessor(it).cloned());
        }
        assert_eq!(imp.min(), mat.min().cloned());
        assert_eq!(imp.max(), mat.max().cloned());
        // Probes between adjacent stream items.
        for w in all.windows(2) {
            if w[0].0 < w[1].0 {
                let probe = cqs_universe::between_items(&w[0].0, &w[1].0);
                assert_eq!(imp.count_less(&probe), mat.count_less(&probe) as u64);
                assert_eq!(imp.count_le(&probe), mat.count_le(&probe) as u64);
                assert_eq!(imp.tag_of(&probe), None);
                assert_eq!(imp.successor(&probe), mat.successor(&probe).cloned());
                assert_eq!(imp.predecessor(&probe), mat.predecessor(&probe).cloned());
            }
        }
    }

    #[test]
    fn replay_visits_identical_items_and_tags() {
        let (mat, imp) = build_both(16, 4);
        let mut a: Vec<(Vec<u8>, u64)> = Vec::new();
        mat.for_each_tagged(&mut |it, t| a.push((it.label().to_vec(), t)));
        let mut b: Vec<(Vec<u8>, u64)> = Vec::new();
        imp.for_each_tagged(&mut |it, t| b.push((it.label().to_vec(), t)));
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_remints_resolve_without_memo() {
        let (mat, imp) = build_both(16, 4);
        let mut items: Vec<(Item, u64)> = Vec::new();
        mat.for_each_tagged(&mut |it, t| items.push((it.clone(), t)));
        for (it, t) in &items {
            // A brand-new mint of the same label: different arena id,
            // so every memo lookup misses and the generator descent
            // must produce the same answers.
            let fresh = Item::from_label(it.label().to_vec());
            assert_eq!(imp.tag_of(&fresh), Some(*t));
            assert_eq!(imp.count_less(&fresh), mat.count_less(it) as u64);
        }
    }

    #[test]
    fn multi_queries_match_scalar_queries() {
        let (mat, imp) = build_both(16, 4);
        let mut qs: Vec<Item> = Vec::new();
        mat.for_each_tagged(&mut |it, _| qs.push(it.clone()));
        let mut tags = Vec::new();
        imp.multi_tag_of(&qs, &mut tags);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(tags[i], imp.tag_of(q));
        }
    }

    #[test]
    fn memo_rotation_keeps_answers_correct() {
        let mut imp = ImplicitOrder::new();
        imp.memo.replace(TagMemo::new(4)); // force constant rotation
        let whole = Interval::whole();
        let items = generate_increasing(&whole, 64);
        imp.insert_run(&whole, &items);
        let iv = Interval::open(items[10].clone(), items[11].clone());
        let inner = generate_increasing(&iv, 32);
        imp.insert_run(&iv, &inner);
        for (j, it) in items.iter().enumerate() {
            let extra = if j <= 10 { 0 } else { 32 };
            assert_eq!(imp.count_less(it), j as u64 + extra);
            assert_eq!(imp.tag_of(it), Some(j as u64));
        }
        for (j, it) in inner.iter().enumerate() {
            assert_eq!(imp.count_less(it), 11 + j as u64);
            assert_eq!(imp.tag_of(it), Some(64 + j as u64));
        }
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let mut imp = ImplicitOrder::new();
        imp.insert_run(&Interval::whole(), &[]);
        assert_eq!(imp.len(), 0);
        assert_eq!(imp.fragment_count(), 0);
        assert!(imp.min().is_none() && imp.max().is_none());
    }
}
