#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-core — the PODS'20 tight lower bound, executable
//!
//! This crate implements the primary contribution of Cormode & Veselý,
//! *A Tight Lower Bound for Comparison-Based Quantile Summaries* (PODS
//! 2020): the recursive adversarial construction that forces **any**
//! deterministic comparison-based ε-approximate quantile summary to store
//! Ω((1/ε)·log εN) items, matching the Greenwald–Khanna upper bound.
//!
//! The paper is a proof; this crate makes every moving part of the proof
//! an executable object:
//!
//! * [`model`] — the comparison-based computational model of
//!   Definition 2.1, as traits ([`ComparisonSummary`], [`RankEstimator`])
//!   with item-array introspection.
//! * [`state`] — a live stream/summary pair with order-statistic
//!   indexing: `rank_σ(a)`, `next(σ,a)`, `prev(σ,b)` and restricted item
//!   arrays `I^(ℓ,r)`.
//! * [`gap`] — the largest-gap quantities of Definitions 3.3 and 5.1.
//! * [`refine`] — `RefineIntervals` (Pseudocode 1).
//! * [`adversary`] — `AdvStrategy` (Pseudocode 2), with a full per-node
//!   audit trail of the recursion tree.
//! * [`spacegap`] — the space-gap inequality (Lemma 5.2) and the gap
//!   recurrence `g ≥ g′ + g″ − 1` (Claim 1), checked at every node.
//! * [`failure`] — Lemma 3.4: when the gap exceeds 2εN, extract a
//!   quantile query on which the summary provably errs.
//! * [`median`] — Theorem 6.1 (approximate median reduction).
//! * [`rank_estimation`] — Theorem 6.2 (Estimating Rank lower bound).
//! * [`biased`] — Theorem 6.5 (biased quantiles, k-phase construction).
//! * [`randomized`] — Theorems 6.3/6.4 (derandomization reduction).
//! * [`offline`] — the ⌈1/(2ε)⌉ offline-optimal summary from Section 1.
//! * [`mod@reference`] — an exact (store-everything) summary used as ground
//!   truth and as the simplest legal instance of the model.
//!
//! ## Quick tour
//!
//! ```
//! use cqs_core::{run_lower_bound, Eps, reference::ExactSummary};
//!
//! // Drive the adversary against a summary that stores everything: all
//! // inequalities of the paper hold, and the gap stays at its minimum.
//! let eps = Eps::from_inverse(8);
//! let report = run_lower_bound(eps, 3, || ExactSummary::new());
//! assert!(report.equivalence_ok);
//! assert_eq!(report.claim1_violations, 0);
//! assert_eq!(report.lemma52_violations, 0);
//! assert!(report.n == 64); // N_k = (1/ε)·2^k
//! ```

pub mod adversary;
pub mod biased;
pub mod bounds;
pub mod eps;
pub mod failure;
pub mod gap;
pub mod histogram;
mod implicit;
pub mod median;
pub mod merge;
pub mod model;
pub mod offline;
#[cfg(feature = "proptest")]
mod proptests;
pub mod randomized;
pub mod rank_estimation;
pub mod reference;
pub mod refine;
pub mod rng;
pub mod spacegap;
pub mod state;

pub use adversary::{
    run_lower_bound, try_run_adversary, try_run_adversary_repr, Adversary, AdversaryBudget,
    AdversaryError, AdversaryOutcome, AdversaryReport, InsertMode, NodeAudit, PartialRun,
    RankProbe, RunVerdict,
};
pub use eps::Eps;
pub use failure::{quantile_failure_witness, FailureWitness};
pub use gap::{compute_gap, compute_gap_scratch, GapInfo, GapScratch};
pub use histogram::{equi_depth_histogram, EquiDepthHistogram};
pub use merge::{MergeError, MergeableSummary};
pub use model::{ComparisonSummary, MaxSpaceTracker, RankEstimator};
pub use refine::{refine_intervals, RefineError};
pub use rng::SplitMix64;
pub use spacegap::{space_gap_rhs, theorem22_bound, SPACE_GAP_C_NUM};
pub use state::{StreamRepr, StreamState};

pub use cqs_universe::{Endpoint, Interval, Item};

/// Compile-time audit that the adversary state machine can cross thread
/// boundaries: the `cqs-bench` parallel sweep pool moves whole runs onto
/// scoped worker threads, so the driver types must be `Send` whenever
/// the summary is. Never called — instantiating the inner assertions
/// type-checks the bounds; the `sharding-send-sync` lint rule keeps the
/// lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit<S: ComparisonSummary<Item> + Send>() {
    fn assert_send<T: Send>() {}
    assert_send::<Adversary<S>>();
    assert_send::<AdversaryOutcome<S>>();
    assert_send::<AdversaryError>();
    assert_send::<AdversaryReport>();
    assert_send::<StreamState<S>>();
    assert_send::<StreamRepr>();
    assert_send::<RunVerdict>();
    assert_send::<AdversaryBudget>();
    assert_send::<Eps>();
    // The service's fold worker carries merge refusals across threads.
    assert_send::<MergeError>();
}
