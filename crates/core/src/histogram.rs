//! Equi-depth histograms from quantile summaries.
//!
//! The paper's introduction lists "constructing equi-depth histograms
//! (where the number of items in each bucket must be approximately
//! equal)" among the applications a quantile summary immediately
//! provides. This module builds one from any [`ComparisonSummary`]: the
//! bucket boundaries are the i/b-quantiles, so each bucket holds
//! N/b ± 2εN items.

use crate::model::ComparisonSummary;

/// An equi-depth histogram: `boundaries` split the value domain into
/// buckets of approximately equal population.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram<T> {
    /// Interior bucket boundaries (b − 1 of them for b buckets), each a
    /// stored item of the underlying summary.
    pub boundaries: Vec<T>,
    /// Target items per bucket, N/b.
    pub target_depth: u64,
    /// Stream length at construction.
    pub n: u64,
}

/// Builds a `buckets`-bucket equi-depth histogram from a summary.
///
/// Returns `None` on an empty summary or `buckets == 0`.
pub fn equi_depth_histogram<T, S>(summary: &S, buckets: u32) -> Option<EquiDepthHistogram<T>>
where
    T: Ord + Clone,
    S: ComparisonSummary<T>,
{
    let n = summary.items_processed();
    if n == 0 || buckets == 0 {
        return None;
    }
    let mut boundaries = Vec::with_capacity(buckets as usize - 1);
    for i in 1..buckets as u64 {
        let r = (i * n / buckets as u64).max(1);
        boundaries.push(summary.query_rank(r)?);
    }
    Some(EquiDepthHistogram {
        boundaries,
        target_depth: n / buckets as u64,
        n,
    })
}

impl<T: Ord + Clone> EquiDepthHistogram<T> {
    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The bucket index (0-based) a value falls into.
    pub fn bucket_of(&self, value: &T) -> usize {
        self.boundaries.partition_point(|b| b < value)
    }

    /// Measures actual bucket depths against `values` (ground-truth
    /// audit); returns per-bucket counts.
    pub fn depths(&self, values: &[T]) -> Vec<u64> {
        let mut counts = vec![0u64; self.buckets()];
        for v in values {
            counts[self.bucket_of(v)] += 1;
        }
        counts
    }

    /// The worst absolute deviation of any bucket from the target depth,
    /// measured against ground truth.
    pub fn max_depth_error(&self, values: &[T]) -> u64 {
        self.depths(values)
            .iter()
            .map(|&c| c.abs_diff(self.target_depth))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ExactSummary;

    fn summary_over(n: u64) -> (ExactSummary<u64>, Vec<u64>) {
        let mut s = ExactSummary::new();
        let vals: Vec<u64> = (1..=n).collect();
        for &v in &vals {
            s.insert(v);
        }
        (s, vals)
    }

    #[test]
    fn exact_summary_gives_perfectly_flat_histogram() {
        let (s, vals) = summary_over(1000);
        let h = equi_depth_histogram(&s, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        assert_eq!(h.target_depth, 100);
        // All depths within 1 of target (integer rounding only).
        assert!(h.max_depth_error(&vals) <= 1, "{:?}", h.depths(&vals));
    }

    #[test]
    fn bucket_of_respects_boundaries() {
        let (s, _) = summary_over(100);
        let h = equi_depth_histogram(&s, 4).unwrap();
        assert_eq!(h.bucket_of(&1), 0);
        assert_eq!(h.bucket_of(&100), 3);
        // A boundary value belongs to the bucket left of it.
        let b0 = h.boundaries[0];
        assert_eq!(h.bucket_of(&b0), 0);
    }

    #[test]
    fn single_bucket_histogram() {
        let (s, vals) = summary_over(50);
        let h = equi_depth_histogram(&s, 1).unwrap();
        assert_eq!(h.buckets(), 1);
        assert!(h.boundaries.is_empty());
        assert_eq!(h.depths(&vals), vec![50]);
    }

    #[test]
    fn empty_summary_and_zero_buckets() {
        let s: ExactSummary<u64> = ExactSummary::new();
        assert!(equi_depth_histogram(&s, 4).is_none());
        let (s, _) = summary_over(10);
        assert!(equi_depth_histogram(&s, 0).is_none());
    }

    #[test]
    fn more_buckets_than_items_still_works() {
        let (s, vals) = summary_over(3);
        let h = equi_depth_histogram(&s, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        let total: u64 = h.depths(&vals).iter().sum();
        assert_eq!(total, 3);
    }
}
