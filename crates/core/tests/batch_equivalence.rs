//! Differential suite for the batched tree walks: one
//! `multi_*` walk must agree with repeated single-query walks — on
//! realistic adversary labels (balanced-subdivision mints), on random
//! byte labels, and on prefix-heavy label sets whose shared first 8
//! bytes defeat the `Item` prefix key and force the byte-wise tiebreak.

use cqs_core::reference::ExactSummary;
use cqs_core::rng::SplitMix64;
use cqs_core::state::StreamState;
use cqs_ostree::OsTree;
use cqs_universe::{generate_increasing, Interval, Item};

/// Random labels with lengths straddling the 8-byte prefix key.
fn random_labels(rng: &mut SplitMix64, n: usize) -> Vec<Item> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = 1 + rng.index(20);
        let label: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        out.push(Item::from_label(label));
    }
    out
}

/// Labels sharing a 16-byte prefix, so every comparison falls through
/// the equal-key path into the tail tiebreak.
fn prefix_heavy_labels(rng: &mut SplitMix64, n: usize) -> Vec<Item> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut label = vec![7u8; 16];
        let tail = rng.index(6);
        for _ in 0..tail {
            label.push(rng.next_u64() as u8);
        }
        out.push(Item::from_label(label));
    }
    out
}

/// Asserts every batched walk against its single-query reference on the
/// given stored set and query set.
fn assert_batches_match(stored: &[Item], queries: &[Item]) {
    let mut tree: OsTree<Item> = OsTree::new();
    let mut tagged = 0u64;
    for it in stored {
        if tree.insert_unique_tagged(it.clone(), tagged) {
            tagged += 1;
        }
    }
    let mut qs: Vec<Item> = queries.to_vec();
    qs.sort();

    let (mut le, mut less, mut ranks) = (Vec::new(), Vec::new(), Vec::new());
    tree.multi_count_le(&qs, &mut le);
    tree.multi_count_less(&qs, &mut less);
    tree.multi_rank(&qs, &mut ranks);
    let mut tags = Vec::new();
    tree.multi_tag_of(&qs, &mut tags);
    assert_eq!(le.len(), qs.len());
    for (((q, &l), &ls), (&r, &tag)) in qs.iter().zip(&le).zip(&less).zip(ranks.iter().zip(&tags)) {
        assert_eq!(l, tree.count_le(q), "count_le diverged on {q:?}");
        assert_eq!(ls, tree.count_less(q), "count_less diverged on {q:?}");
        assert_eq!(r, tree.rank(q), "rank diverged on {q:?}");
        assert_eq!(tag, tree.tag_of(q), "tag_of diverged on {q:?}");
    }

    let rs: Vec<usize> = (0..=tree.len() + 2).collect();
    let mut sel = Vec::new();
    tree.multi_select(&rs, &mut sel);
    for (&r, &s) in rs.iter().zip(&sel) {
        assert_eq!(s, tree.select(r), "select diverged at rank {r}");
    }
}

#[test]
fn batched_walks_match_singles_on_adversary_labels() {
    let items = generate_increasing(&Interval::whole(), 300);
    // Queries: stored items, plus fresh in-between mints (absent keys).
    let mut queries = items.clone();
    queries.extend(generate_increasing(&Interval::whole(), 97));
    assert_batches_match(&items, &queries);
}

#[test]
fn batched_walks_match_singles_on_random_labels() {
    let mut rng = SplitMix64::new(0x5eed);
    for round in 0..8 {
        let stored = random_labels(&mut rng, 60 + round * 40);
        let queries = random_labels(&mut rng, 80);
        assert_batches_match(&stored, &queries);
    }
}

#[test]
fn batched_walks_match_singles_on_prefix_heavy_labels() {
    let mut rng = SplitMix64::new(0x9e37);
    for _ in 0..8 {
        let stored = prefix_heavy_labels(&mut rng, 120);
        // Query with a mix of stored and fresh prefix-heavy labels so
        // both the equal and absent key-collision paths are exercised.
        let mut queries = prefix_heavy_labels(&mut rng, 60);
        queries.extend(stored.iter().take(30).cloned());
        assert_batches_match(&stored, &queries);
    }
}

#[test]
fn batched_walks_handle_empty_tree_and_empty_queries() {
    let tree: OsTree<Item> = OsTree::new();
    let qs = generate_increasing(&Interval::whole(), 5);
    let (mut le, mut sel, mut tags) = (Vec::new(), Vec::new(), Vec::new());
    tree.multi_count_le(&qs, &mut le);
    assert_eq!(le, vec![0; 5]);
    tree.multi_select(&[0, 1, 2], &mut sel);
    assert_eq!(sel, vec![None; 3]);
    tree.multi_tag_of(&qs, &mut tags);
    assert_eq!(tags, vec![None; 5]);

    let mut tree2: OsTree<Item> = OsTree::new();
    for (i, it) in qs.iter().cloned().enumerate() {
        assert!(tree2.insert_unique_tagged(it, i as u64));
    }
    let empty: Vec<Item> = Vec::new();
    tree2.multi_count_le(&empty, &mut le);
    assert!(le.is_empty());
}

#[test]
fn restricted_ranks_match_per_item_scan() {
    let items = generate_increasing(&Interval::whole(), 64);
    let mut st = StreamState::new(ExactSummary::new());
    for it in &items {
        st.push(it.clone());
    }
    let intervals = vec![
        Interval::whole(),
        Interval::open(items[3].clone(), items[40].clone()),
        Interval::open(items[10].clone(), items[11].clone()), // empty interior
    ];
    for iv in &intervals {
        let (mut got_items, mut les, mut got) = (Vec::new(), Vec::new(), Vec::new());
        let lo_off = st.restricted_ranks_inside(iv, &mut got_items, &mut les, &mut got);

        // Reference: per-item rank_in over the same restricted array.
        let mut want = vec![st.rank_in(iv, iv.lo())];
        // The collected array encloses the interior with the finite
        // boundary items, mirroring Definition 5.1's restricted array.
        let mut want_items = Vec::new();
        if let cqs_universe::Endpoint::Finite(l) = iv.lo() {
            want_items.push(l.clone());
        }
        assert_eq!(
            lo_off,
            want_items.len(),
            "interior offset diverged in {iv:?}"
        );
        st.for_each_stored_inside(iv, &mut |it| {
            want.push(st.rank_in_item(iv, it));
            want_items.push(it.clone());
        });
        if let cqs_universe::Endpoint::Finite(h) = iv.hi() {
            want_items.push(h.clone());
        }
        want.push(st.rank_in(iv, iv.hi()));
        assert_eq!(got, want, "restricted ranks diverged in {iv:?}");
        assert_eq!(got_items, want_items);
    }
}

#[test]
fn multi_arrival_matches_single_lookups() {
    let items = generate_increasing(&Interval::whole(), 48);
    let mut st = StreamState::new(ExactSummary::new());
    // Arrival order != sorted order: interleave from both ends.
    let mut order = Vec::new();
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        order.push(items[lo].clone());
        lo += 1;
        if lo < hi {
            hi -= 1;
            order.push(items[hi].clone());
        }
    }
    for it in &order {
        st.push(it.clone());
    }
    // Sorted queries: all stored, plus fresh absent mints interleaved.
    let mut qs = items.clone();
    qs.extend(generate_increasing(&Interval::whole(), 31));
    qs.sort();
    let mut tags = Vec::new();
    st.multi_arrival_of(&qs, &mut tags);
    for (q, &tag) in qs.iter().zip(&tags) {
        assert_eq!(tag, st.arrival_of(q), "arrival diverged on {q:?}");
    }
}
