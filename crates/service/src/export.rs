//! One-pass multi-key quantile export over the `cqs-snapshot` wire
//! format.
//!
//! [`QuantileRegistry::export_quantiles`] walks every key in
//! lexicographic order, folds its shards once, and evaluates a shared φ
//! grid — one pass over the registry, one fold per key. The resulting
//! [`QuantileExport`] serializes through the workspace snapshot format
//! (versioned framing, per-section CRC32), so exports are byte-diffable
//! across runs: the deterministic ingest contract guarantees the bytes
//! are identical for every thread count.

use cqs_core::{MergeError, MergeableSummary};
use cqs_snapshot::{
    RestoreError, SnapshotItem, SnapshotRead, SnapshotReader, SnapshotWrite, SnapshotWriter,
};

use crate::registry::QuantileRegistry;

/// One key's row in a [`QuantileExport`].
#[derive(Debug, Clone, PartialEq)]
pub struct KeyQuantiles<T> {
    /// The registry key.
    pub key: String,
    /// Items recorded under the key at export time.
    pub n: u64,
    /// Composed worst-case ε after folding (`None` for randomized
    /// sketches or empty keys).
    pub eps_bound: Option<f64>,
    /// One value per φ in the export's grid; `None` while empty.
    pub values: Vec<Option<T>>,
}

/// A multi-key quantile snapshot: a φ grid plus one row per key.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileExport<T> {
    /// The φ grid every row was evaluated on.
    pub phis: Vec<f64>,
    /// Rows in lexicographic key order.
    pub keys: Vec<KeyQuantiles<T>>,
}

impl<T: SnapshotItem> SnapshotWrite for QuantileExport<T> {
    const KIND: [u8; 4] = *b"QSVC";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section_with(*b"META", |e| {
            e.put_u64(self.phis.len() as u64);
            for &phi in &self.phis {
                e.put_f64(phi);
            }
            e.put_u64(self.keys.len() as u64);
        });
        for row in &self.keys {
            w.section_with(*b"KEYQ", |e| {
                e.put_str(&row.key);
                e.put_u64(row.n);
                match row.eps_bound {
                    Some(eps) => {
                        e.put_bool(true);
                        e.put_f64(eps);
                    }
                    None => e.put_bool(false),
                }
                e.put_u64(row.values.len() as u64);
                for value in &row.values {
                    match value {
                        Some(v) => {
                            e.put_bool(true);
                            v.encode_item(e);
                        }
                        None => e.put_bool(false),
                    }
                }
            });
        }
    }
}

impl<T: SnapshotItem> SnapshotRead for QuantileExport<T> {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(*b"META")?;
        let phi_count = meta.take_count(8)?;
        let mut phis = Vec::with_capacity(phi_count);
        for _ in 0..phi_count {
            phis.push(meta.take_f64()?);
        }
        // Key rows live in their own sections, so META cannot vouch for
        // their bytes — read a plain count and let each missing KEYQ
        // section fail the restore.
        let key_count = meta.take_u64()? as usize;
        meta.finish()?;
        let mut keys = Vec::new();
        for _ in 0..key_count {
            let mut d = r.section(*b"KEYQ")?;
            let key = d.take_str()?.to_string();
            let n = d.take_u64()?;
            let eps_bound = if d.take_bool()? {
                Some(d.take_f64()?)
            } else {
                None
            };
            let value_count = d.take_count(1)?;
            let mut values = Vec::with_capacity(value_count);
            for _ in 0..value_count {
                values.push(if d.take_bool()? {
                    Some(T::decode_item(&mut d)?)
                } else {
                    None
                });
            }
            d.finish()?;
            keys.push(KeyQuantiles {
                key,
                n,
                eps_bound,
                values,
            });
        }
        Ok(QuantileExport { phis, keys })
    }
}

impl<T, S> QuantileRegistry<T, S>
where
    T: Ord + Clone,
    S: MergeableSummary<T> + Clone,
{
    /// Folds every key once, in lexicographic order, and evaluates the
    /// φ grid — the one-pass export behind `cqs service`.
    pub fn export_quantiles(&self, phis: &[f64]) -> Result<QuantileExport<T>, MergeError> {
        let mut keys = Vec::new();
        for slot in self.slots_sorted() {
            let folded = slot.fold::<T>()?;
            let (n, eps_bound, values) = match &folded {
                Some(s) => (
                    s.items_processed(),
                    s.eps_bound(),
                    phis.iter().map(|&phi| s.quantile(phi)).collect(),
                ),
                None => (0, None, vec![None; phis.len()]),
            };
            keys.push(KeyQuantiles {
                key: slot.key().to_string(),
                n,
                eps_bound,
                values,
            });
        }
        Ok(QuantileExport {
            phis: phis.to_vec(),
            keys,
        })
    }
}

/// The default export grid: deciles plus the p95/p99/p999 tail.
pub const DEFAULT_PHI_GRID: [f64; 12] = [
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.999,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_ingest, QuantileRegistry, ServiceConfig};
    use cqs_gk::GkSummary;

    fn filled_registry() -> QuantileRegistry<u64, GkSummary<u64>> {
        let reg = QuantileRegistry::new(
            ServiceConfig {
                shards: 4,
                stripes: 4,
                fold_cadence: 1024,
            },
            || GkSummary::new(0.01),
        );
        for (key, base) in [("api.latency", 0u64), ("db.latency", 10_000)] {
            let batches: Vec<Vec<u64>> = (0..20)
                .map(|b| (0..100).map(|i| base + b * 100 + i).collect())
                .collect();
            parallel_ingest(&reg.handle(key), &batches, 4);
        }
        reg
    }

    #[test]
    fn export_roundtrips_through_the_wire_format() {
        let reg = filled_registry();
        let export = reg.export_quantiles(&DEFAULT_PHI_GRID).expect("export");
        assert_eq!(export.keys.len(), 2);
        assert_eq!(export.keys[0].key, "api.latency");
        assert_eq!(export.keys[0].n, 2000);
        let bytes = export.to_snapshot_bytes();
        let back = QuantileExport::<u64>::from_snapshot_bytes(&bytes).expect("restore");
        assert_eq!(back, export);
    }

    #[test]
    fn export_bytes_are_identical_across_thread_counts() {
        let export_with = |threads: usize| {
            let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
                ServiceConfig {
                    shards: 4,
                    stripes: 4,
                    fold_cadence: 1024,
                },
                || GkSummary::new(0.01),
            );
            let batches: Vec<Vec<u64>> = (0..30u64)
                .map(|b| (0..64).map(|i| b * 64 + i).collect())
                .collect();
            parallel_ingest(&reg.handle("k"), &batches, threads);
            reg.export_quantiles(&DEFAULT_PHI_GRID)
                .expect("export")
                .to_snapshot_bytes()
        };
        let serial = export_with(1);
        for threads in [2, 4] {
            assert_eq!(export_with(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn corrupted_export_is_rejected() {
        let reg = filled_registry();
        let mut bytes = reg
            .export_quantiles(&DEFAULT_PHI_GRID)
            .expect("export")
            .to_snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(QuantileExport::<u64>::from_snapshot_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_keys_export_empty_rows() {
        let reg: QuantileRegistry<u64, GkSummary<u64>> =
            QuantileRegistry::new(ServiceConfig::default(), || GkSummary::new(0.05));
        let _ = reg.handle("silent");
        let export = reg.export_quantiles(&[0.5]).expect("export");
        assert_eq!(export.keys.len(), 1);
        assert_eq!(export.keys[0].n, 0);
        assert_eq!(export.keys[0].values, vec![None]);
    }
}
