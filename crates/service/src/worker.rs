//! The background merge/compaction worker.
//!
//! Cadence is counted in ingest *runs* (see
//! [`ServiceConfig::fold_cadence`](crate::ServiceConfig::fold_cadence)),
//! never wall-clock time: the workspace determinism rule bans `Instant`
//! and `SystemTime`, so the worker sleeps on a condvar and is woken by
//! the handle that crossed the cadence. Each wake folds the slot from
//! scratch via [`MergeableSummary::try_merge`], which re-validates the
//! composed ε and the summary invariant — a fold failure is recorded,
//! not swallowed.
//!
//! [`MergeableSummary::try_merge`]: cqs_core::MergeableSummary::try_merge

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use cqs_core::{MergeError, MergeableSummary};

use crate::registry::{lock, KeySlot, QuantileRegistry};

struct WakeState<S> {
    queue: VecDeque<Arc<KeySlot<S>>>,
    shutdown: bool,
    fold_errors: u64,
    last_error: Option<MergeError>,
}

/// Condvar-backed wake queue shared between handles and the worker.
pub(crate) struct WakeQueue<S> {
    state: Mutex<WakeState<S>>,
    cv: Condvar,
}

impl<S> WakeQueue<S> {
    pub(crate) fn new() -> Self {
        WakeQueue {
            state: Mutex::new(WakeState {
                queue: VecDeque::new(),
                shutdown: false,
                fold_errors: 0,
                last_error: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a slot for folding (deduplicated by identity — a slot
    /// already queued is not queued twice) and wakes the worker.
    pub(crate) fn enqueue(&self, slot: Arc<KeySlot<S>>) {
        let mut st = lock(&self.state);
        if !st.queue.iter().any(|q| Arc::ptr_eq(q, &slot)) {
            st.queue.push_back(slot);
        }
        drop(st);
        self.cv.notify_one();
    }

    fn record_error(&self, err: MergeError) {
        let mut st = lock(&self.state);
        st.fold_errors += 1;
        st.last_error = Some(err);
    }

    fn request_shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.cv.notify_all();
    }
}

fn worker_loop<T, S>(wake: &WakeQueue<S>)
where
    T: Ord + Clone,
    S: MergeableSummary<T> + Clone,
{
    loop {
        let slot = {
            let mut st = lock(&wake.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(slot) = st.queue.pop_front() {
                    break slot;
                }
                st = match wake.cv.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        if let Err(err) = slot.fold::<T>() {
            wake.record_error(err);
        }
    }
}

/// Owns the background fold thread; dropping it shuts the thread down.
pub struct MergeWorker<S> {
    wake: Arc<WakeQueue<S>>,
    thread: Option<thread::JoinHandle<()>>,
}

impl<S> MergeWorker<S> {
    fn spawn<T>(wake: Arc<WakeQueue<S>>) -> Self
    where
        T: Ord + Clone + Send + 'static,
        S: MergeableSummary<T> + Clone + Send + 'static,
    {
        let worker_wake = Arc::clone(&wake);
        let thread = thread::Builder::new()
            .name("cqs-merge-worker".to_string())
            .spawn(move || worker_loop::<T, S>(&worker_wake))
            .expect("spawning the merge worker thread");
        MergeWorker {
            wake,
            thread: Some(thread),
        }
    }

    /// How many background folds have failed so far.
    pub fn fold_errors(&self) -> u64 {
        lock(&self.wake.state).fold_errors
    }

    /// The most recent fold failure, if any.
    pub fn last_error(&self) -> Option<MergeError> {
        lock(&self.wake.state).last_error.clone()
    }

    /// Signals shutdown and joins the worker thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.wake.request_shutdown();
        if let Some(thread) = self.thread.take() {
            // A panicking worker already recorded its state; joining is
            // best-effort cleanup.
            let _ = thread.join();
        }
    }
}

impl<S> Drop for MergeWorker<S> {
    fn drop(&mut self) {
        self.stop();
    }
}

impl<T, S> QuantileRegistry<T, S>
where
    T: Ord + Clone + Send + 'static,
    S: MergeableSummary<T> + Clone + Send + 'static,
{
    /// Starts the background merge worker for this registry. Handles
    /// wake it whenever a key crosses its fold cadence; the worker
    /// refreshes that key's fold cache off the ingest path.
    pub fn start_merge_worker(&self) -> MergeWorker<S> {
        MergeWorker::spawn::<T>(Arc::clone(self.wake()))
    }
}

/// Compile-time audit: everything that crosses the worker and ingest
/// pool boundaries is `Send`, and the shared facade types are `Sync`.
/// The `sharding-send-sync` lint derives this type set from the spawn
/// sites and checks these lines exist.
#[allow(dead_code)]
fn sharding_send_sync_audit<T, S>()
where
    T: Ord + Clone + Send + Sync + 'static,
    S: MergeableSummary<T> + Clone + Send + 'static,
{
    fn assert_send<X: Send>() {}
    fn assert_sync<X: Sync>() {}
    assert_send::<QuantileRegistry<T, S>>();
    assert_sync::<QuantileRegistry<T, S>>();
    assert_send::<crate::SummaryHandle<T, S>>();
    assert_sync::<crate::SummaryHandle<T, S>>();
    assert_send::<KeySlot<S>>();
    assert_sync::<KeySlot<S>>();
    assert_send::<WakeQueue<S>>();
    assert_sync::<WakeQueue<S>>();
    assert_send::<MergeWorker<S>>();
    assert_send::<crate::ServiceConfig>();
    assert_send::<crate::QuantileExport<T>>();
    assert_send::<crate::KeyQuantiles<T>>();
    assert_send::<MergeError>();
}

#[cfg(test)]
mod tests {
    use crate::{QuantileRegistry, ServiceConfig};
    use cqs_core::ComparisonSummary;
    use cqs_gk::GkSummary;

    #[test]
    fn worker_folds_on_cadence_and_shuts_down() {
        let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
            ServiceConfig {
                shards: 2,
                stripes: 2,
                fold_cadence: 4,
            },
            || GkSummary::new(0.05),
        );
        let worker = reg.start_merge_worker();
        let h = reg.handle("cadence");
        for run in 0..16u64 {
            let base = run * 10;
            h.record_sorted_run(&[base, base + 1, base + 2]);
        }
        // The fold result is version-cached, so the worker's folds and
        // this query agree regardless of scheduling.
        let folded = h.folded().expect("fold").expect("non-empty");
        assert_eq!(folded.items_processed(), 48);
        assert_eq!(worker.fold_errors(), 0);
        assert!(worker.last_error().is_none());
        worker.shutdown();
    }
}
