//! The lock-striped registry, per-key shard slots, and clonable handles.
//!
//! The layout follows the registry/handle split of production metrics
//! facades: the registry owns the striped key map; a [`SummaryHandle`]
//! is a cheap `Arc` clone that writers keep on the hot path so that
//! recording never touches the key map again. Each key owns `S`
//! independent summary shards behind their own mutexes; reads fold the
//! shards from scratch with [`MergeableSummary::try_merge`], so the
//! composed error bound stays at (non-empty shards) × ε₀ no matter how
//! many fold cycles have run.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cqs_core::{ComparisonSummary, MergeError, MergeableSummary};

use crate::worker::WakeQueue;

/// Locks a mutex, recovering the data from a poisoned lock. A panicking
/// sibling thread must not wedge the registry: reads fold shards from
/// scratch, so the worst a poisoned shard can cost is the run that was
/// being applied when its writer panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sizing knobs for a [`QuantileRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Per-key shard count `S`. Writers spread across shards (so ingest
    /// scales with cores) and reads pay a composed error bound of at
    /// most `S × ε₀`.
    pub shards: usize,
    /// Number of lock stripes over the key map. Only key *creation and
    /// lookup* contend here — recording goes through handles.
    pub stripes: usize,
    /// Ingest runs between background fold requests for a key. Cadence
    /// is counted in runs, not wall-clock time, so the service stays
    /// deterministic under the workspace's no-clock rule.
    pub fold_cadence: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            stripes: 16,
            fold_cadence: 64,
        }
    }
}

impl ServiceConfig {
    /// Clamps every knob to at least 1 so a zeroed config degrades to a
    /// single-shard, single-stripe registry instead of panicking.
    pub(crate) fn normalized(self) -> Self {
        ServiceConfig {
            shards: self.shards.max(1),
            stripes: self.stripes.max(1),
            fold_cadence: self.fold_cadence.max(1),
        }
    }
}

/// Cached result of the last fold, stamped with the slot version it saw.
struct FoldCache<S> {
    summary: Option<S>,
    at_version: u64,
}

/// One key's state: `S` summary shards plus the fold cache.
pub(crate) struct KeySlot<S> {
    key: String,
    shards: Box<[Mutex<S>]>,
    /// Round-robin cursor for handle-level recording. Distinct from
    /// `version`: the cursor moves *before* a run is applied, the
    /// version only after, so a concurrent fold can never cache
    /// pre-run data under a post-run stamp.
    cursor: AtomicU64,
    /// Bumped once per applied run; validates the fold cache.
    version: AtomicU64,
    /// Runs since the last fold; crossing the cadence wakes the worker.
    runs_since_fold: AtomicU64,
    merged: Mutex<FoldCache<S>>,
}

impl<S> KeySlot<S> {
    pub(crate) fn new(key: String, shards: usize, make: &dyn Fn() -> S) -> Self {
        KeySlot {
            key,
            shards: (0..shards).map(|_| Mutex::new(make())).collect(),
            cursor: AtomicU64::new(0),
            version: AtomicU64::new(0),
            runs_since_fold: AtomicU64::new(0),
            merged: Mutex::new(FoldCache {
                summary: None,
                at_version: u64::MAX,
            }),
        }
    }

    pub(crate) fn key(&self) -> &str {
        &self.key
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn next_shard(&self) -> usize {
        (self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as usize
    }

    /// Applies one sorted run to a specific shard and stamps the slot.
    /// Returns the number of items recorded (`insert_sorted_run` itself
    /// reports peak space, which the service does not track per run).
    pub(crate) fn apply_run<T>(&self, shard: usize, run: &[T]) -> usize
    where
        T: Ord + Clone,
        S: ComparisonSummary<T>,
    {
        let _peak = lock(&self.shards[shard]).insert_sorted_run(run);
        self.version.fetch_add(1, Ordering::AcqRel);
        run.len()
    }

    /// Applies one item to the next round-robin shard.
    pub(crate) fn apply_item<T>(&self, item: T)
    where
        T: Ord + Clone,
        S: ComparisonSummary<T>,
    {
        let shard = self.next_shard();
        lock(&self.shards[shard]).insert(item);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Counts a run toward the fold cadence; true exactly when this run
    /// crossed it (the caller then enqueues the slot for the worker).
    pub(crate) fn note_run(&self, cadence: u64) -> bool {
        let prev = self.runs_since_fold.fetch_add(1, Ordering::AcqRel);
        prev + 1 == cadence
    }

    /// Total items across all shards (briefly locks each in turn).
    pub(crate) fn items_processed<T>(&self) -> u64
    where
        T: Ord + Clone,
        S: ComparisonSummary<T>,
    {
        self.shards.iter().map(|s| lock(s).items_processed()).sum()
    }

    /// Folds all non-empty shards, in shard order, into one summary.
    ///
    /// Always folds *from scratch* (never into a persistent
    /// accumulator), so the composed ε is bounded by the number of
    /// non-empty shards times the per-shard ε₀ regardless of how many
    /// folds have run. The result is cached under the slot version; a
    /// fold that observes an unchanged version is a cache clone.
    pub(crate) fn fold<T>(&self) -> Result<Option<S>, MergeError>
    where
        T: Ord + Clone,
        S: MergeableSummary<T> + Clone,
    {
        let stamp = self.version.load(Ordering::Acquire);
        {
            let cache = lock(&self.merged);
            if cache.at_version == stamp {
                return Ok(cache.summary.clone());
            }
        }
        let mut acc: Option<S> = None;
        for shard in self.shards.iter() {
            let guard = lock(shard);
            if guard.items_processed() == 0 {
                continue; // empty shards must not widen the composed eps
            }
            match acc.as_mut() {
                None => acc = Some(guard.clone()),
                Some(folded) => folded.try_merge(&guard)?,
            }
        }
        self.runs_since_fold.store(0, Ordering::Release);
        let mut cache = lock(&self.merged);
        cache.summary = acc.clone();
        cache.at_version = stamp;
        Ok(acc)
    }
}

/// Deterministic FNV-1a stripe placement — no ambient hasher state, so
/// the stripe of a key is the same in every run and process.
fn stripe_of(key: &str, stripes: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % stripes as u64) as usize
}

/// One lock stripe: a sorted key → slot map behind its own mutex.
type Stripe<S> = Mutex<BTreeMap<String, Arc<KeySlot<S>>>>;

struct RegistryInner<S> {
    stripes: Box<[Stripe<S>]>,
    make: Box<dyn Fn() -> S + Send + Sync>,
    config: ServiceConfig,
    wake: Arc<WakeQueue<S>>,
}

/// A multi-tenant registry of sharded quantile summaries.
///
/// Keys live in lock-striped `BTreeMap`s (deterministic iteration; the
/// workspace determinism rule bans `HashMap`). [`handle`] resolves a key
/// once; all recording then goes through the returned
/// [`SummaryHandle`] without touching the stripes again.
///
/// [`handle`]: QuantileRegistry::handle
pub struct QuantileRegistry<T, S> {
    inner: Arc<RegistryInner<S>>,
    _items: PhantomData<fn(T) -> T>,
}

impl<T, S> Clone for QuantileRegistry<T, S> {
    fn clone(&self) -> Self {
        QuantileRegistry {
            inner: Arc::clone(&self.inner),
            _items: PhantomData,
        }
    }
}

impl<T, S> QuantileRegistry<T, S>
where
    T: Ord + Clone,
    S: ComparisonSummary<T>,
{
    /// Creates a registry whose per-key shards are built by `make`.
    pub fn new(config: ServiceConfig, make: impl Fn() -> S + Send + Sync + 'static) -> Self {
        let config = config.normalized();
        let stripes = (0..config.stripes)
            .map(|_| Mutex::new(BTreeMap::new()))
            .collect();
        QuantileRegistry {
            inner: Arc::new(RegistryInner {
                stripes,
                make: Box::new(make),
                config,
                wake: Arc::new(WakeQueue::new()),
            }),
            _items: PhantomData,
        }
    }

    /// The (normalized) configuration this registry runs with.
    pub fn config(&self) -> ServiceConfig {
        self.inner.config
    }

    /// Resolves `key` to a handle, creating its shard slot on first use.
    pub fn handle(&self, key: &str) -> SummaryHandle<T, S> {
        let stripe = &self.inner.stripes[stripe_of(key, self.inner.stripes.len())];
        let slot = {
            let mut map = lock(stripe);
            match map.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(KeySlot::new(
                        key.to_string(),
                        self.inner.config.shards,
                        self.inner.make.as_ref(),
                    ));
                    map.insert(key.to_string(), Arc::clone(&slot));
                    slot
                }
            }
        };
        SummaryHandle {
            slot,
            wake: Arc::clone(&self.inner.wake),
            cadence: self.inner.config.fold_cadence,
            _items: PhantomData,
        }
    }

    /// All registered keys, in lexicographic order (stripes partition
    /// the key space, so a single sort restores the global order).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .stripes
            .iter()
            .flat_map(|stripe| lock(stripe).keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.inner.stripes.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether no key has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All key slots in lexicographic key order (for one-pass export).
    pub(crate) fn slots_sorted(&self) -> Vec<Arc<KeySlot<S>>> {
        let mut slots: Vec<Arc<KeySlot<S>>> = self
            .inner
            .stripes
            .iter()
            .flat_map(|stripe| lock(stripe).values().cloned().collect::<Vec<_>>())
            .collect();
        slots.sort_unstable_by(|a, b| a.key().cmp(b.key()));
        slots
    }

    pub(crate) fn wake(&self) -> &Arc<WakeQueue<S>> {
        &self.inner.wake
    }
}

impl<T, S> QuantileRegistry<T, S>
where
    T: Ord + Clone,
    S: MergeableSummary<T> + Clone,
{
    /// Folds the named key's shards into one summary; `Ok(None)` when
    /// the key is unknown or has seen no items.
    pub fn folded(&self, key: &str) -> Result<Option<S>, MergeError> {
        let stripe = &self.inner.stripes[stripe_of(key, self.inner.stripes.len())];
        let slot = { lock(stripe).get(key).cloned() };
        match slot {
            Some(slot) => slot.fold::<T>(),
            None => Ok(None),
        }
    }
}

/// A cheap clonable writer/reader handle for one key.
///
/// Handles are item-opaque: they move items into the underlying
/// comparison-based summaries and never inspect item values themselves
/// (the model-purity lint certifies this).
pub struct SummaryHandle<T, S> {
    slot: Arc<KeySlot<S>>,
    wake: Arc<WakeQueue<S>>,
    cadence: u64,
    _items: PhantomData<fn(T) -> T>,
}

impl<T, S> Clone for SummaryHandle<T, S> {
    fn clone(&self) -> Self {
        SummaryHandle {
            slot: Arc::clone(&self.slot),
            wake: Arc::clone(&self.wake),
            cadence: self.cadence,
            _items: PhantomData,
        }
    }
}

impl<T, S> SummaryHandle<T, S>
where
    T: Ord + Clone,
    S: ComparisonSummary<T>,
{
    /// The key this handle records under.
    pub fn key(&self) -> &str {
        self.slot.key()
    }

    /// Per-key shard count `S`.
    pub fn shard_count(&self) -> usize {
        self.slot.shard_count()
    }

    /// Total items recorded under this key, across all shards.
    pub fn items_processed(&self) -> u64 {
        self.slot.items_processed::<T>()
    }

    /// Records one item on the next round-robin shard.
    pub fn record(&self, item: T) {
        self.slot.apply_item(item);
        self.note_run();
    }

    /// Records a non-decreasing run on the next round-robin shard via
    /// the summary's batched `insert_sorted_run` path. Returns how many
    /// items were recorded (the run length).
    pub fn record_sorted_run(&self, run: &[T]) -> usize {
        let shard = self.slot.next_shard();
        let inserted = self.slot.apply_run(shard, run);
        self.note_run();
        inserted
    }

    /// Records a non-decreasing run on a *specific* shard. The
    /// deterministic parallel-ingest driver uses this to pin batch `b`
    /// to shard `b mod S` so the final state is independent of the
    /// thread count.
    pub fn record_sorted_run_at(&self, shard: usize, run: &[T]) -> usize {
        let inserted = self.slot.apply_run(shard % self.slot.shard_count(), run);
        self.note_run();
        inserted
    }

    fn note_run(&self) {
        if self.slot.note_run(self.cadence) {
            self.wake.enqueue(Arc::clone(&self.slot));
        }
    }
}

impl<T, S> SummaryHandle<T, S>
where
    T: Ord + Clone,
    S: MergeableSummary<T> + Clone,
{
    /// Folds all shards into one summary (cached per slot version);
    /// `Ok(None)` while the key has seen no items.
    pub fn folded(&self) -> Result<Option<S>, MergeError> {
        self.slot.fold::<T>()
    }

    /// The φ-quantile of everything recorded under this key.
    pub fn quantile(&self, phi: f64) -> Result<Option<T>, MergeError> {
        Ok(self.folded()?.and_then(|s| s.quantile(phi)))
    }

    /// The composed worst-case ε after folding, or `None` when the key
    /// is empty or the summary's guarantee is probabilistic.
    pub fn composed_eps(&self) -> Result<Option<f64>, MergeError> {
        Ok(self.folded()?.and_then(|s| s.eps_bound()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_gk::GkSummary;

    fn registry(shards: usize) -> QuantileRegistry<u64, GkSummary<u64>> {
        QuantileRegistry::new(
            ServiceConfig {
                shards,
                stripes: 4,
                fold_cadence: 8,
            },
            || GkSummary::new(0.01),
        )
    }

    #[test]
    fn handle_roundtrip_single_shard_matches_direct_summary() {
        let reg = registry(1);
        let h = reg.handle("latency");
        for v in 0..1000u64 {
            h.record(v);
        }
        let mut direct = GkSummary::new(0.01);
        for v in 0..1000u64 {
            direct.insert(v);
        }
        let folded = h.folded().expect("fold").expect("non-empty");
        assert_eq!(folded.items_processed(), 1000);
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(folded.quantile(phi), direct.quantile(phi));
        }
    }

    #[test]
    fn sharded_fold_stays_within_composed_eps() {
        let shards = 4;
        let reg = registry(shards);
        let h = reg.handle("latency");
        let n = 4000u64;
        for v in 0..n {
            h.record(v);
        }
        let folded = h.folded().expect("fold").expect("non-empty");
        assert_eq!(folded.items_processed(), n);
        let eps = h.composed_eps().expect("fold").expect("gk reports eps");
        assert!(
            eps <= 0.01 * shards as f64 + 1e-12,
            "composed eps {eps} exceeds shards * eps0"
        );
        let allowed = (eps * n as f64).ceil() as i64 + 1;
        for r in (0..n).step_by(97) {
            let got = folded.query_rank(r).expect("rank in range");
            let err = (got as i64 - r as i64).abs();
            assert!(err <= allowed, "rank {r}: got {got}, err {err} > {allowed}");
        }
    }

    #[test]
    fn fold_cache_reuses_unchanged_version() {
        let reg = registry(2);
        let h = reg.handle("k");
        h.record_sorted_run(&[1, 2, 3]);
        let a = h.folded().expect("fold").expect("non-empty");
        let b = h.folded().expect("fold").expect("non-empty");
        assert_eq!(a.items_processed(), b.items_processed());
        h.record(4);
        let c = h.folded().expect("fold").expect("non-empty");
        assert_eq!(c.items_processed(), 4);
    }

    #[test]
    fn keys_are_sorted_across_stripes() {
        let reg = registry(1);
        for key in ["zeta", "alpha", "mid", "beta"] {
            reg.handle(key).record(1u64);
        }
        assert_eq!(reg.keys(), vec!["alpha", "beta", "mid", "zeta"]);
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
    }

    #[test]
    fn registry_folded_handles_unknown_keys() {
        let reg = registry(2);
        assert!(reg.folded("missing").expect("fold").is_none());
        reg.handle("present").record(7u64);
        assert!(reg.folded("present").expect("fold").is_some());
    }
}
