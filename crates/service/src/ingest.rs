//! Deterministic parallel ingest.
//!
//! The determinism contract is the same as the harness's `--jobs` flag:
//! the *placement* of work is fixed by input position — batch `b` goes
//! to shard `b mod S` — and worker threads claim whole shards from an
//! atomic counter (the `cqs_bench::exec::run_cells` pattern). Each
//! shard therefore receives exactly its batches, in input order, from
//! exactly one thread, so the final shard states — and any export
//! folded from them — are byte-identical for every thread count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use cqs_core::ComparisonSummary;

use crate::registry::SummaryHandle;

/// Sorts a copy of `batch` and applies it to `shard` through the
/// summary's batched `insert_sorted_run` path. Sorting happens inside
/// the claiming worker, so it parallelizes with the rest of the ingest.
fn apply_batch<T, S>(handle: &SummaryHandle<T, S>, shard: usize, batch: &[T]) -> u64
where
    T: Ord + Clone,
    S: ComparisonSummary<T>,
{
    let mut run = batch.to_vec();
    run.sort_unstable();
    handle.record_sorted_run_at(shard, &run) as u64
}

/// Ingests `batches` under `handle` using up to `threads` worker
/// threads; returns the total number of items accepted.
///
/// Batch `b` lands on shard `b mod S` regardless of `threads`, so for a
/// fixed batch sequence the resulting shard states (and everything
/// folded or exported from them) are identical for every thread count.
/// Parallelism is capped at the shard count — extra threads would have
/// no shard to claim.
pub fn parallel_ingest<T, S>(
    handle: &SummaryHandle<T, S>,
    batches: &[Vec<T>],
    threads: usize,
) -> u64
where
    T: Ord + Clone + Send + Sync,
    S: ComparisonSummary<T> + Send,
{
    let shards = handle.shard_count();
    let threads = threads.clamp(1, shards);
    if threads <= 1 {
        // Round-robin by position, same placement as the striding
        // workers below (batch b -> shard b mod S).
        let mut total = 0u64;
        let mut shard = 0usize;
        for batch in batches {
            total += apply_batch(handle, shard, batch);
            shard += 1;
            if shard == shards {
                shard = 0;
            }
        }
        return total;
    }
    let next = AtomicUsize::new(0);
    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = 0u64;
                loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    // This worker owns shard `shard`: batches shard,
                    // shard+S, shard+2S, ... in input order.
                    let mut b = shard;
                    while b < batches.len() {
                        local += apply_batch(handle, shard, &batches[b]);
                        b += shards;
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuantileRegistry, ServiceConfig};
    use cqs_core::MergeableSummary;
    use cqs_gk::GkSummary;

    fn batches(n: u64, batch: usize) -> Vec<Vec<u64>> {
        // Shuffled values via an LCG so sorting inside ingest matters.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut vals: Vec<u64> = (0..n).collect();
        for i in (1..vals.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state % (i as u64 + 1)) as usize;
            vals.swap(i, j);
        }
        vals.chunks(batch).map(|c| c.to_vec()).collect()
    }

    fn exported_state(threads: usize) -> (u64, Vec<Option<u64>>) {
        let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
            ServiceConfig {
                shards: 4,
                stripes: 4,
                fold_cadence: 1024,
            },
            || GkSummary::new(0.01),
        );
        let h = reg.handle("det");
        let total = parallel_ingest(&h, &batches(5000, 64), threads);
        let folded = h.folded().expect("fold").expect("non-empty");
        let phis: Vec<Option<u64>> = (1..20).map(|i| folded.quantile(i as f64 / 20.0)).collect();
        (total, phis)
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let serial = exported_state(1);
        for threads in [2, 4, 8] {
            assert_eq!(exported_state(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_ingest_counts_every_item() {
        let reg: QuantileRegistry<u64, GkSummary<u64>> =
            QuantileRegistry::new(ServiceConfig::default(), || GkSummary::new(0.02));
        let h = reg.handle("count");
        let total = parallel_ingest(&h, &batches(3000, 50), 4);
        assert_eq!(total, 3000);
        assert_eq!(h.items_processed(), 3000);
    }

    #[test]
    fn composed_eps_tracks_non_empty_shards() {
        let reg: QuantileRegistry<u64, GkSummary<u64>> = QuantileRegistry::new(
            ServiceConfig {
                shards: 8,
                stripes: 1,
                fold_cadence: 1024,
            },
            || GkSummary::new(0.005),
        );
        let h = reg.handle("eps");
        // Two batches -> only shards 0 and 1 are non-empty.
        parallel_ingest(&h, &batches(200, 100), 8);
        let folded = h.folded().expect("fold").expect("non-empty");
        let eps = folded.eps_bound().expect("gk reports eps");
        assert!(
            eps <= 2.0 * 0.005 + 1e-12,
            "eps {eps} should reflect 2 non-empty shards, not 8"
        );
    }
}
