//! A sharded, multi-tenant quantile service over comparison-based
//! summaries.
//!
//! The lower-bound construction (Theorem 2.2) prices a single summary;
//! this crate is the layer that runs *many* of them concurrently
//! without giving up the model or the error guarantees:
//!
//! - [`QuantileRegistry`] — a lock-striped map from string keys to
//!   per-key shard slots; [`SummaryHandle`]s are cheap `Arc` clones
//!   that keep recording off the key map (the registry/handle split of
//!   production metrics facades).
//! - Per-key **shards**: each key owns `S` independent summaries so
//!   concurrent writers do not serialize on one mutex. Reads fold the
//!   shards from scratch with
//!   [`MergeableSummary::try_merge`](cqs_core::MergeableSummary), so
//!   the composed error is bounded by (non-empty shards) × ε₀ — the
//!   mergeable-summaries contract — no matter how often folds run.
//! - [`parallel_ingest`] — deterministic fan-out: batch `b` lands on
//!   shard `b mod S` and workers claim whole shards, so the final
//!   state (and any [`QuantileExport`] bytes) is identical for every
//!   thread count — the same contract as the harness `--jobs` flag.
//! - [`MergeWorker`] — a condvar-driven background folder woken every
//!   `fold_cadence` ingest runs (never by a wall clock; the workspace
//!   determinism rules ban `Instant`/`SystemTime`).
//!
//! Everything is std-only, like the rest of the workspace: scoped
//! threads, mutexes, and condvars — no async runtime, no registry
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod ingest;
mod registry;
mod worker;

pub use export::{KeyQuantiles, QuantileExport, DEFAULT_PHI_GRID};
pub use ingest::parallel_ingest;
pub use registry::{QuantileRegistry, ServiceConfig, SummaryHandle};
pub use worker::MergeWorker;
