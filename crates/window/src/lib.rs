#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-window — sliding-window quantiles over chunked GK summaries
//!
//! The lower-bound paper's related work (via the Greenwald–Khanna survey
//! it cites) covers the *sliding-window* model: answer quantile queries
//! over only the most recent W items. This crate implements the classic
//! chunked-merge approach on top of the workspace's mergeable GK
//! summaries:
//!
//! * the window is covered by `b` sealed chunks of `W/b` items, each
//!   summarised by its own [`GkSummary`], plus one growing chunk;
//! * a query merges the chunks overlapping the window (using
//!   [`GkSummary::merge`]) and answers from the merged summary;
//! * the oldest chunk generally straddles the window boundary; its items
//!   cannot be split apart, so it is included whole, adding at most
//!   `W/b` phantom items — a rank slop of 1/b of the window, on top of
//!   the GK merge error.
//!
//! Total rank error per query is at most `(2ε + 1/b)·W`; pick `b ≈ 1/ε`
//! for a clean Θ(ε)-windowed guarantee at O((b/ε)·log(εW/b)) space.
//!
//! # Example
//!
//! ```
//! use cqs_window::SlidingWindowGk;
//!
//! let mut w = SlidingWindowGk::new(0.01, 10_000, 16);
//! for x in 0..100_000u64 {
//!     w.insert(x);
//! }
//! // Only the last 10k items (90k..100k) are in scope.
//! let med = w.quantile(0.5).unwrap();
//! assert!((93_500..=96_500).contains(&med));
//! ```

use cqs_core::ComparisonSummary;
use cqs_gk::GkSummary;

/// One sealed chunk: `end` is the stream index one past its last item.
#[derive(Clone, Debug)]
struct Chunk<T> {
    end: u64,
    summary: GkSummary<T>,
}

/// A sliding-window quantile summary (last `window` items).
#[derive(Clone, Debug)]
pub struct SlidingWindowGk<T> {
    chunks: Vec<Chunk<T>>,
    current: GkSummary<T>,
    current_start: u64,
    eps: f64,
    window: u64,
    chunk_len: u64,
    n: u64,
}

impl<T: Ord + Clone> SlidingWindowGk<T> {
    /// Creates a summary answering over the trailing `window` items,
    /// covered by `buckets` chunks.
    ///
    /// # Panics
    ///
    /// Panics unless `window ≥ buckets ≥ 2` and ε is in (0, 0.5).
    pub fn new(eps: f64, window: u64, buckets: u64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        assert!(buckets >= 2, "need at least two chunks");
        assert!(
            window >= buckets,
            "window must cover at least one item per chunk"
        );
        SlidingWindowGk {
            chunks: Vec::new(),
            current: GkSummary::new(eps),
            current_start: 0,
            eps,
            window,
            chunk_len: window / buckets,
            n: 0,
        }
    }

    /// Inserts the next stream item.
    pub fn insert(&mut self, item: T) {
        self.current.insert(item);
        self.n += 1;
        if self.n - self.current_start == self.chunk_len {
            let sealed = std::mem::replace(&mut self.current, GkSummary::new(self.eps));
            self.chunks.push(Chunk {
                end: self.n,
                summary: sealed,
            });
            self.current_start = self.n;
            self.evict();
        }
    }

    fn evict(&mut self) {
        let cutoff = self.n.saturating_sub(self.window);
        // A chunk is dead once even its newest item is outside the
        // window.
        self.chunks.retain(|c| c.end > cutoff);
    }

    /// Items seen over the whole stream.
    pub fn items_processed(&self) -> u64 {
        self.n
    }

    /// Number of items currently answerable (≤ window).
    pub fn window_len(&self) -> u64 {
        self.n.min(self.window)
    }

    /// Items currently stored across all chunk summaries.
    pub fn stored_count(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.summary.stored_count())
            .sum::<usize>()
            + self.current.stored_count()
    }

    /// The nominal window size W.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Builds the merged view of the live window (the straddling chunk
    /// included whole).
    fn merged(&self) -> Option<GkSummary<T>> {
        let mut parts: Vec<&GkSummary<T>> = self.chunks.iter().map(|c| &c.summary).collect();
        if self.current.items_processed() > 0 {
            parts.push(&self.current);
        }
        let (first, rest) = parts.split_first()?;
        let mut acc = (*first).clone();
        for s in rest {
            acc.merge(s);
        }
        Some(acc)
    }

    /// The ϕ-quantile of the current window (boundary slop of one chunk
    /// included — see the crate docs for the error budget).
    pub fn quantile(&self, phi: f64) -> Option<T> {
        let merged = self.merged()?;
        merged.quantile(phi.clamp(0.0, 1.0))
    }

    /// Rank query against the window (1 ≤ r ≤ window_len).
    pub fn query_rank(&self, r: u64) -> Option<T> {
        let merged = self.merged()?;
        let m = merged.items_processed();
        // Map the window rank onto the merged mass (which may include
        // the straddling chunk's expired prefix).
        let w = self.window_len().max(1);
        let target = (r.clamp(1, w) as u128 * m as u128 / w as u128) as u64;
        merged.query_rank(target.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window() {
        let w: SlidingWindowGk<u64> = SlidingWindowGk::new(0.05, 100, 4);
        assert_eq!(w.quantile(0.5), None);
        assert_eq!(w.window_len(), 0);
    }

    #[test]
    fn window_shorter_than_stream_tracks_recent_items() {
        let mut w = SlidingWindowGk::new(0.01, 10_000, 20);
        for x in 0..200_000u64 {
            w.insert(x);
        }
        // Window ≈ (190_000, 200_000]; slop: one chunk = 500 items.
        let med = w.quantile(0.5).unwrap();
        assert!(
            (194_000..=196_000).contains(&med),
            "median {med} not tracking the window"
        );
        let p10 = w.quantile(0.1).unwrap();
        assert!(p10 >= 189_000, "p10 {p10} references expired items");
    }

    #[test]
    fn distribution_shift_is_forgotten() {
        // First 50k items are huge; then 20k small ones. With W = 10k the
        // huge regime must vanish entirely from the answers.
        let mut w = SlidingWindowGk::new(0.02, 10_000, 10);
        for x in 0..50_000u64 {
            w.insert(1_000_000 + x);
        }
        for x in 0..20_000u64 {
            w.insert(x % 1_000);
        }
        let p99 = w.quantile(0.99).unwrap();
        assert!(p99 < 1_000, "stale regime leaked into p99: {p99}");
    }

    #[test]
    fn space_is_bounded_by_chunks_not_stream() {
        let mut w = SlidingWindowGk::new(0.01, 8_192, 16);
        let mut peak = 0usize;
        for x in 0..300_000u64 {
            w.insert((x * 48_271) % 65_536);
            peak = peak.max(w.stored_count());
        }
        // 16 live chunks of 512 items each, GK-compressed; far below W.
        assert!(peak < 4_000, "peak {peak} not bounded");
        assert!(w.window_len() == 8_192);
    }

    #[test]
    fn short_stream_behaves_like_plain_gk() {
        let mut w = SlidingWindowGk::new(0.02, 100_000, 10);
        let mut gk = GkSummary::new(0.02);
        for x in 0..5_000u64 {
            w.insert(x);
            gk.insert(x);
        }
        let a = w.quantile(0.5).unwrap();
        let b = gk.quantile(0.5).unwrap();
        assert!(a.abs_diff(b) <= 400, "window {a} vs plain {b}");
    }

    #[test]
    fn rank_queries_map_to_window() {
        let mut w = SlidingWindowGk::new(0.01, 1_000, 10);
        for x in 0..10_000u64 {
            w.insert(x);
        }
        // Rank 1 of the window ≈ item 9 000; rank 1000 ≈ 9 999.
        let lo = w.query_rank(1).unwrap();
        let hi = w.query_rank(1_000).unwrap();
        assert!(lo >= 8_800, "rank-1 {lo} too old");
        assert!(hi >= 9_950, "rank-W {hi} not near the newest");
        assert!(lo < hi);
    }

    #[test]
    #[should_panic(expected = "window must cover")]
    fn tiny_window_rejected() {
        SlidingWindowGk::<u64>::new(0.1, 2, 4);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn window_median_within_combined_budget(
            shift in 0u64..50_000,
            seed in 0u64..1000,
        ) {
            let window = 4_096u64;
            let buckets = 16u64;
            let eps = 0.02;
            let mut w = SlidingWindowGk::new(eps, window, buckets);
            let n = 30_000u64;
            let mut s = seed | 1;
            let mut vals = Vec::with_capacity(n as usize);
            for i in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (s >> 33) % 100_000 + shift + i; // drifting values
                w.insert(v);
                vals.push(v);
            }
            // Ground truth over the exact window plus the straddling
            // chunk slop.
            let tail: Vec<u64> = vals[(n - window) as usize..].to_vec();
            let mut sorted = tail.clone();
            sorted.sort_unstable();
            let ans = w.quantile(0.5).unwrap();
            let pos = sorted.partition_point(|&x| x <= ans) as i64;
            let target = (window / 2) as i64;
            // Budget: 2ε·W (merge) + W/b (chunk slop) + rounding.
            let budget = (2.0 * eps * window as f64) as i64 + (window / buckets) as i64 + 8;
            prop_assert!(
                (pos - target).abs() <= budget,
                "median {ans}: pos {pos} vs target {target} (budget {budget})"
            );
        }
    }
}
