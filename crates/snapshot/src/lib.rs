#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-snapshot — crash-recoverable snapshots for summaries and sweeps
//!
//! A dependency-free, versioned, length-framed binary wire format with
//! per-section CRC32 checksums, plus atomic write-temp-then-rename
//! persistence and a typed [`RestoreError`] taxonomy so that every
//! corruption is *detected and reported*, never silently restored.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! header:   magic "CQSS" (4) | version u32 LE | kind [u8;4]
//! section*: tag [u8;4] | payload_len u64 LE | payload | crc32 u32 LE
//! ```
//!
//! The CRC32 (IEEE polynomial) of each section covers its tag, length
//! field, and payload, so truncation, torn writes, bit flips, and
//! swapped sections are all caught before any payload is interpreted.
//! All integers are little-endian; floats travel as `f64::to_bits`, so
//! round-trips are bit-exact and restored sweeps render byte-identical
//! CSV output. See DESIGN.md §5.3 for the full specification.
//!
//! ## Who implements it
//!
//! [`SnapshotWrite`]/[`SnapshotRead`] are implemented here for the GK,
//! greedy-GK, MRL, and CKMS summaries (over `u64` and universe
//! [`Item`](cqs_universe::Item) streams) and for the adversary's live
//! [`StreamState`](cqs_core::StreamState) (summary + arrival tags).
//! `cqs-bench` layers sweep checkpoints on top for `--resume`.
//!
//! ## Atomicity and fallback
//!
//! [`atomic::write_atomic`] is the single sanctioned way to put bytes on
//! disk (the `snapshot-atomicity` lint flags direct `File::create` on
//! checkpoint paths); [`atomic::save_rotating`] keeps the previous good
//! generation as `<file>.prev`, and [`atomic::restore_with_fallback`]
//! degrades gracefully: corrupt latest → previous generation → cold
//! start, with every rejection recorded as a typed event.

pub mod atomic;
mod error;
mod stream;
mod summaries;
mod traits;
mod wire;

pub use error::RestoreError;
pub use traits::{SnapshotItem, SnapshotRead, SnapshotWrite};
pub use wire::{
    crc32, Decoder, Encoder, SnapshotReader, SnapshotWriter, HEADER_LEN, MAGIC, VERSION,
};
