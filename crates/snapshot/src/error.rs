//! The typed restore-failure taxonomy.

use std::fmt;

/// Why a snapshot could not be restored.
///
/// Mirrors the bench harness's `RunVerdict` design: every failure mode
/// has a variant, so callers can record *what* was wrong rather than a
/// stringly-typed guess, and no corruption is ever restored silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot file does not exist (a cold start, not corruption).
    Missing {
        /// The path that was probed.
        path: String,
    },
    /// An I/O error other than not-found while reading the file.
    Io {
        /// The path being read.
        path: String,
        /// The `std::io::Error` rendering.
        detail: String,
    },
    /// The file does not start with the `CQSS` magic.
    BadMagic,
    /// The header's format version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The header's kind tag names a different snapshot type.
    WrongKind {
        /// The kind the caller asked to restore.
        expected: [u8; 4],
        /// The kind found in the header.
        found: [u8; 4],
    },
    /// The file ends before a complete header or section.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's CRC32 does not match its contents.
    ChecksumMismatch {
        /// The section's tag, rendered as ASCII.
        section: String,
        /// The CRC stored in the file.
        stored: u32,
        /// The CRC computed over the bytes actually present.
        computed: u32,
    },
    /// A section arrived with an unexpected tag (e.g. sections swapped
    /// or reordered by a buggy writer).
    UnexpectedSection {
        /// The tag the reader expected next.
        expected: String,
        /// The tag actually found.
        found: String,
    },
    /// A section's payload decoded to something structurally invalid
    /// (bad counts, unsorted items, mass mismatch, ...).
    Malformed {
        /// Which section failed.
        section: String,
        /// What was wrong.
        detail: String,
    },
    /// Well-formed sections were followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl RestoreError {
    /// Whether this error indicates a damaged or forged file (as
    /// opposed to an absent one or an environmental I/O failure).
    pub fn is_corruption(&self) -> bool {
        !matches!(self, RestoreError::Missing { .. } | RestoreError::Io { .. })
    }

    /// Whether this is the benign file-not-found case.
    pub fn is_missing(&self) -> bool {
        matches!(self, RestoreError::Missing { .. })
    }

    /// A short stable identifier for tables and CSV verdict columns.
    pub fn code(&self) -> &'static str {
        match self {
            RestoreError::Missing { .. } => "missing",
            RestoreError::Io { .. } => "io",
            RestoreError::BadMagic => "bad-magic",
            RestoreError::UnsupportedVersion { .. } => "unsupported-version",
            RestoreError::WrongKind { .. } => "wrong-kind",
            RestoreError::Truncated { .. } => "truncated",
            RestoreError::ChecksumMismatch { .. } => "checksum-mismatch",
            RestoreError::UnexpectedSection { .. } => "unexpected-section",
            RestoreError::Malformed { .. } => "malformed",
            RestoreError::TrailingBytes { .. } => "trailing-bytes",
        }
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Missing { path } => write!(f, "snapshot missing: {path}"),
            RestoreError::Io { path, detail } => write!(f, "i/o error reading {path}: {detail}"),
            RestoreError::BadMagic => write!(f, "not a cqs snapshot (bad magic)"),
            RestoreError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} unsupported (expected {supported})")
            }
            RestoreError::WrongKind { expected, found } => write!(
                f,
                "wrong snapshot kind: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            RestoreError::Truncated { context } => {
                write!(f, "file truncated while reading {context}")
            }
            RestoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section}: crc32 mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            RestoreError::UnexpectedSection { expected, found } => {
                write!(f, "expected section {expected}, found {found}")
            }
            RestoreError::Malformed { section, detail } => {
                write!(f, "section {section} malformed: {detail}")
            }
            RestoreError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after final section")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Compile-time audit that restore verdicts are pool-safe: the bench
/// checkpointing wrapper decodes and reports them from sweep workers.
/// Never called — the `sharding-send-sync` lint rule derives the
/// requirement from the spawn-site call graph and keeps this line from
/// being deleted.
#[allow(dead_code)]
fn sharding_send_audit() {
    fn assert_send<T: Send>() {}
    assert_send::<RestoreError>();
}
