//! Atomic persistence and graceful-degradation restore.
//!
//! The atomicity protocol is write-temp-then-rename: bytes land in a
//! sibling `<file>.tmp`, then one `rename` publishes them — a reader
//! never observes a half-written snapshot under POSIX rename semantics.
//! [`save_rotating`] additionally keeps the previously published
//! generation as `<file>.prev`, and [`restore_with_fallback`] walks
//! latest → previous → cold start, recording a typed
//! [`RecoveryEvent`] for every file it had to reject. This module is
//! the only sanctioned writer of checkpoint paths; the
//! `snapshot-atomicity` lint flags `File::create`/`fs::write` on
//! checkpoint files anywhere else.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{RestoreError, SnapshotRead};

/// Appends `suffix` to the file name of `path` (not to its extension).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// The previous-generation path `<file>.prev` kept by [`save_rotating`].
pub fn previous_path(path: &Path) -> PathBuf {
    sibling(path, ".prev")
}

/// Atomically publishes `bytes` at `path` via a sibling temp file and
/// rename. The parent directory is created if absent.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = sibling(path, ".tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Atomically publishes `bytes` at `path`, first rotating any existing
/// published snapshot to `<file>.prev`.
///
/// Crash windows: dying before the rotation leaves the old generation
/// intact; dying between rotation and publish leaves only `.prev`,
/// which [`restore_with_fallback`] picks up. No window loses both
/// generations.
pub fn save_rotating(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = sibling(path, ".tmp");
    fs::write(&tmp, bytes)?;
    if path.exists() {
        fs::rename(path, previous_path(path))?;
    }
    fs::rename(&tmp, path)
}

/// Restores a `T` from the snapshot file at `path`.
///
/// A nonexistent file maps to [`RestoreError::Missing`]; any other read
/// failure to [`RestoreError::Io`]; everything else is the wire
/// format's own taxonomy.
pub fn restore_from_file<T: SnapshotRead>(path: &Path) -> Result<T, RestoreError> {
    let bytes = fs::read(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            RestoreError::Missing {
                path: path.display().to_string(),
            }
        } else {
            RestoreError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            }
        }
    })?;
    T::from_snapshot_bytes(&bytes)
}

/// Which generation a fallback restore came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// The latest published snapshot was intact.
    Latest,
    /// The latest was rejected; the rotated previous generation was
    /// intact.
    Previous,
}

/// One rejected snapshot file, with the typed reason.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// The rejected file.
    pub path: String,
    /// Why it was rejected.
    pub error: RestoreError,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.error)
    }
}

/// Outcome of [`restore_with_fallback`]: the restored value (if any
/// generation was intact), where it came from, and every rejection
/// verdict recorded along the way.
pub struct Recovery<T> {
    /// The restored value and its generation; `None` means cold start.
    pub value: Option<(T, RecoverySource)>,
    /// Typed verdicts for every file that was probed and rejected.
    /// Empty exactly when the latest snapshot restored cleanly or no
    /// snapshot existed at all (a clean cold start).
    pub events: Vec<RecoveryEvent>,
}

impl<T> Recovery<T> {
    /// Whether anything was restored.
    pub fn is_cold_start(&self) -> bool {
        self.value.is_none()
    }
}

/// Graceful degradation: restore the latest snapshot, falling back to
/// the `.prev` generation, then to a cold start. Corruption is never
/// restored and never silent — every rejected file yields a
/// [`RecoveryEvent`] with the typed [`RestoreError`].
pub fn restore_with_fallback<T: SnapshotRead>(path: &Path) -> Recovery<T> {
    let latest_err = match restore_from_file::<T>(path) {
        Ok(v) => {
            return Recovery {
                value: Some((v, RecoverySource::Latest)),
                events: Vec::new(),
            }
        }
        Err(e) => e,
    };
    let prev = previous_path(path);
    let prev_err = match restore_from_file::<T>(&prev) {
        Ok(v) => {
            // A missing latest next to an intact .prev is the
            // crashed-between-renames window: report it too, so the
            // fallback is visible.
            let events = vec![RecoveryEvent {
                path: path.display().to_string(),
                error: latest_err,
            }];
            return Recovery {
                value: Some((v, RecoverySource::Previous)),
                events,
            };
        }
        Err(e) => e,
    };
    if latest_err.is_missing() && prev_err.is_missing() {
        // Nothing ever written: a clean cold start, not a recovery.
        return Recovery {
            value: None,
            events: Vec::new(),
        };
    }
    let mut events = Vec::new();
    if !latest_err.is_missing() {
        events.push(RecoveryEvent {
            path: path.display().to_string(),
            error: latest_err,
        });
    }
    if !prev_err.is_missing() {
        events.push(RecoveryEvent {
            path: prev.display().to_string(),
            error: prev_err,
        });
    }
    Recovery {
        value: None,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotWrite;
    use cqs_core::ComparisonSummary;
    use cqs_gk::GkSummary;

    fn summary(n: u64) -> GkSummary<u64> {
        let mut gk = GkSummary::new(0.05);
        for x in 1..=n {
            gk.insert(x);
        }
        gk
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqs-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_restore_round_trip() {
        let dir = temp_dir("rt");
        let path = dir.join("gk.cqss");
        let gk = summary(1000);
        write_atomic(&path, &gk.to_snapshot_bytes()).unwrap();
        let back: GkSummary<u64> = restore_from_file(&path).unwrap();
        assert_eq!(back.item_array(), gk.item_array());
        assert!(!sibling(&path, ".tmp").exists(), "temp file left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_typed_and_cold_start_is_clean() {
        let dir = temp_dir("miss");
        let path = dir.join("absent.cqss");
        let err = restore_from_file::<GkSummary<u64>>(&path).unwrap_err();
        assert!(err.is_missing());
        assert!(!err.is_corruption());
        let rec = restore_with_fallback::<GkSummary<u64>>(&path);
        assert!(rec.is_cold_start());
        assert!(rec.events.is_empty(), "clean cold start recorded events");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_previous_generation_and_fallback_uses_it() {
        let dir = temp_dir("rot");
        let path = dir.join("gk.cqss");
        save_rotating(&path, &summary(100).to_snapshot_bytes()).unwrap();
        save_rotating(&path, &summary(200).to_snapshot_bytes()).unwrap();
        assert!(previous_path(&path).exists());

        // Corrupt the latest: fallback must land on the 100-item
        // generation with a recorded verdict.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let rec = restore_with_fallback::<GkSummary<u64>>(&path);
        let (value, source) = rec.value.expect("previous generation should restore");
        assert_eq!(source, RecoverySource::Previous);
        assert_eq!(value.items_processed(), 100);
        assert_eq!(rec.events.len(), 1);
        assert!(rec.events.iter().all(|e| e.error.is_corruption()));

        // Corrupt both: cold start with both verdicts recorded.
        let mut prev_bytes = fs::read(previous_path(&path)).unwrap();
        prev_bytes.truncate(7);
        fs::write(previous_path(&path), &prev_bytes).unwrap();
        let rec = restore_with_fallback::<GkSummary<u64>>(&path);
        assert!(rec.is_cold_start());
        assert_eq!(rec.events.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
