//! [`SnapshotWrite`]/[`SnapshotRead`] for the four summary families.
//!
//! Section layout per family (see DESIGN.md §5.3):
//!
//! * GK / greedy-GK (`GKSM`/`GKGR`): `META` (eps, n, period) +
//!   `TUPL` (count, then per tuple: item, g, Δ);
//! * CKMS (`CKMS`): `META` (eps, n, bias, period) + `TUPL` as above;
//! * MRL (`MRLS`): `META` (eps, expected_n, n) + `BUFS` (buffer count,
//!   then per buffer: level, item count, items) + `STAG` (staging run)
//!   + `PRTY` (per-level collapse parities).
//!
//! Scratch buffers never travel; restore rebuilds them empty. All
//! structural validation lives in each summary's `from_snapshot_parts`,
//! so a forged payload that passes the CRC still cannot construct a
//! summary whose invariant is broken.

use crate::wire::{Decoder, SnapshotReader, SnapshotWriter};
use crate::{RestoreError, SnapshotItem, SnapshotRead, SnapshotWrite};
use cqs_core::ComparisonSummary;

use cqs_ckms::{Bias, CkmsSummary, CkmsTuple};
use cqs_gk::{GkSummary, GkTuple, GreedyGk};
use cqs_mrl::MrlSummary;

const META: [u8; 4] = *b"META";
const TUPL: [u8; 4] = *b"TUPL";
const BUFS: [u8; 4] = *b"BUFS";
const STAG: [u8; 4] = *b"STAG";
const PRTY: [u8; 4] = *b"PRTY";

fn malformed(section: [u8; 4], detail: String) -> RestoreError {
    RestoreError::Malformed {
        section: String::from_utf8_lossy(&section).into_owned(),
        detail,
    }
}

fn write_gk_tuples<T: SnapshotItem>(w: &mut SnapshotWriter, tuples: &[GkTuple<T>]) {
    w.section_with(TUPL, |e| {
        e.put_u64(tuples.len() as u64);
        for t in tuples {
            t.v.encode_item(e);
            e.put_u64(t.g);
            e.put_u64(t.delta);
        }
    });
}

fn read_gk_tuples<T: SnapshotItem>(d: &mut Decoder<'_>) -> Result<Vec<GkTuple<T>>, RestoreError> {
    // Each tuple is at least 1 (item) + 16 (g, Δ) bytes.
    let count = d.take_count(17)?;
    let mut tuples = Vec::with_capacity(count);
    for _ in 0..count {
        let v = T::decode_item(d)?;
        let g = d.take_u64()?;
        let delta = d.take_u64()?;
        tuples.push(GkTuple { v, g, delta });
    }
    Ok(tuples)
}

impl<T: SnapshotItem + Ord + Clone> SnapshotWrite for GkSummary<T> {
    const KIND: [u8; 4] = *b"GKSM";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        let (tuples, n, eps, period) = self.snapshot_parts();
        w.section_with(META, |e| {
            e.put_f64(eps);
            e.put_u64(n);
            e.put_u64(period);
        });
        write_gk_tuples(w, tuples);
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotRead for GkSummary<T> {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(META)?;
        let eps = meta.take_f64()?;
        let n = meta.take_u64()?;
        let period = meta.take_u64()?;
        meta.finish()?;
        let mut tupl = r.section(TUPL)?;
        let tuples = read_gk_tuples(&mut tupl)?;
        tupl.finish()?;
        GkSummary::from_snapshot_parts(tuples, n, eps, period).map_err(|e| malformed(TUPL, e))
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotWrite for GreedyGk<T> {
    const KIND: [u8; 4] = *b"GKGR";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        let (tuples, n, eps, period) = self.snapshot_parts();
        w.section_with(META, |e| {
            e.put_f64(eps);
            e.put_u64(n);
            e.put_u64(period);
        });
        write_gk_tuples(w, tuples);
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotRead for GreedyGk<T> {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(META)?;
        let eps = meta.take_f64()?;
        let n = meta.take_u64()?;
        let period = meta.take_u64()?;
        meta.finish()?;
        let mut tupl = r.section(TUPL)?;
        let tuples = read_gk_tuples(&mut tupl)?;
        tupl.finish()?;
        GreedyGk::from_snapshot_parts(tuples, n, eps, period).map_err(|e| malformed(TUPL, e))
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotWrite for CkmsSummary<T> {
    const KIND: [u8; 4] = *b"CKMS";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        let (tuples, n, eps, bias, period) = self.snapshot_parts();
        w.section_with(META, |e| {
            e.put_f64(eps);
            e.put_u64(n);
            e.put_u8(match bias {
                Bias::Low => 0,
                Bias::High => 1,
            });
            e.put_u64(period);
        });
        w.section_with(TUPL, |e| {
            e.put_u64(tuples.len() as u64);
            for t in tuples {
                t.v.encode_item(e);
                e.put_u64(t.g);
                e.put_u64(t.delta);
            }
        });
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotRead for CkmsSummary<T> {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(META)?;
        let eps = meta.take_f64()?;
        let n = meta.take_u64()?;
        let bias = match meta.take_u8()? {
            0 => Bias::Low,
            1 => Bias::High,
            other => return Err(malformed(META, format!("invalid bias byte {other}"))),
        };
        let period = meta.take_u64()?;
        meta.finish()?;
        let mut tupl = r.section(TUPL)?;
        let count = tupl.take_count(17)?;
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            let v = T::decode_item(&mut tupl)?;
            let g = tupl.take_u64()?;
            let delta = tupl.take_u64()?;
            tuples.push(CkmsTuple { v, g, delta });
        }
        tupl.finish()?;
        CkmsSummary::from_snapshot_parts(tuples, n, eps, bias, period)
            .map_err(|e| malformed(TUPL, e))
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotWrite for MrlSummary<T> {
    const KIND: [u8; 4] = *b"MRLS";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        let (buffers, staging, parity) = self.snapshot_parts();
        w.section_with(META, |e| {
            e.put_f64(self.eps());
            e.put_u64(self.expected_n());
            e.put_u64(self.items_processed());
        });
        w.section_with(BUFS, |e| {
            e.put_u64(buffers.len() as u64);
            for (level, items) in &buffers {
                e.put_u32(*level);
                e.put_u64(items.len() as u64);
                for it in *items {
                    it.encode_item(e);
                }
            }
        });
        w.section_with(STAG, |e| {
            e.put_u64(staging.len() as u64);
            for it in staging {
                it.encode_item(e);
            }
        });
        w.section_with(PRTY, |e| {
            e.put_u64(parity.len() as u64);
            for &p in parity {
                e.put_bool(p);
            }
        });
    }
}

impl<T: SnapshotItem + Ord + Clone> SnapshotRead for MrlSummary<T> {
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut meta = r.section(META)?;
        let eps = meta.take_f64()?;
        let expected_n = meta.take_u64()?;
        let n = meta.take_u64()?;
        meta.finish()?;
        let mut bufs = r.section(BUFS)?;
        // Each buffer is at least 4 (level) + 8 (count) + 1 (item) bytes.
        let buf_count = bufs.take_count(13)?;
        let mut buffers = Vec::with_capacity(buf_count);
        for _ in 0..buf_count {
            let level = bufs.take_u32()?;
            let item_count = bufs.take_count(1)?;
            let mut items = Vec::with_capacity(item_count);
            for _ in 0..item_count {
                items.push(T::decode_item(&mut bufs)?);
            }
            buffers.push((level, items));
        }
        bufs.finish()?;
        let mut stag = r.section(STAG)?;
        let stag_count = stag.take_count(1)?;
        let mut staging = Vec::with_capacity(stag_count);
        for _ in 0..stag_count {
            staging.push(T::decode_item(&mut stag)?);
        }
        stag.finish()?;
        let mut prty = r.section(PRTY)?;
        let par_count = prty.take_count(1)?;
        let mut parity = Vec::with_capacity(par_count);
        for _ in 0..par_count {
            parity.push(prty.take_bool()?);
        }
        prty.finish()?;
        MrlSummary::from_snapshot_parts(eps, expected_n, n, buffers, staging, parity)
            .map_err(|e| malformed(BUFS, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_core::ComparisonSummary;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        let mut s = seed | 1;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn gk_round_trip_preserves_answers() {
        let mut gk = GkSummary::new(0.01);
        for x in shuffled(20_000, 1) {
            gk.insert(x);
        }
        let bytes = gk.to_snapshot_bytes();
        let back = GkSummary::<u64>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.items_processed(), gk.items_processed());
        assert_eq!(back.item_array(), gk.item_array());
        for r in (1..=20_000u64).step_by(997) {
            assert_eq!(back.query_rank(r), gk.query_rank(r));
        }
        // Restored summaries keep ingesting.
        let mut back = back;
        for x in 20_001..=21_000u64 {
            back.insert(x);
        }
        assert!(back.invariant_holds());
    }

    #[test]
    fn greedy_round_trip_preserves_answers() {
        let mut gk = GreedyGk::new(0.02);
        for x in shuffled(10_000, 2) {
            gk.insert(x);
        }
        let bytes = gk.to_snapshot_bytes();
        let back = GreedyGk::<u64>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.item_array(), gk.item_array());
        for r in (1..=10_000u64).step_by(499) {
            assert_eq!(back.query_rank(r), gk.query_rank(r));
        }
    }

    #[test]
    fn mrl_round_trip_preserves_answers_and_parity() {
        let mut mrl = MrlSummary::new(0.02, 30_000);
        for x in shuffled(27_113, 3) {
            mrl.insert(x);
        }
        let bytes = mrl.to_snapshot_bytes();
        let back = MrlSummary::<u64>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.total_weight(), mrl.total_weight());
        assert_eq!(back.item_array(), mrl.item_array());
        for r in (1..=27_113u64).step_by(1231) {
            assert_eq!(back.query_rank(r), mrl.query_rank(r));
        }
        // Parity round-trips: continuing both summaries identically
        // keeps them identical (collapse offsets agree).
        let mut live = mrl;
        let mut back = back;
        for x in 27_114..=30_000u64 {
            live.insert(x);
            back.insert(x);
        }
        assert_eq!(live.item_array(), back.item_array());
    }

    #[test]
    fn ckms_round_trip_both_biases() {
        for bias in [Bias::Low, Bias::High] {
            let mut ck = CkmsSummary::with_bias(0.02, bias);
            for x in shuffled(8_000, 4) {
                ck.insert(x);
            }
            let bytes = ck.to_snapshot_bytes();
            let back = CkmsSummary::<u64>::from_snapshot_bytes(&bytes).unwrap();
            assert_eq!(back.bias(), bias);
            assert_eq!(back.item_array(), ck.item_array());
            for r in (1..=8_000u64).step_by(389) {
                assert_eq!(back.query_rank(r), ck.query_rank(r));
            }
        }
    }

    #[test]
    fn forged_mass_is_rejected_despite_valid_crc() {
        let mut gk = GkSummary::new(0.05);
        for x in 1..=100u64 {
            gk.insert(x);
        }
        let (tuples, _, eps, period) = gk.snapshot_parts();
        // Re-encode with a lying stream length: framing is pristine,
        // structural validation must still refuse.
        let mut w = crate::SnapshotWriter::new(<GkSummary<u64> as SnapshotWrite>::KIND);
        w.section_with(META, |e| {
            e.put_f64(eps);
            e.put_u64(999); // n != Σg
            e.put_u64(period);
        });
        write_gk_tuples(&mut w, tuples);
        let err = GkSummary::<u64>::from_snapshot_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, RestoreError::Malformed { .. }), "{err}");
    }

    #[test]
    fn empty_summaries_round_trip() {
        let gk: GkSummary<u64> = GkSummary::new(0.1);
        let back = GkSummary::<u64>::from_snapshot_bytes(&gk.to_snapshot_bytes()).unwrap();
        assert_eq!(back.items_processed(), 0);
        let mrl: MrlSummary<u64> = MrlSummary::new(0.1, 100);
        let back = MrlSummary::<u64>::from_snapshot_bytes(&mrl.to_snapshot_bytes()).unwrap();
        assert_eq!(back.stored_count(), 0);
    }
}
