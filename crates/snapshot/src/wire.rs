//! Framing, checksums, and the little-endian encoder/decoder.

use crate::RestoreError;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"CQSS";

/// The wire-format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Header length: magic (4) + version (4) + kind (4).
pub const HEADER_LEN: usize = 12;

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time so the crate stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-section checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xff) as usize;
        let entry = CRC32_TABLE.get(idx).copied().unwrap_or(0);
        c = entry ^ (c >> 8);
    }
    !c
}

/// Little-endian scalar encoder for one section payload.
///
/// Standalone by design: sweep checkpoints use it to encode per-cell
/// records that then travel as opaque byte strings inside a section.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, x: bool) {
        self.buf.push(u8::from(x));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact
    /// round-trip; restored sweeps must render identical CSV text).
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the bytes encoded so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian decoder over one section payload.
///
/// Every read is guarded: running out of bytes, oversized counts, and
/// invalid UTF-8 all surface as [`RestoreError::Malformed`] naming the
/// section (the framing layer has already authenticated the payload via
/// CRC, so a short read here means an encoder/decoder schema mismatch
/// or a forged file — either way corruption, never a panic).
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: String,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, reporting errors against `section`.
    pub fn new(buf: &'a [u8], section: &str) -> Self {
        Decoder {
            buf,
            pos: 0,
            section: section.to_string(),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn malformed(&self, detail: impl Into<String>) -> RestoreError {
        RestoreError::Malformed {
            section: self.section.clone(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.malformed(format!("payload ends {n}-byte read early")))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.malformed("payload slice out of range"))?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, RestoreError> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or_else(|| self.malformed("empty u8 read"))
    }

    /// Reads a bool encoded as one byte; anything but 0/1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, RestoreError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.malformed(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, RestoreError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| self.malformed("short u32 read"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, RestoreError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| self.malformed("short u64 read"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads `n` raw bytes (fixed-width field).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], RestoreError> {
        let len = self.take_u64()?;
        let len = usize::try_from(len).map_err(|_| self.malformed("length overflows usize"))?;
        if len > self.remaining() {
            return Err(self.malformed(format!(
                "declared length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, RestoreError> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| self.malformed("invalid utf-8 string"))
    }

    /// Reads a list count and sanity-checks it against the bytes that
    /// are actually present (`min_elem_size` bytes per element at
    /// minimum), so a flipped count can never trigger an absurd
    /// allocation before decoding fails.
    pub fn take_count(&mut self, min_elem_size: usize) -> Result<usize, RestoreError> {
        let count = self.take_u64()?;
        let count = usize::try_from(count).map_err(|_| self.malformed("count overflows usize"))?;
        let need = count.checked_mul(min_elem_size.max(1));
        if need.is_none_or(|n| n > self.remaining()) {
            return Err(self.malformed(format!(
                "count {count} needs more than the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.remaining() != 0 {
            return Err(self.malformed(format!(
                "{} unread bytes at end of section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Writes a snapshot: header plus checksummed, length-framed sections.
pub struct SnapshotWriter {
    out: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given kind (header is written
    /// immediately).
    pub fn new(kind: [u8; 4]) -> Self {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&kind);
        SnapshotWriter { out }
    }

    /// Appends one section: tag, length, payload, and the CRC32 over
    /// all three.
    pub fn section(&mut self, tag: [u8; 4], payload: &[u8]) {
        let start = self.out.len();
        self.out.extend_from_slice(&tag);
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(payload);
        let crc = crc32(self.out.get(start..).unwrap_or(&[]));
        self.out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Convenience: build a payload with an [`Encoder`] closure and
    /// append it as a section.
    pub fn section_with(&mut self, tag: [u8; 4], f: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        f(&mut enc);
        self.section(tag, enc.as_slice());
    }

    /// The finished snapshot bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// Reads a snapshot: verifies the header, then yields sections in
/// order, authenticating each against its CRC before handing the
/// payload to a [`Decoder`].
pub struct SnapshotReader<'a> {
    rest: &'a [u8],
}

impl<'a> SnapshotReader<'a> {
    /// Verifies the header (magic, version, kind) and positions the
    /// reader at the first section.
    pub fn open(bytes: &'a [u8], kind: [u8; 4]) -> Result<Self, RestoreError> {
        let magic = bytes
            .get(..4)
            .ok_or(RestoreError::Truncated { context: "header" })?;
        if magic != MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let version_bytes: [u8; 4] = bytes
            .get(4..8)
            .and_then(|b| b.try_into().ok())
            .ok_or(RestoreError::Truncated { context: "header" })?;
        let version = u32::from_le_bytes(version_bytes);
        if version != VERSION {
            return Err(RestoreError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let found: [u8; 4] = bytes
            .get(8..HEADER_LEN)
            .and_then(|b| b.try_into().ok())
            .ok_or(RestoreError::Truncated { context: "header" })?;
        if found != kind {
            return Err(RestoreError::WrongKind {
                expected: kind,
                found,
            });
        }
        Ok(SnapshotReader {
            rest: bytes.get(HEADER_LEN..).unwrap_or(&[]),
        })
    }

    /// Reads the next section, which must carry `tag`; verifies its CRC
    /// and returns a [`Decoder`] over the payload.
    pub fn section(&mut self, tag: [u8; 4]) -> Result<Decoder<'a>, RestoreError> {
        let found_tag = self.rest.get(..4).ok_or(RestoreError::Truncated {
            context: "section tag",
        })?;
        let found: [u8; 4] = found_tag.try_into().map_err(|_| RestoreError::Truncated {
            context: "section tag",
        })?;
        if found != tag {
            return Err(RestoreError::UnexpectedSection {
                expected: String::from_utf8_lossy(&tag).into_owned(),
                found: String::from_utf8_lossy(&found).into_owned(),
            });
        }
        let len_bytes: [u8; 8] = self.rest.get(4..12).and_then(|b| b.try_into().ok()).ok_or(
            RestoreError::Truncated {
                context: "section length",
            },
        )?;
        let len = usize::try_from(u64::from_le_bytes(len_bytes)).map_err(|_| {
            RestoreError::Truncated {
                context: "section length",
            }
        })?;
        let payload_end = len.checked_add(12).ok_or(RestoreError::Truncated {
            context: "section length",
        })?;
        let payload = self
            .rest
            .get(12..payload_end)
            .ok_or(RestoreError::Truncated {
                context: "section payload",
            })?;
        let crc_end = payload_end.checked_add(4).ok_or(RestoreError::Truncated {
            context: "section checksum",
        })?;
        let stored_bytes: [u8; 4] = self
            .rest
            .get(payload_end..crc_end)
            .and_then(|b| b.try_into().ok())
            .ok_or(RestoreError::Truncated {
                context: "section checksum",
            })?;
        let stored = u32::from_le_bytes(stored_bytes);
        let computed = crc32(self.rest.get(..payload_end).unwrap_or(&[]));
        if stored != computed {
            return Err(RestoreError::ChecksumMismatch {
                section: String::from_utf8_lossy(&tag).into_owned(),
                stored,
                computed,
            });
        }
        self.rest = self.rest.get(crc_end..).unwrap_or(&[]);
        Ok(Decoder::new(payload, &String::from_utf8_lossy(&tag)))
    }

    /// Asserts the file ends exactly after the last section read.
    pub fn finish(self) -> Result<(), RestoreError> {
        if !self.rest.is_empty() {
            return Err(RestoreError::TrailingBytes {
                count: self.rest.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 3);
        e.put_f64(1.0 / 3.0);
        e.put_str("hello");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "TEST");
        assert_eq!(d.take_u8().unwrap(), 7);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(d.take_str().unwrap(), "hello");
        assert_eq!(d.take_bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_short_reads_and_bad_counts() {
        let mut d = Decoder::new(&[1, 2], "TEST");
        assert!(matches!(d.take_u64(), Err(RestoreError::Malformed { .. })));
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // absurd count
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "TEST");
        assert!(matches!(
            d.take_count(8),
            Err(RestoreError::Malformed { .. })
        ));
    }

    #[test]
    fn framing_round_trip_and_finish() {
        let mut w = SnapshotWriter::new(*b"TSTK");
        w.section_with(*b"ONE ", |e| e.put_u64(42));
        w.section_with(*b"TWO ", |e| e.put_str("payload"));
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::open(&bytes, *b"TSTK").unwrap();
        let mut d = r.section(*b"ONE ").unwrap();
        assert_eq!(d.take_u64().unwrap(), 42);
        d.finish().unwrap();
        let mut d = r.section(*b"TWO ").unwrap();
        assert_eq!(d.take_str().unwrap(), "payload");
        d.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn header_errors_are_typed() {
        let mut w = SnapshotWriter::new(*b"TSTK");
        w.section_with(*b"ONE ", |e| e.put_u64(1));
        let good = w.into_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            SnapshotReader::open(&bad_magic, *b"TSTK").err(),
            Some(RestoreError::BadMagic)
        );

        let mut stale = good.clone();
        stale[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::open(&stale, *b"TSTK").err(),
            Some(RestoreError::UnsupportedVersion { found: 0, .. })
        ));

        assert!(matches!(
            SnapshotReader::open(&good, *b"OTHR").err(),
            Some(RestoreError::WrongKind { .. })
        ));

        assert!(matches!(
            SnapshotReader::open(&good[..6], *b"TSTK").err(),
            Some(RestoreError::Truncated { .. })
        ));
    }

    #[test]
    fn flipped_bit_fails_checksum_and_swap_fails_tag() {
        let mut w = SnapshotWriter::new(*b"TSTK");
        w.section_with(*b"ONE ", |e| e.put_u64(41));
        let bytes = w.into_bytes();

        let mut flipped = bytes.clone();
        let last = flipped.len() - 8; // inside the payload
        flipped[last] ^= 0x10;
        let mut r = SnapshotReader::open(&flipped, *b"TSTK").unwrap();
        assert!(matches!(
            r.section(*b"ONE ").err(),
            Some(RestoreError::ChecksumMismatch { .. })
        ));

        let mut r = SnapshotReader::open(&bytes, *b"TSTK").unwrap();
        assert!(matches!(
            r.section(*b"TWO ").err(),
            Some(RestoreError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapshotWriter::new(*b"TSTK");
        w.section_with(*b"ONE ", |e| e.put_u64(1));
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = SnapshotReader::open(&bytes, *b"TSTK").unwrap();
        let mut d = r.section(*b"ONE ").unwrap();
        assert_eq!(d.take_u64().unwrap(), 1);
        d.finish().unwrap();
        assert_eq!(
            r.finish().err(),
            Some(RestoreError::TrailingBytes { count: 1 })
        );
    }
}
