//! Snapshots of the adversary's live [`StreamState`]: the summary under
//! attack plus every stream item with its arrival tag, so a restored
//! state answers `rank`/`next`/`prev`/`arrival_of` identically.
//!
//! Layout (`STRM`): `SUMM` (the summary's own complete snapshot,
//! embedded as one length-prefixed blob) + `TAGS` (count, then per
//! stream item in sorted order: label-encoded item, arrival tag).
//! Restore validates the embedded summary with its own reader, then
//! rebuilds the order-statistic index through
//! [`StreamState::from_snapshot_parts`], which re-checks sortedness,
//! tag permutation, and summary/stream length agreement.
//!
//! The wire format is representation-agnostic: an interval-compressed
//! (`StreamRepr::Implicit`) state replays its items through the same
//! `for_each_arrival` walk — the run generators mint labels by the
//! deterministic balanced subdivision, so the `TAGS` section comes out
//! byte-identical to a materialized state over the same stream. Restore
//! always yields a materialized state (the items are in hand anyway);
//! the snapshot is therefore also the escape hatch for converting an
//! implicit stream back to per-item form. Note the section is Θ(N) —
//! snapshotting a large-N implicit stream forfeits its space advantage,
//! which is why the billion-item sweep checkpoints at the *cell* level
//! (completed `AdversaryReport`s) rather than mid-stream.

use crate::wire::{SnapshotReader, SnapshotWriter};
use crate::{RestoreError, SnapshotItem, SnapshotRead, SnapshotWrite};
use cqs_core::{ComparisonSummary, StreamState};
use cqs_universe::Item;

const SUMM: [u8; 4] = *b"SUMM";
const TAGS: [u8; 4] = *b"TAGS";

impl<S> SnapshotWrite for StreamState<S>
where
    S: ComparisonSummary<Item> + SnapshotWrite,
{
    const KIND: [u8; 4] = *b"STRM";

    fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section_with(SUMM, |e| {
            e.put_bytes(&self.summary.to_snapshot_bytes());
        });
        w.section_with(TAGS, |e| {
            e.put_u64(self.len());
            self.for_each_arrival(&mut |item, tag| {
                item.encode_item(e);
                e.put_u64(tag);
            });
        });
    }
}

impl<S> SnapshotRead for StreamState<S>
where
    S: ComparisonSummary<Item> + SnapshotRead,
{
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError> {
        let mut summ = r.section(SUMM)?;
        let blob = summ.take_bytes()?;
        let summary = S::from_snapshot_bytes(blob)?;
        summ.finish()?;
        let mut tags = r.section(TAGS)?;
        // Each pair is at least 8 (label length) + 1 + 8 (tag) bytes.
        let count = tags.take_count(17)?;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let item = Item::decode_item(&mut tags)?;
            let tag = tags.take_u64()?;
            pairs.push((item, tag));
        }
        tags.finish()?;
        StreamState::from_snapshot_parts(summary, pairs).map_err(|e| RestoreError::Malformed {
            section: "TAGS".to_string(),
            detail: e,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_gk::GkSummary;
    use cqs_universe::{generate_increasing, Interval};

    #[test]
    fn stream_state_round_trip_preserves_ranks_and_arrivals() {
        let mut st = StreamState::new(GkSummary::new(0.05));
        let items = generate_increasing(&Interval::whole(), 500);
        // Interleave pushes so arrival order differs from sorted order.
        for chunk in items.chunks(2).rev() {
            for it in chunk {
                st.push(it.clone());
            }
        }
        let bytes = st.to_snapshot_bytes();
        let back = StreamState::<GkSummary<Item>>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.len(), st.len());
        assert_eq!(back.max_label_depth(), st.max_label_depth());
        assert_eq!(back.summary.item_array(), st.summary.item_array());
        for it in &items {
            assert_eq!(back.rank(it), st.rank(it));
            assert_eq!(back.arrival_of(it), st.arrival_of(it));
            assert_eq!(back.next(it), st.next(it));
            assert_eq!(back.prev(it), st.prev(it));
        }
    }

    #[test]
    fn implicit_stream_snapshots_byte_identical_to_materialized() {
        use cqs_core::StreamRepr;

        // Same refined stream, both representations: the STRM bytes
        // must agree exactly, because the implicit state replays the
        // very same (item, tag) walk the treap stores. The stream is
        // built in the adversary's pattern — a root run, then runs
        // minted between order-adjacent items — so fragment splits are
        // on the wire path.
        let mut mat = StreamState::new(GkSummary::<Item>::new(0.05));
        let mut imp = StreamState::with_repr(GkSummary::<Item>::new(0.05), StreamRepr::Implicit);
        let mut feed = |iv: &Interval, n: usize| {
            let items = generate_increasing(iv, n);
            mat.push_run_in(iv, &items);
            imp.push_run_in(iv, &items);
            items
        };
        let root = feed(&Interval::whole(), 32);
        let left = feed(&Interval::open(root[15].clone(), root[16].clone()), 8);
        feed(&Interval::open(left[0].clone(), left[1].clone()), 8);
        let bytes = imp.to_snapshot_bytes();
        assert_eq!(mat.to_snapshot_bytes(), bytes);
        // Restoring materializes; every order query survives the trip.
        let back = StreamState::<GkSummary<Item>>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.len(), imp.len());
        let mut probes = Vec::new();
        imp.for_each_arrival(&mut |it, tag| probes.push((it.clone(), tag)));
        for (it, tag) in &probes {
            assert_eq!(back.rank(it), imp.rank(it));
            assert_eq!(back.arrival_of(it), Some(*tag));
            assert_eq!(back.next(it), imp.next(it));
            assert_eq!(back.prev(it), imp.prev(it));
        }
    }

    #[test]
    fn tag_permutation_violations_are_rejected() {
        let mut st = StreamState::new(GkSummary::new(0.05));
        for it in generate_increasing(&Interval::whole(), 20) {
            st.push(it);
        }
        let mut pairs = Vec::new();
        st.for_each_arrival(&mut |it, tag| pairs.push((it.clone(), tag)));
        // Duplicate one tag.
        if let (Some(first), Some(slot)) = (pairs.first().map(|p| p.1), pairs.get_mut(1)) {
            slot.1 = first;
        }
        let summary = st.summary.clone();
        let err = match StreamState::from_snapshot_parts(summary, pairs) {
            Ok(_) => panic!("forged tags restored"),
            Err(e) => e,
        };
        assert!(err.contains("permutation"), "{err}");
    }
}
