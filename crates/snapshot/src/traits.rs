//! The snapshot traits and per-item codecs.

use crate::wire::{Decoder, Encoder, SnapshotReader, SnapshotWriter};
use crate::RestoreError;
use cqs_universe::Item;

/// A type that can write itself as a snapshot.
pub trait SnapshotWrite {
    /// Four-byte kind tag stored in the header; restores of a different
    /// type fail with [`RestoreError::WrongKind`].
    const KIND: [u8; 4];

    /// Writes the type's sections into `w` (header already emitted).
    fn write_sections(&self, w: &mut SnapshotWriter);

    /// The complete snapshot: header plus all sections.
    fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(Self::KIND);
        self.write_sections(&mut w);
        w.into_bytes()
    }
}

/// A type that can restore itself from a snapshot, validating
/// everything.
pub trait SnapshotRead: SnapshotWrite + Sized {
    /// Reads the type's sections from `r` (header already verified).
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, RestoreError>;

    /// Verifies the header, reads all sections, and rejects trailing
    /// bytes.
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let mut r = SnapshotReader::open(bytes, Self::KIND)?;
        let value = Self::read_sections(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Per-item codec: how one stored item travels inside a section.
///
/// Implemented for `u64` (fixed 8 bytes) and for universe [`Item`]s
/// (length-prefixed label bytes) — the two item types the harness
/// actually streams.
pub trait SnapshotItem: Sized {
    /// Encodes one item.
    fn encode_item(&self, e: &mut Encoder);

    /// Decodes one item.
    fn decode_item(d: &mut Decoder<'_>) -> Result<Self, RestoreError>;
}

impl SnapshotItem for u64 {
    fn encode_item(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }

    fn decode_item(d: &mut Decoder<'_>) -> Result<Self, RestoreError> {
        d.take_u64()
    }
}

impl SnapshotItem for Item {
    fn encode_item(&self, e: &mut Encoder) {
        e.put_bytes(self.label());
    }

    fn decode_item(d: &mut Decoder<'_>) -> Result<Self, RestoreError> {
        let label = d.take_bytes()?;
        Ok(Item::from_label(label.to_vec()))
    }
}
