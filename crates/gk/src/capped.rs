//! A space-capped (and therefore *incorrect*) GK variant.
//!
//! `CappedGk` runs the greedy algorithm but, whenever the tuple count
//! exceeds a hard budget, keeps merging with an ever-larger threshold
//! until it fits. The `(g, Δ)` bookkeeping stays internally consistent —
//! the summary just silently abandons its ε guarantee.
//!
//! Purpose: the lower-bound paper's dilemma says a summary below the
//! space bound must fail some query. This type is the "below the space
//! bound" arm, used by the Lemma 3.4 / Theorem 6.1 / Theorem 6.2
//! experiments to extract concrete failing queries.

use cqs_core::{ComparisonSummary, RankEstimator};

use crate::greedy::GreedyGk;
use crate::tuple::GkTuple;

/// Greedy GK with a hard item budget (incorrect beyond its budget).
#[derive(Clone, Debug)]
pub struct CappedGk<T> {
    inner: GreedyGk<T>,
    budget: usize,
}

impl<T: Ord + Clone> CappedGk<T> {
    /// Creates a capped summary: at most `budget ≥ 4` stored tuples.
    ///
    /// # Panics
    ///
    /// Panics if `budget < 4` or ε is out of range.
    pub fn new(eps: f64, budget: usize) -> Self {
        assert!(budget >= 4, "budget must leave room for extremes");
        CappedGk {
            inner: GreedyGk::new(eps),
            budget,
        }
    }

    /// The hard budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Raw tuples (diagnostics).
    pub fn tuples(&self) -> &[GkTuple<T>] {
        self.inner.tuples()
    }

    fn enforce_budget(&mut self) {
        if self.inner.stored_count() <= self.budget {
            return;
        }
        // Escalate the merge threshold until the budget is met. Doubling
        // terminates: with cap ≥ 2n+1 everything interior merges.
        let mut cap = (self.inner.items_processed() / self.budget as u64).max(2);
        while self.inner.stored_count() > self.budget {
            self.inner.compress(cap);
            cap = cap.saturating_mul(2);
        }
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for CappedGk<T> {
    fn insert(&mut self, item: T) {
        self.inner.insert_value(item);
        self.enforce_budget();
    }

    // Note: no `insert_sorted_run` override — the budget must be
    // re-enforced after every single item, which is exactly what the
    // trait's per-item fallback does.

    fn item_array(&self) -> Vec<T> {
        self.inner.item_array()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        self.inner.for_each_item(f)
    }

    fn for_each_item_between(&self, lo: Option<&T>, hi: Option<&T>, f: &mut dyn FnMut(&T)) {
        self.inner.for_each_item_between(lo, hi, f)
    }

    fn stored_count(&self) -> usize {
        self.inner.stored_count()
    }

    fn items_processed(&self) -> u64 {
        self.inner.items_processed()
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        self.inner.query_rank(r)
    }

    fn name(&self) -> &'static str {
        "gk-capped"
    }
}

impl<T: Ord + Clone> RankEstimator<T> for CappedGk<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        self.inner.estimate_rank(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_enforced() {
        let mut gk = CappedGk::new(0.01, 8);
        for x in 0..10_000u64 {
            gk.insert(x);
            assert!(gk.stored_count() <= 9, "budget breached at n={}", x + 1);
        }
    }

    #[test]
    fn mass_is_conserved_despite_capping() {
        let mut gk = CappedGk::new(0.01, 8);
        for x in 0..5_000u64 {
            gk.insert((x * 48271) % 99_991);
        }
        let mass: u64 = gk.tuples().iter().map(|t| t.g).sum();
        assert_eq!(mass, 5_000);
    }

    #[test]
    fn extremes_survive_capping() {
        let mut gk = CappedGk::new(0.05, 4);
        for x in 0..3_000u64 {
            gk.insert((x * 2654435761) % 1_000_000);
        }
        let arr = gk.item_array();
        assert!(arr.len() >= 2);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "budget must leave room")]
    fn tiny_budget_rejected() {
        CappedGk::<u64>::new(0.1, 2);
    }
}
