//! The original banded Greenwald–Khanna summary.

use cqs_core::{ComparisonSummary, MergeError, MergeableSummary, RankEstimator};

use crate::band::band;
use crate::tuple::{
    estimate_rank_from_tuples, merge_sorted_chunk, merge_tuple_lists, query_rank_from_tuples,
    validate_tuple_parts, GkTuple,
};

/// The Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001),
/// with the band-based COMPRESS and subtree merging of the original
/// analysis. Space: O((1/ε)·log εN) — proved optimal by the lower bound
/// in `cqs-core`.
#[derive(Clone, Debug)]
pub struct GkSummary<T> {
    tuples: Vec<GkTuple<T>>,
    n: u64,
    eps: f64,
    compress_period: u64,
    /// COMPRESS scratch (band per tuple / merge flags / chunk-merge
    /// middle), kept across calls so the periodic compress and the
    /// sorted-run merge do not allocate on the adversary's hot path.
    /// Transient: excluded from snapshots and rebuilt empty on restore.
    scratch_bands: Vec<u32>,
    scratch_remove: Vec<bool>,
    scratch_mid: Vec<GkTuple<T>>,
}

impl<T: Ord + Clone> GkSummary<T> {
    /// Creates a summary with guarantee ε ∈ (0, 0.5).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε.
    pub fn new(eps: f64) -> Self {
        let period = (1.0 / (2.0 * eps)).floor().max(1.0) as u64;
        Self::with_compress_period(eps, period)
    }

    /// Creates a summary that runs COMPRESS every `period` inserts
    /// instead of the canonical 1/(2ε) — an ablation knob: more frequent
    /// compression trades update time for space, and never affects
    /// correctness (the invariant is checked against 2εn regardless).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε or a zero period.
    pub fn with_compress_period(eps: f64, period: u64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        assert!(period >= 1, "compress period must be positive");
        GkSummary {
            tuples: Vec::new(),
            n: 0,
            eps,
            compress_period: period,
            scratch_bands: Vec::new(),
            scratch_remove: Vec::new(),
            scratch_mid: Vec::new(),
        }
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The COMPRESS threshold ⌊2εn⌋ at the current stream length.
    fn threshold(&self) -> u64 {
        (2.0 * self.eps * self.n as f64).floor() as u64
    }

    /// Exposes the raw tuples (diagnostics and tests).
    pub fn tuples(&self) -> &[GkTuple<T>] {
        &self.tuples
    }

    /// The persistent state as `(tuples, n, eps, compress_period)` —
    /// everything a snapshot must carry; the scratch buffers are
    /// transient and rebuilt empty on restore.
    pub fn snapshot_parts(&self) -> (&[GkTuple<T>], u64, f64, u64) {
        (&self.tuples, self.n, self.eps, self.compress_period)
    }

    /// Rebuilds a summary from snapshot parts, validating every
    /// structural invariant a corrupt snapshot could violate — ε range,
    /// positive period, sorted tuples with positive `g`, total `g` mass
    /// equal to `n`, and the GK span invariant — and returning a
    /// diagnostic instead of constructing a broken summary.
    pub fn from_snapshot_parts(
        tuples: Vec<GkTuple<T>>,
        n: u64,
        eps: f64,
        compress_period: u64,
    ) -> Result<Self, String> {
        validate_tuple_parts(&tuples, n, eps, compress_period)?;
        let s = GkSummary {
            tuples,
            n,
            eps,
            compress_period,
            scratch_bands: Vec::new(),
            scratch_remove: Vec::new(),
            scratch_mid: Vec::new(),
        };
        if !s.invariant_holds() {
            return Err("snapshot violates the GK span invariant g+Δ ≤ ⌊2εn⌋".to_string());
        }
        Ok(s)
    }

    /// Merges another GK summary into this one.
    ///
    /// Standard GK merge (cf. the Mergeable Summaries line of work): the
    /// tuple lists are interleaved in sorted order and each tuple's rank
    /// bounds are widened by the bracketing tuples of the other summary:
    ///
    /// ```text
    ///   r_min'(x) = r_min_A(x) + r_min_B(pred_B(x))
    ///   r_max'(x) = r_max_A(x) + r_max_B(succ_B(x)) − 1
    /// ```
    ///
    /// The merged summary answers within (ε_A + ε_B)·(n_A + n_B); `self`
    /// adopts ε_A + ε_B so its invariant and future compressions remain
    /// coherent. Merging is therefore best done in a balanced tree over
    /// shards, giving ε·log(shards) total error.
    pub fn merge(&mut self, other: &GkSummary<T>) {
        if other.tuples.is_empty() {
            return;
        }
        if self.tuples.is_empty() {
            // Adopting the other side wholesale is the one unavoidable
            // copy: merge takes `&other` by contract.
            // cqs-lint: allow(hot-path-alloc)
            self.tuples = other.tuples.clone();
            self.n = other.n;
            self.eps = (self.eps + other.eps).min(0.499);
            return;
        }
        let (na, nb) = (self.n, other.n);
        self.tuples = merge_tuple_lists(&self.tuples, &other.tuples, na, nb);
        self.n = na + nb;
        self.eps = (self.eps + other.eps).min(0.499);
        self.compress_period = (1.0 / (2.0 * self.eps)).floor().max(1.0) as u64;
        self.compress();
    }

    /// Certified rank bounds for any universe item `q`: the true number
    /// of stream items ≤ q lies in the returned `[lo, hi]` interval.
    /// The interval width is at most 2εn + 1 by the GK invariant.
    pub fn rank_bounds(&self, q: &T) -> (u64, u64) {
        if self.tuples.is_empty() {
            return (0, 0);
        }
        if *q < self.tuples[0].v {
            return (0, 0);
        }
        let mut r_min = 0u64;
        let mut last_le_rmin = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            if t.v <= *q {
                last_le_rmin = r_min;
            } else {
                // True rank is at least the last ≤-tuple's minimum rank
                // and strictly below this tuple's maximum rank.
                return (last_le_rmin, (r_min + t.delta).saturating_sub(1));
            }
        }
        (last_le_rmin, self.n)
    }

    /// The summary's internal invariant: every tuple span `g_i + Δ_i`
    /// is at most ⌊2εn⌋ (grace-period aside for the first 1/(2ε) items).
    pub fn invariant_holds(&self) -> bool {
        let cap = self.threshold().max(1);
        self.tuples.iter().all(|t| t.g + t.delta <= cap)
    }

    fn insert_value(&mut self, item: T) {
        let pos = self.tuples.partition_point(|t| t.v < item);
        // Δ for an interior insert is ⌊2εn⌋ − 1; 0 at either end (the
        // new extreme has exact rank) and during the initial grace
        // period where everything is stored.
        let thr = self.threshold();
        let delta = if pos == 0 || pos == self.tuples.len() || thr < 1 {
            0
        } else {
            thr.saturating_sub(1)
        };
        self.tuples.insert(
            pos,
            GkTuple {
                v: item,
                g: 1,
                delta,
            },
        );
        self.n += 1;
        if self.n.is_multiple_of(self.compress_period) {
            self.compress();
        }
    }

    /// The band-based COMPRESS: walk right-to-left; a tuple whose band
    /// does not exceed its successor's is merged — together with its
    /// band-subtree of preceding lower-band tuples — into the successor,
    /// provided the combined span stays below ⌊2εn⌋.
    fn compress(&mut self) {
        let thr = self.threshold();
        if thr < 2 || self.tuples.len() < 3 {
            return;
        }
        let mut bands = std::mem::take(&mut self.scratch_bands);
        bands.clear();
        bands.extend(self.tuples.iter().map(|t| band(t.delta.min(thr), thr)));
        // Collect merges on a right-to-left pass, then apply in one
        // sweep to keep the pass O(s).
        let mut remove = std::mem::take(&mut self.scratch_remove);
        remove.clear();
        remove.resize(self.tuples.len(), false);
        let mut i = self.tuples.len() as isize - 2;
        while i >= 1 {
            let iu = i as usize;
            let succ = iu + 1;
            if remove[succ] {
                i -= 1;
                continue;
            }
            if bands[iu] <= bands[succ] {
                // Extent of i's band-subtree: consecutive predecessors
                // with strictly smaller bands (the "descendants").
                let mut start = iu;
                let mut g_star = self.tuples[iu].g;
                while start > 1 && bands[start - 1] < bands[iu] {
                    start -= 1;
                    g_star += self.tuples[start].g;
                }
                if g_star + self.tuples[succ].g + self.tuples[succ].delta < thr {
                    self.tuples[succ].g += g_star;
                    for flag in remove.iter_mut().take(iu + 1).skip(start) {
                        *flag = true;
                    }
                    i = start as isize - 1;
                    continue;
                }
            }
            i -= 1;
        }
        if remove.iter().any(|&r| r) {
            let mut idx = 0;
            self.tuples.retain(|_| {
                let keep = !remove[idx];
                idx += 1;
                keep
            });
        }
        self.scratch_bands = bands;
        self.scratch_remove = remove;
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for GkSummary<T> {
    fn insert(&mut self, item: T) {
        self.insert_value(item);
    }

    fn insert_sorted_run(&mut self, run: &[T]) -> usize {
        debug_assert!(
            run.windows(2).all(|w| w[0] <= w[1]),
            "insert_sorted_run requires a non-decreasing run"
        );
        let mut peak = 0usize;
        let mut rest = run;
        while !rest.is_empty() {
            // Slice the run at the next compress boundary so the chunk
            // merge never has to interleave with COMPRESS.
            let until = (self.compress_period - self.n % self.compress_period) as usize;
            let (chunk, tail) = rest.split_at(until.min(rest.len()));
            merge_sorted_chunk(
                &mut self.tuples,
                &mut self.n,
                self.eps,
                chunk,
                &mut self.scratch_mid,
            );
            let pre_compress = self.tuples.len();
            if self.n.is_multiple_of(self.compress_period) {
                self.compress();
                // The per-item path polls |I| after every insert (incl.
                // the compressing one), so it never observes the full
                // pre-compress length — only up to one item before it.
                let post = self.tuples.len();
                peak = peak.max(if chunk.len() >= 2 {
                    (pre_compress - 1).max(post)
                } else {
                    post
                });
            } else {
                peak = peak.max(pre_compress);
            }
            rest = tail;
        }
        peak
    }

    fn item_array(&self) -> Vec<T> {
        self.tuples.iter().map(|t| t.v.clone()).collect()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        for t in &self.tuples {
            f(&t.v);
        }
    }

    fn for_each_item_between(&self, lo: Option<&T>, hi: Option<&T>, f: &mut dyn FnMut(&T)) {
        // Both bounds become plain indices (ranks) via partition scans,
        // so the visit loop below runs comparison-free: the per-tuple
        // `>= hi` probe was a deep label comparison on every visited
        // item of the gap scan.
        let mut start = 0;
        if let Some(lo) = lo {
            start = self.tuples.partition_point(|t| &t.v <= lo);
        }
        let mut end = self.tuples.len();
        if let Some(hi) = hi {
            end = start
                + self
                    .tuples
                    .get(start..)
                    .map_or(0, |ts| ts.partition_point(|t| &t.v < hi));
        }
        for t in self.tuples.get(start..end).unwrap_or(&[]) {
            f(&t.v);
        }
    }

    fn stored_count(&self) -> usize {
        self.tuples.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        query_rank_from_tuples(&self.tuples, r, self.n)
    }

    fn name(&self) -> &'static str {
        "gk"
    }
}

impl<T: Ord + Clone> RankEstimator<T> for GkSummary<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        estimate_rank_from_tuples(&self.tuples, q, self.n)
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for GkSummary<T> {
    /// The principled merge path: refuse up front when the composed ε
    /// leaves (0, 0.5), fold via [`GkSummary::merge`], then re-validate
    /// the GK span invariant under the composed ε — the check that makes
    /// shard composition trustworthy rather than assumed.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        let composed = self.eps + other.eps;
        if !(composed > 0.0 && composed < 0.5) {
            return Err(MergeError::EpsOverflow { composed });
        }
        self.merge(other);
        if !self.invariant_holds() {
            return Err(MergeError::InvariantViolated {
                detail: format!("GK span invariant g+Δ ≤ ⌊2εn⌋ at eps {}", self.eps),
            });
        }
        Ok(())
    }

    fn eps_bound(&self) -> Option<f64> {
        Some(self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_holds_throughout_adversarial_like_inserts() {
        // Alternating extremes stress the Δ assignment.
        let mut gk = GkSummary::new(0.02);
        for i in 0..5000u64 {
            let v = if i % 2 == 0 { i } else { u64::MAX - i };
            gk.insert(v);
            assert!(gk.invariant_holds(), "invariant broken at n={}", i + 1);
        }
    }

    #[test]
    fn total_g_mass_equals_n() {
        let mut gk = GkSummary::new(0.05);
        for x in (0..3000u64).rev() {
            gk.insert(x);
        }
        let mass: u64 = gk.tuples().iter().map(|t| t.g).sum();
        assert_eq!(mass, 3000);
    }

    #[test]
    fn compress_actually_shrinks() {
        let mut gk = GkSummary::new(0.05);
        for x in 0..10_000u64 {
            gk.insert(x);
        }
        assert!(gk.stored_count() < 1000, "no compression happened");
    }

    #[test]
    fn rank_bounds_bracket_truth_and_are_narrow() {
        let n = 20_000u64;
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        for i in 0..n {
            gk.insert((i * 48271) % n + 1);
        }
        let width_cap = (2.0 * eps * n as f64) as u64 + 2;
        for q in (1..=n).step_by(997) {
            let (lo, hi) = gk.rank_bounds(&q);
            // Values are a permutation-ish of 1..=n; exact truth needs
            // counting, so check bracketing against the estimator and
            // width against the invariant.
            let est = cqs_core::RankEstimator::estimate_rank(&gk, &q);
            assert!(
                lo <= est && est <= hi,
                "q={q}: est {est} outside [{lo},{hi}]"
            );
            assert!(hi - lo <= width_cap, "q={q}: bounds too wide: {}", hi - lo);
        }
        // Below the minimum and above the maximum the bounds are exact.
        assert_eq!(gk.rank_bounds(&0), (0, 0));
        assert_eq!(gk.rank_bounds(&(n + 10)).0, n);
    }

    #[test]
    fn merge_conserves_mass_and_bounds() {
        let mut a = GkSummary::new(0.01);
        let mut b = GkSummary::new(0.01);
        for x in 0..5_000u64 {
            a.insert(x * 2); // evens
            b.insert(x * 2 + 1); // odds
        }
        a.merge(&b);
        assert_eq!(a.items_processed(), 10_000);
        let mass: u64 = a.tuples().iter().map(|t| t.g).sum();
        assert_eq!(mass, 10_000);
        // Extremes of the union are retained.
        let arr = a.item_array();
        assert_eq!(arr[0], 0);
        assert_eq!(*arr.last().unwrap(), 9_999);
        // Error within the merged 2ε guarantee.
        let med = a.query_rank(5_000).unwrap();
        assert!(med.abs_diff(5_000) <= 250, "merged median {med}");
    }

    #[test]
    fn merge_adopts_summed_eps() {
        let mut a: GkSummary<u64> = GkSummary::new(0.01);
        let mut b: GkSummary<u64> = GkSummary::new(0.02);
        a.insert(1);
        b.insert(2);
        a.merge(&b);
        assert!((a.eps() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn merge_is_usable_after_more_inserts() {
        let mut a = GkSummary::new(0.02);
        let mut b = GkSummary::new(0.02);
        for x in 0..2_000u64 {
            a.insert(x);
            b.insert(x + 2_000);
        }
        a.merge(&b);
        for x in 4_000..6_000u64 {
            a.insert(x);
        }
        assert_eq!(a.items_processed(), 6_000);
        assert!(a.invariant_holds());
        let q = a.query_rank(3_000).unwrap();
        assert!(
            q.abs_diff(3_000) <= 6_000 / 8,
            "post-merge insert broke queries: {q}"
        );
    }

    #[test]
    fn tuples_stay_sorted() {
        let mut gk = GkSummary::new(0.03);
        for i in 0..4000u64 {
            gk.insert((i * 2654435761) % 65536);
        }
        let arr = gk.item_array();
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn gk_rank_errors_bounded(xs in proptest::collection::vec(0u32..10_000, 100..2000)) {
            let eps = 0.05;
            let mut gk = GkSummary::new(eps);
            let mut sorted = xs.clone();
            for &x in &xs {
                gk.insert(x);
            }
            sorted.sort_unstable();
            let n = xs.len() as u64;
            let budget = (eps * n as f64).floor() as u64 + 1;
            for step in 1..=10u64 {
                let r = (step * n / 10).max(1);
                let ans = gk.query_rank(r).unwrap();
                // True rank range of `ans` in the multiset.
                let lo = sorted.partition_point(|&v| v < ans) as u64 + 1;
                let hi = sorted.partition_point(|&v| v <= ans) as u64;
                let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
                prop_assert!(err <= budget, "rank {r}: answer {ans} err {err} > {budget}");
            }
        }

        #[test]
        fn gk_invariant_on_random_streams(xs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut gk = GkSummary::new(0.02);
            for &x in &xs {
                gk.insert(x);
                prop_assert!(gk.invariant_holds());
            }
            let mass: u64 = gk.tuples().iter().map(|t| t.g).sum();
            prop_assert_eq!(mass, xs.len() as u64);
        }
    }
}
