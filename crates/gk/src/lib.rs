#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-gk — the Greenwald–Khanna quantile summary
//!
//! The deterministic comparison-based ε-approximate quantile summary of
//! Greenwald & Khanna (SIGMOD 2001), storing O((1/ε)·log εN) items — the
//! upper bound that the PODS'20 lower bound reproduced in `cqs-core`
//! proves tight.
//!
//! Three variants are provided:
//!
//! * [`GkSummary`] — the original algorithm with band-based COMPRESS and
//!   subtree merging, exactly as analysed in the paper;
//! * [`GreedyGk`] — the simplified greedy-merge variant suggested in the
//!   same paper and studied experimentally by Luo et al. (whether its
//!   space is also O((1/ε)·log εN) is the open problem recalled in
//!   Section 6 of the lower-bound paper);
//! * [`CappedGk`] — a deliberately space-starved greedy variant that
//!   merges past the correctness threshold whenever it exceeds a hard
//!   item budget. It is *not* ε-approximate; it exists to demonstrate
//!   Lemma 3.4's failure mode under the adversary.
//!
//! All variants maintain tuples `(v_i, g_i, Δ_i)` where `g_i` is the rank
//! mass between `v_{i−1}` and `v_i` and `Δ_i` bounds the rank
//! uncertainty of `v_i`; the invariant `max_i (g_i + Δ_i) ≤ 2εn` is what
//! makes every rank answerable within εn.
//!
//! # Example
//!
//! ```
//! use cqs_gk::GkSummary;
//! use cqs_core::ComparisonSummary;
//!
//! let mut gk = GkSummary::new(0.01);
//! for x in 0..10_000u32 {
//!     gk.insert(x);
//! }
//! let med = gk.quantile(0.5).unwrap();
//! assert!((4900..=5100).contains(&med));
//! // Space is O((1/ε)·log εN), far below the 10k items seen.
//! assert!(gk.stored_count() < 600);
//! ```

mod band;
mod capped;
mod greedy;
mod summary;
mod tuple;

pub use band::band;
pub use capped::CappedGk;
pub use greedy::GreedyGk;
pub use summary::GkSummary;
pub use tuple::GkTuple;

/// Compile-time audit that the GK summaries can ride the `cqs-bench`
/// parallel sweep pool: each worker owns a whole summary for the
/// duration of a cell. Never called — instantiating the assertions
/// type-checks the `Send` bounds; the `sharding-send-sync` lint rule
/// derives this list from the spawn-site call graph and keeps the
/// lines from being deleted.
#[allow(dead_code)]
fn sharding_send_audit<T: Send>() {
    fn assert_send<U: Send>() {}
    assert_send::<GkSummary<T>>();
    assert_send::<GreedyGk<T>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqs_core::{ComparisonSummary, RankEstimator};

    /// Max |answered rank − target| over all targets for a permutation
    /// of 1..=n (values equal ranks, so errors are directly readable).
    fn max_rank_error<S: ComparisonSummary<u64>>(s: &S, n: u64) -> u64 {
        (1..=n)
            .map(|r| s.query_rank(r).unwrap().abs_diff(r))
            .max()
            .unwrap()
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        // Deterministic Fisher–Yates with SplitMix64.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in (1..v.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn banded_gk_is_eps_approximate_on_shuffled_stream() {
        let n = 20_000u64;
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        for x in shuffled(n, 1) {
            gk.insert(x);
        }
        let budget = (eps * n as f64).floor() as u64;
        let err = max_rank_error(&gk, n);
        assert!(err <= budget, "error {err} exceeds eps*n = {budget}");
    }

    #[test]
    fn greedy_gk_is_eps_approximate_on_shuffled_stream() {
        let n = 20_000u64;
        let eps = 0.01;
        let mut gk = GreedyGk::new(eps);
        for x in shuffled(n, 2) {
            gk.insert(x);
        }
        let budget = (eps * n as f64).floor() as u64;
        let err = max_rank_error(&gk, n);
        assert!(err <= budget, "error {err} exceeds eps*n = {budget}");
    }

    #[test]
    fn banded_gk_is_eps_approximate_on_sorted_and_reverse_streams() {
        let n = 10_000u64;
        let eps = 0.02;
        let budget = (eps * n as f64).floor() as u64;
        let mut fwd = GkSummary::new(eps);
        for x in 1..=n {
            fwd.insert(x);
        }
        assert!(max_rank_error(&fwd, n) <= budget);
        let mut rev = GkSummary::new(eps);
        for x in (1..=n).rev() {
            rev.insert(x);
        }
        assert!(max_rank_error(&rev, n) <= budget);
    }

    #[test]
    fn space_is_sublinear_and_in_the_gk_ballpark() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        let mut peak = 0usize;
        for x in shuffled(n, 3) {
            gk.insert(x);
            peak = peak.max(gk.stored_count());
        }
        // O((1/ε)·log εN): 100·log2(1000) ≈ 1000; allow generous slack,
        // but demand clearly sublinear behaviour.
        let bound = (1.0 / eps) * ((eps * n as f64).log2() + 2.0);
        assert!(
            (peak as f64) < 3.0 * bound,
            "peak {peak} far above GK bound {bound}"
        );
        assert!(peak < (n as usize) / 20, "peak {peak} not sublinear");
    }

    #[test]
    fn min_and_max_are_always_stored() {
        let mut seen_min = u64::MAX;
        let mut seen_max = 0u64;
        let mut gk = GkSummary::new(0.05);
        for x in shuffled(5000, 4) {
            gk.insert(x);
            seen_min = seen_min.min(x);
            seen_max = seen_max.max(x);
            let arr = gk.item_array();
            assert_eq!(*arr.first().unwrap(), seen_min);
            assert_eq!(*arr.last().unwrap(), seen_max);
        }
    }

    #[test]
    fn rank_estimates_are_within_budget() {
        let n = 20_000u64;
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        for x in shuffled(n, 5) {
            gk.insert(x);
        }
        let budget = (eps * n as f64).ceil() as u64 + 1;
        for q in (0..=n + 10).step_by(97) {
            let est = gk.estimate_rank(&q);
            let truth = q.min(n); // values are exactly 1..=n
            assert!(
                est.abs_diff(truth) <= budget,
                "rank({q}): est {est}, true {truth}"
            );
        }
    }

    #[test]
    fn capped_gk_respects_budget_and_loses_accuracy() {
        let n = 50_000u64;
        let mut gk = CappedGk::new(0.01, 16);
        for x in shuffled(n, 6) {
            gk.insert(x);
            assert!(
                gk.stored_count() <= 17,
                "cap exceeded: {}",
                gk.stored_count()
            );
        }
        // With ~16 items over 50k, worst-case error must far exceed ε·n.
        let err = max_rank_error(&gk, n);
        assert!(
            err > (0.01 * n as f64) as u64,
            "cap should break accuracy, err={err}"
        );
    }

    #[test]
    fn greedy_space_is_comparable_to_banded_on_typical_streams() {
        // Not a theorem (that's the open problem) — but it is the
        // observed behaviour Luo et al. report, and a regression canary.
        let n = 50_000u64;
        let eps = 0.005;
        let mut banded = GkSummary::new(eps);
        let mut greedy = GreedyGk::new(eps);
        let (mut pb, mut pg) = (0usize, 0usize);
        for x in shuffled(n, 7) {
            banded.insert(x);
            greedy.insert(x);
            pb = pb.max(banded.stored_count());
            pg = pg.max(greedy.stored_count());
        }
        assert!(pg <= pb * 2, "greedy {pg} vs banded {pb}");
    }

    #[test]
    fn duplicate_values_are_handled() {
        let mut gk = GkSummary::new(0.05);
        for _ in 0..1000 {
            gk.insert(7u64);
        }
        for r in [1u64, 500, 1000] {
            assert_eq!(gk.query_rank(r), Some(7));
        }
        assert!(gk.stored_count() < 100);
    }

    #[test]
    fn single_item_stream() {
        let mut gk = GkSummary::new(0.1);
        gk.insert(42u64);
        assert_eq!(gk.quantile(0.5), Some(42));
        assert_eq!(gk.stored_count(), 1);
        assert_eq!(gk.items_processed(), 1);
    }

    #[test]
    fn empty_summary_answers_none() {
        let gk: GkSummary<u64> = GkSummary::new(0.1);
        assert_eq!(gk.quantile(0.5), None);
        assert_eq!(gk.query_rank(1), None);
        assert_eq!(gk.estimate_rank(&5), 0);
    }
}
