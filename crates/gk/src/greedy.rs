//! The greedy GK variant: merge adjacent tuples whenever the combined
//! span fits, with no band bookkeeping.
//!
//! Suggested in the original GK paper and reported by Luo et al. to
//! outperform the banded version in practice; whether it retains the
//! O((1/ε)·log εN) worst-case bound is the open problem recalled in
//! Section 6 of the lower-bound paper. The ablation benches compare the
//! two head-to-head, including on the adversarial streams.

use cqs_core::{ComparisonSummary, MergeError, MergeableSummary, RankEstimator};

use crate::tuple::{
    estimate_rank_from_tuples, merge_sorted_chunk, merge_tuple_lists, query_rank_from_tuples,
    validate_tuple_parts, GkTuple,
};

/// Greedy-merge GK summary.
#[derive(Clone, Debug)]
pub struct GreedyGk<T> {
    tuples: Vec<GkTuple<T>>,
    n: u64,
    eps: f64,
    compress_period: u64,
    /// Sorted-run merge scratch, kept across calls so the bulk insert
    /// path never allocates on the adversary's hot path (the periodic
    /// compress itself runs in place). Transient: excluded from
    /// snapshots and rebuilt empty on restore.
    scratch_mid: Vec<GkTuple<T>>,
}

impl<T: Ord + Clone> GreedyGk<T> {
    /// Creates a summary with guarantee ε ∈ (0, 0.5).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε.
    pub fn new(eps: f64) -> Self {
        let period = (1.0 / (2.0 * eps)).floor().max(1.0) as u64;
        Self::with_compress_period(eps, period)
    }

    /// Creates a summary compressing every `period` inserts (ablation
    /// knob; see [`crate::GkSummary::with_compress_period`]).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε or a zero period.
    pub fn with_compress_period(eps: f64, period: u64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        assert!(period >= 1, "compress period must be positive");
        GreedyGk {
            tuples: Vec::new(),
            n: 0,
            eps,
            compress_period: period,
            scratch_mid: Vec::new(),
        }
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Raw tuples (diagnostics and tests).
    pub fn tuples(&self) -> &[GkTuple<T>] {
        &self.tuples
    }

    /// The persistent state as `(tuples, n, eps, compress_period)`; see
    /// [`crate::GkSummary::snapshot_parts`].
    pub fn snapshot_parts(&self) -> (&[GkTuple<T>], u64, f64, u64) {
        (&self.tuples, self.n, self.eps, self.compress_period)
    }

    /// Rebuilds a summary from snapshot parts with the same validation
    /// as [`crate::GkSummary::from_snapshot_parts`].
    pub fn from_snapshot_parts(
        tuples: Vec<GkTuple<T>>,
        n: u64,
        eps: f64,
        compress_period: u64,
    ) -> Result<Self, String> {
        validate_tuple_parts(&tuples, n, eps, compress_period)?;
        let s = GreedyGk {
            tuples,
            n,
            eps,
            compress_period,
            scratch_mid: Vec::new(),
        };
        if !s.invariant_holds() {
            return Err("snapshot violates the GK span invariant g+Δ ≤ ⌊2εn⌋".to_string());
        }
        Ok(s)
    }

    fn threshold(&self) -> u64 {
        (2.0 * self.eps * self.n as f64).floor() as u64
    }

    /// Merges another greedy-GK summary into this one: the same
    /// widened-bounds tuple interleave as [`crate::GkSummary::merge`]
    /// (shared via the tuple plumbing), followed by a greedy compress.
    /// `self` adopts ε_A + ε_B, so the merged summary answers within
    /// (ε_A + ε_B)·(n_A + n_B).
    pub fn merge(&mut self, other: &GreedyGk<T>) {
        if other.tuples.is_empty() {
            return;
        }
        if self.tuples.is_empty() {
            // Adopting the other side wholesale is the one unavoidable
            // copy: merge takes `&other` by contract.
            // cqs-lint: allow(hot-path-alloc)
            self.tuples = other.tuples.clone();
            self.n = other.n;
            self.eps = (self.eps + other.eps).min(0.499);
            return;
        }
        let (na, nb) = (self.n, other.n);
        self.tuples = merge_tuple_lists(&self.tuples, &other.tuples, na, nb);
        self.n = na + nb;
        self.eps = (self.eps + other.eps).min(0.499);
        self.compress_period = (1.0 / (2.0 * self.eps)).floor().max(1.0) as u64;
        self.compress(self.threshold());
    }

    /// The correctness invariant shared with the banded variant.
    pub fn invariant_holds(&self) -> bool {
        let cap = self.threshold().max(1);
        self.tuples.iter().all(|t| t.g + t.delta <= cap)
    }

    pub(crate) fn insert_value(&mut self, item: T) {
        let pos = self.tuples.partition_point(|t| t.v < item);
        let thr = self.threshold();
        let delta = if pos == 0 || pos == self.tuples.len() || thr < 1 {
            0
        } else {
            thr.saturating_sub(1)
        };
        self.tuples.insert(
            pos,
            GkTuple {
                v: item,
                g: 1,
                delta,
            },
        );
        self.n += 1;
        if self.n.is_multiple_of(self.compress_period) {
            self.compress(self.threshold());
        }
    }

    /// Greedy compress: one right-to-left pass merging `t_i` into
    /// `t_{i+1}` whenever `g_i + g_{i+1} + Δ_{i+1} < cap` (the successor
    /// absorbs the mass and keeps its own Δ, so the test is exactly the
    /// post-merge span). Cascades naturally: an absorber's grown `g` is
    /// what the next candidate is tested against. The first and last
    /// tuples (stream extremes) are never removed.
    ///
    /// Runs in place: an absorbed tuple is marked dead via `g = 0`
    /// (live tuples always carry `g >= 1`) and swept out by one
    /// `retain` pass — the compress fires every `period` inserts, and
    /// shuffling the whole tuple vector through a scratch buffer on
    /// each firing dominated the greedy insert path.
    pub(crate) fn compress(&mut self, cap: u64) {
        if self.tuples.len() < 3 || cap < 2 {
            return;
        }
        let mut succ = self.tuples.len() - 1;
        for i in (1..self.tuples.len() - 1).rev() {
            let t_g = self.tuples.get(i).map_or(0, |t| t.g);
            let fits = self
                .tuples
                .get(succ)
                .is_some_and(|s| t_g + s.g + s.delta < cap);
            if fits {
                if let Some(s) = self.tuples.get_mut(succ) {
                    s.g += t_g;
                }
                if let Some(t) = self.tuples.get_mut(i) {
                    t.g = 0;
                }
            } else {
                succ = i;
            }
        }
        self.tuples.retain(|t| t.g != 0);
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for GreedyGk<T> {
    fn insert(&mut self, item: T) {
        self.insert_value(item);
    }

    fn insert_sorted_run(&mut self, run: &[T]) -> usize {
        debug_assert!(
            run.windows(2).all(|w| w[0] <= w[1]),
            "insert_sorted_run requires a non-decreasing run"
        );
        let mut peak = 0usize;
        let mut rest = run;
        while !rest.is_empty() {
            // Chunk at compress boundaries (see GkSummary's override for
            // the peak-accounting rationale).
            let until = (self.compress_period - self.n % self.compress_period) as usize;
            let (chunk, tail) = rest.split_at(until.min(rest.len()));
            merge_sorted_chunk(
                &mut self.tuples,
                &mut self.n,
                self.eps,
                chunk,
                &mut self.scratch_mid,
            );
            let pre_compress = self.tuples.len();
            if self.n.is_multiple_of(self.compress_period) {
                self.compress(self.threshold());
                let post = self.tuples.len();
                peak = peak.max(if chunk.len() >= 2 {
                    (pre_compress - 1).max(post)
                } else {
                    post
                });
            } else {
                peak = peak.max(pre_compress);
            }
            rest = tail;
        }
        peak
    }

    fn item_array(&self) -> Vec<T> {
        self.tuples.iter().map(|t| t.v.clone()).collect()
    }

    fn for_each_item(&self, f: &mut dyn FnMut(&T)) {
        for t in &self.tuples {
            f(&t.v);
        }
    }

    fn for_each_item_between(&self, lo: Option<&T>, hi: Option<&T>, f: &mut dyn FnMut(&T)) {
        // Both bounds become plain indices (ranks) via partition scans,
        // so the visit loop below runs comparison-free: the per-tuple
        // `>= hi` probe was a deep label comparison on every visited
        // item of the gap scan.
        let mut start = 0;
        if let Some(lo) = lo {
            start = self.tuples.partition_point(|t| &t.v <= lo);
        }
        let mut end = self.tuples.len();
        if let Some(hi) = hi {
            end = start
                + self
                    .tuples
                    .get(start..)
                    .map_or(0, |ts| ts.partition_point(|t| &t.v < hi));
        }
        for t in self.tuples.get(start..end).unwrap_or(&[]) {
            f(&t.v);
        }
    }

    fn stored_count(&self) -> usize {
        self.tuples.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        query_rank_from_tuples(&self.tuples, r, self.n)
    }

    fn name(&self) -> &'static str {
        "gk-greedy"
    }
}

impl<T: Ord + Clone> RankEstimator<T> for GreedyGk<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        estimate_rank_from_tuples(&self.tuples, q, self.n)
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for GreedyGk<T> {
    /// Same contract as the banded variant: composed-ε range check up
    /// front, widened-bounds fold, span-invariant re-validation after.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        let composed = self.eps + other.eps;
        if !(composed > 0.0 && composed < 0.5) {
            return Err(MergeError::EpsOverflow { composed });
        }
        self.merge(other);
        if !self.invariant_holds() {
            return Err(MergeError::InvariantViolated {
                detail: format!("GK span invariant g+Δ ≤ ⌊2εn⌋ at eps {}", self.eps),
            });
        }
        Ok(())
    }

    fn eps_bound(&self) -> Option<f64> {
        Some(self.eps)
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn greedy_invariant_and_mass_on_random_streams(
            xs in proptest::collection::vec(0u32..100_000, 1..1500),
        ) {
            let mut gk = GreedyGk::new(0.03);
            for &x in &xs {
                gk.insert(x);
            }
            prop_assert!(gk.invariant_holds());
            let mass: u64 = gk.tuples().iter().map(|t| t.g).sum();
            prop_assert_eq!(mass, xs.len() as u64);
            let arr = gk.item_array();
            prop_assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn greedy_quantiles_within_budget_on_random_streams(
            xs in proptest::collection::vec(0u32..10_000, 200..2000),
        ) {
            let eps = 0.05;
            let mut gk = GreedyGk::new(eps);
            let mut sorted = xs.clone();
            for &x in &xs {
                gk.insert(x);
            }
            sorted.sort_unstable();
            let n = xs.len() as u64;
            let budget = (eps * n as f64).floor() as u64 + 1;
            for step in 1..=8u64 {
                let r = (step * n / 8).max(1);
                let ans = gk.query_rank(r).unwrap();
                let lo = sorted.partition_point(|&v| v < ans) as u64 + 1;
                let hi = sorted.partition_point(|&v| v <= ans) as u64;
                let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
                prop_assert!(err <= budget, "rank {r}: err {err}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_conservation_under_greedy_merging() {
        let mut gk = GreedyGk::new(0.02);
        for i in 0..5000u64 {
            gk.insert((i * 48271) % 100_000);
        }
        let mass: u64 = gk.tuples().iter().map(|t| t.g).sum();
        assert_eq!(mass, 5000);
    }

    #[test]
    fn invariant_holds_on_random_inserts() {
        let mut gk = GreedyGk::new(0.05);
        for i in 0..3000u64 {
            gk.insert((i * 2654435761) % 4096);
            assert!(gk.invariant_holds(), "broken at n={}", i + 1);
        }
    }

    #[test]
    fn sorted_stream_compresses_aggressively() {
        let mut gk = GreedyGk::new(0.1);
        for x in 0..2000u64 {
            gk.insert(x);
        }
        assert!(gk.stored_count() < 400);
        assert!(gk.invariant_holds());
    }

    #[test]
    fn extremes_survive_merging() {
        let mut gk = GreedyGk::new(0.05);
        for x in (0..4000u64).rev() {
            gk.insert(x);
        }
        let arr = gk.item_array();
        assert_eq!(arr[0], 0);
        assert_eq!(*arr.last().unwrap(), 3999);
    }
}
