//! The GK tuple `(v, g, Δ)` and shared tuple-list plumbing.

/// One stored tuple of a GK-family summary.
///
/// * `v` — a stored stream item;
/// * `g` — `r_min(v_i) − r_min(v_{i−1})`: the rank mass this tuple is
///   responsible for;
/// * `delta` — `r_max(v_i) − r_min(v_i)`: the uncertainty in v's rank.
#[derive(Clone, Debug)]
pub struct GkTuple<T> {
    /// The stored item.
    pub v: T,
    /// Rank mass since the previous tuple.
    pub g: u64,
    /// Rank uncertainty of this tuple.
    pub delta: u64,
}

/// Structural validation shared by the banded and greedy snapshot
/// restore paths: ε in range, positive compress period, tuples sorted
/// non-decreasing by value, and total `g` mass equal to the stream
/// length. Returns a diagnostic for the first violation found.
pub(crate) fn validate_tuple_parts<T: Ord>(
    tuples: &[GkTuple<T>],
    n: u64,
    eps: f64,
    compress_period: u64,
) -> Result<(), String> {
    if !(eps > 0.0 && eps < 0.5) {
        return Err(format!("snapshot eps {eps} outside (0, 0.5)"));
    }
    if compress_period < 1 {
        return Err("snapshot compress period must be positive".to_string());
    }
    if !tuples.windows(2).all(|w| match (w.first(), w.last()) {
        (Some(a), Some(b)) => a.v <= b.v,
        _ => true,
    }) {
        return Err("snapshot tuples are not sorted by value".to_string());
    }
    let mass: u64 = tuples.iter().map(|t| t.g).sum();
    if mass != n {
        return Err(format!(
            "snapshot g mass {mass} disagrees with stream length {n}"
        ));
    }
    Ok(())
}

/// Shared query logic over a tuple list with running minimum-rank sums.
/// Returns a stored item whose rank bounds bracket `r` within the
/// available uncertainty budget (the caller's invariant guarantees one
/// exists whenever the summary is within its advertised ε).
pub(crate) fn query_rank_from_tuples<T: Clone>(tuples: &[GkTuple<T>], r: u64, n: u64) -> Option<T> {
    if tuples.is_empty() {
        return None;
    }
    let r = r.clamp(1, n);
    // Return the tuple minimizing the worst-side deviation
    // max(|r_min − r|, |r_max − r|). The GK invariant guarantees some
    // tuple has deviation ≤ ⌈max_i(g_i + Δ_i)/2⌉ ≤ ⌈εn⌉, so the best
    // tuple certainly does.
    let mut r_min = 0u64;
    let mut best: Option<(&GkTuple<T>, u64)> = None;
    for t in tuples {
        r_min += t.g;
        let r_max = r_min + t.delta;
        let dev = (r_min.abs_diff(r)).max(r_max.abs_diff(r));
        if best.map(|(_, d)| dev < d).unwrap_or(true) {
            best = Some((t, dev));
        }
    }
    best.map(|(t, _)| t.v.clone())
}

/// Shared rank-estimation logic: the midpoint estimator
/// `(r_min(i) + r_max(i+1) − 1)/2` for the last tuple with `v_i ≤ q`.
pub(crate) fn estimate_rank_from_tuples<T: Ord>(tuples: &[GkTuple<T>], q: &T, n: u64) -> u64 {
    if tuples.is_empty() {
        return 0;
    }
    if *q < tuples[0].v {
        return 0;
    }
    let mut r_min = 0u64;
    let mut prev_r_min = 0u64;
    let mut idx_le: Option<usize> = None;
    for (idx, t) in tuples.iter().enumerate() {
        r_min += t.g;
        if t.v <= *q {
            idx_le = Some(idx);
            prev_r_min = r_min;
        } else {
            // First tuple above q: estimate between prev r_min and this
            // tuple's r_max.
            let r_max_next = r_min + t.delta;
            return (prev_r_min + r_max_next.saturating_sub(1)) / 2;
        }
    }
    debug_assert!(idx_le.is_some());
    n
}

/// Merges two GK tuple lists by value with widened rank bounds — the
/// standard mergeable-summaries composition (Agarwal et al.): each
/// emitted tuple's bounds are those of its source widened by the
/// bracketing tuples of the *other* list,
///
/// ```text
///   r_min'(x) = r_min_A(x) + r_min_B(pred_B(x))
///   r_max'(x) = r_max_A(x) + r_max_B(succ_B(x)) − 1
/// ```
///
/// after which `(g, Δ)` are re-derived from the widened bounds. The
/// result summarises the concatenated streams (lengths `na + nb`) with
/// error at most (ε_A + ε_B)·(n_A + n_B); both the banded and the
/// greedy variant compress it under their own policy afterwards.
pub(crate) fn merge_tuple_lists<T: Ord + Clone>(
    a: &[GkTuple<T>],
    b: &[GkTuple<T>],
    na: u64,
    nb: u64,
) -> Vec<GkTuple<T>> {
    // Prefix rank bounds for both sides.
    let bounds = |ts: &[GkTuple<T>]| -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(ts.len());
        let mut r_min = 0u64;
        for t in ts {
            r_min += t.g;
            out.push((r_min, r_min + t.delta));
        }
        out
    };
    let ba = bounds(a);
    let bb = bounds(b);

    // Merge by value; for each emitted tuple compute widened bounds.
    let mut merged: Vec<(T, u64, u64)> = Vec::with_capacity(ba.len() + bb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        // The loop condition guarantees at least one side is non-empty,
        // so (None, None) cannot occur; folding it into the take-b arm
        // keeps the merge panic-free.
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.v <= y.v,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let (v, own, other_ts, other_bounds, other_n, pos) = if take_a {
            (a[i].v.clone(), ba[i], b, &bb, nb, j)
        } else {
            (b[j].v.clone(), bb[j], a, &ba, na, i)
        };
        // pred: last tuple of the other side with value <= v is at
        // pos−1 (the cursor has consumed exactly those); succ is at pos.
        let pred_min = if pos == 0 { 0 } else { other_bounds[pos - 1].0 };
        let succ_max = match other_ts.get(pos) {
            Some(_) => other_bounds[pos].1.saturating_sub(1),
            None => other_n,
        };
        let r_min = own.0 + pred_min;
        let r_max = (own.1 + succ_max).max(r_min);
        merged.push((v, r_min, r_max));
        if take_a {
            i += 1;
        } else {
            j += 1;
        }
    }

    // Re-derive (g, Δ) from the widened bounds.
    let mut tuples = Vec::with_capacity(merged.len());
    let mut prev_min = 0u64;
    for (v, r_min, r_max) in merged {
        let r_min = r_min.max(prev_min); // monotone by construction; guard anyway
        tuples.push(GkTuple {
            v,
            g: r_min - prev_min,
            delta: r_max.saturating_sub(r_min),
        });
        prev_min = r_min;
    }
    debug_assert_eq!(prev_min, na + nb, "merged rank mass mismatch");
    tuples
}

/// Merges a non-decreasing `chunk` of fresh items into `tuples` in one
/// pass, replicating — tuple for tuple — what the sequential
/// `insert_value` loop would build, minus the per-item binary search and
/// `Vec::insert` shuffles. The caller guarantees no COMPRESS fires
/// inside the chunk (it slices runs at compress-period boundaries), so
/// the only sequential effects to reproduce are the position-dependent
/// Δ assignment and the placement of duplicates:
///
/// * `pos == 0` for item x ⟺ no tuple with `v < x` had been emitted;
/// * `pos == len` ⟺ the old list is fully consumed *and* x is the first
///   of its equal group (earlier equals sit at/after the insertion
///   point);
/// * sequential inserts place each new equal item *before* the previous
///   ones, so an equal group is emitted in reverse insertion order.
///
/// `n` advances by one per item; Δ uses the threshold ⌊2εn⌋ evaluated
/// *before* each increment, exactly as `insert_value` does.
pub(crate) fn merge_sorted_chunk<T: Ord + Clone>(
    tuples: &mut Vec<GkTuple<T>>,
    n: &mut u64,
    eps: f64,
    chunk: &[T],
    mid: &mut Vec<GkTuple<T>>,
) {
    if chunk.is_empty() {
        return;
    }
    // Tuples below the chunk's smallest item are untouched, so the merge
    // materializes only the interleaved middle (consumed old tuples plus
    // the chunk) and splices it over the consumed range; `mid` is
    // caller-owned scratch so repeated runs reuse one buffer. The
    // adversary's runs land inside one refined interval, where this
    // turns the old whole-list rebuild into a short middle plus one
    // tail move.
    let lo = tuples.partition_point(|t| t.v < chunk[0]);
    let mut cur = lo;
    mid.clear();
    let mut idx = 0usize;
    while idx < chunk.len() {
        let x = &chunk[idx];
        let mut end = idx + 1;
        while end < chunk.len() && chunk[end] == *x {
            end += 1;
        }
        while cur < tuples.len() && tuples[cur].v < *x {
            mid.push(tuples[cur].clone());
            cur += 1;
        }
        let any_lt = lo > 0 || !mid.is_empty();
        let old_empty = cur == tuples.len();
        let group_start = mid.len();
        for j in 0..end - idx {
            let thr = (2.0 * eps * *n as f64).floor() as u64;
            let delta = if !any_lt || (old_empty && j == 0) || thr < 1 {
                0
            } else {
                thr.saturating_sub(1)
            };
            mid.push(GkTuple {
                v: x.clone(),
                g: 1,
                delta,
            });
            *n += 1;
        }
        mid[group_start..].reverse();
        idx = end;
    }
    tuples.splice(lo..cur, mid.drain(..));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_tuples(n: u64) -> Vec<GkTuple<u64>> {
        (1..=n).map(|v| GkTuple { v, g: 1, delta: 0 }).collect()
    }

    #[test]
    fn query_on_exact_tuples_is_exact() {
        let ts = exact_tuples(100);
        for r in [1u64, 17, 50, 99, 100] {
            assert_eq!(query_rank_from_tuples(&ts, r, 100), Some(r));
        }
    }

    #[test]
    fn query_clamps_out_of_range_targets() {
        let ts = exact_tuples(10);
        assert_eq!(query_rank_from_tuples(&ts, 0, 10), Some(1));
        assert_eq!(query_rank_from_tuples(&ts, 999, 10), Some(10));
    }

    #[test]
    fn estimate_rank_on_exact_tuples() {
        let ts = exact_tuples(100);
        assert_eq!(estimate_rank_from_tuples(&ts, &0, 100), 0);
        assert_eq!(estimate_rank_from_tuples(&ts, &100, 100), 100);
        assert_eq!(estimate_rank_from_tuples(&ts, &1000, 100), 100);
        // q = 42: 42 items ≤ 42; estimator midpoint is (42 + 43−1)/2 = 42.
        assert_eq!(estimate_rank_from_tuples(&ts, &42, 100), 42);
    }

    #[test]
    fn empty_tuple_list() {
        let ts: Vec<GkTuple<u64>> = Vec::new();
        assert_eq!(query_rank_from_tuples(&ts, 1, 0), None);
        assert_eq!(estimate_rank_from_tuples(&ts, &5, 0), 0);
    }
}
