//! GK band computation.
//!
//! Bands group tuples by the "age" of their uncertainty: with
//! `p = ⌊2εn⌋`, a tuple's Δ lies in band α ≥ 1 when
//!
//! ```text
//!   2^{α−1} + (p mod 2^{α−1}) ≤ p − Δ < 2^α + (p mod 2^α),
//! ```
//!
//! band 0 holds exactly Δ = p (tuples inserted "now"). Higher bands are
//! older tuples carrying more rank mass capacity; COMPRESS only merges a
//! tuple into a successor of equal or higher band, which is what caps
//! the tree height and yields the O((1/ε)·log εN) space bound.

/// The band of an uncertainty value `delta` at threshold `p = ⌊2εn⌋`.
///
/// Closed form: writing `diff = p − Δ ≥ 1` and `lo_α = 2^{α−1} +
/// (p mod 2^{α−1})`, the band windows `[lo_α, lo_{α+1})` tile `[1, ∞)`
/// contiguously (the window's upper end `2^α + (p mod 2^α)` IS the next
/// window's `lo`), so the band is the largest α with `lo_α ≤ diff`.
/// Since `lo_α ∈ [2^{α−1}, 2^α)`, that α is `⌊log₂ diff⌋ + 1` or one
/// less — a `leading_zeros` and one comparison, where the defining scan
/// pays one iteration per candidate band. COMPRESS evaluates this per
/// stored tuple per call, which made the scan the single hottest piece
/// of the GK insert path under the adversary.
///
/// # Panics
///
/// Debug-panics if `delta > p` (no legal tuple exceeds the threshold).
pub fn band(delta: u64, p: u64) -> u32 {
    debug_assert!(delta <= p, "delta {delta} exceeds threshold {p}");
    if delta == p {
        return 0;
    }
    let diff = p - delta; // ≥ 1
    let alpha = 64 - diff.leading_zeros(); // ⌊log₂ diff⌋ + 1, in [1, 64]
    let half = 1u64 << (alpha - 1);
    if half + (p & (half - 1)) <= diff {
        alpha
    } else {
        alpha - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The defining window scan from the paper, kept as the oracle for
    /// the closed form.
    fn band_by_scan(delta: u64, p: u64) -> u32 {
        if delta == p {
            return 0;
        }
        let diff = p - delta;
        let mut alpha = 1u32;
        while alpha < 64 {
            let half = 1u64 << (alpha - 1);
            let full = 1u64 << alpha;
            let lo = half + (p & (half - 1));
            let hi = full + (p & (full - 1));
            if diff >= lo && diff < hi {
                return alpha;
            }
            alpha += 1;
        }
        64
    }

    #[test]
    fn closed_form_matches_window_scan() {
        for p in [1u64, 2, 3, 7, 8, 9, 100, 255, 256, 1023, 1024, 65535] {
            for delta in 0..=p.min(5000) {
                assert_eq!(
                    band(delta, p),
                    band_by_scan(delta, p),
                    "mismatch at delta={delta}, p={p}"
                );
            }
            // High-Δ corner (thresholds above the exhaustive sweep).
            for delta in p.saturating_sub(300)..=p {
                assert_eq!(band(delta, p), band_by_scan(delta, p));
            }
        }
    }

    #[test]
    fn band_zero_is_exactly_p() {
        assert_eq!(band(10, 10), 0);
        assert_eq!(band(0, 0), 0);
    }

    #[test]
    fn every_delta_gets_a_small_band() {
        // Totality: every Δ in [0, p] falls in some band, and the number
        // of distinct bands is logarithmic in p.
        for p in [1u64, 2, 7, 8, 100, 1023, 1024] {
            let mut distinct = std::collections::BTreeSet::new();
            for delta in 0..=p {
                let b = band(delta, p);
                assert!(b < 64, "band overflowed at p={p}, delta={delta}");
                if delta == p {
                    assert_eq!(b, 0);
                } else {
                    assert!(b >= 1);
                }
                distinct.insert(b);
            }
            let log_bound = (p as f64 + 2.0).log2().ceil() as usize + 2;
            assert!(
                distinct.len() <= log_bound,
                "p={p}: {} bands exceeds log bound {log_bound}",
                distinct.len()
            );
        }
    }

    #[test]
    fn band_monotone_nonincreasing_in_delta() {
        for p in [16u64, 100, 255] {
            let mut last = u32::MAX;
            for delta in 0..=p {
                let b = band(delta, p);
                assert!(
                    b <= last,
                    "p={p}, delta={delta}: band {b} > previous {last}"
                );
                last = b;
            }
        }
    }

    #[test]
    fn freshest_delta_zero_has_highest_band() {
        for p in [4u64, 100, 4096] {
            let b0 = band(0, p);
            for delta in 1..=p {
                assert!(band(delta, p) <= b0);
            }
            // Band of Δ=0 is ~⌈log₂ p⌉.
            let expect = (p as f64).log2().ceil() as u32;
            assert!(b0 >= expect, "p={p}: band(0)={b0} < log2(p)={expect}");
            assert!(b0 <= expect + 1);
        }
    }
}
