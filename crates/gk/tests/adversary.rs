//! Integration: the PODS'20 adversary versus real GK summaries.
//!
//! These tests exercise the paper's central dilemma end-to-end: a
//! correct GK summary driven by the adversarial construction must keep
//! the gap within 2εN and pay for it with Ω((1/ε)·log εN) stored items,
//! while a space-capped GK must blow the gap and yield a concrete
//! failing query.

use cqs_core::adversary::run_adversary;
use cqs_core::failure::quantile_failure_witness;
use cqs_core::{Eps, Item};
use cqs_gk::{CappedGk, GkSummary, GreedyGk};

#[test]
fn gk_stays_correct_under_adversary() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 6, || GkSummary::<Item>::new(eps.value()));
    assert!(
        out.equivalence_error.is_none(),
        "{:?}",
        out.equivalence_error
    );
    assert!(
        out.gap_within_correctness_ceiling(),
        "GK gap {} exceeded ceiling {}",
        out.final_gap(),
        eps.gap_bound(eps.stream_len(6))
    );
    assert!(quantile_failure_witness(&out).is_none());
}

#[test]
fn gk_space_meets_theorem22_bound() {
    let eps = Eps::from_inverse(32);
    for k in 3..=7u32 {
        let out = run_adversary(eps, k, || GkSummary::<Item>::new(eps.value()));
        let rep = out.report();
        assert!(
            rep.max_stored as f64 >= rep.theorem22_bound,
            "k={k}: GK stored {} below theorem bound {}",
            rep.max_stored,
            rep.theorem22_bound
        );
    }
}

#[test]
fn greedy_gk_stays_correct_under_adversary() {
    let eps = Eps::from_inverse(32);
    let out = run_adversary(eps, 6, || GreedyGk::<Item>::new(eps.value()));
    assert!(
        out.equivalence_error.is_none(),
        "{:?}",
        out.equivalence_error
    );
    assert!(
        out.gap_within_correctness_ceiling(),
        "greedy GK gap {} exceeded ceiling {}",
        out.final_gap(),
        eps.gap_bound(eps.stream_len(6))
    );
}

#[test]
fn capped_gk_fails_with_witness() {
    let eps = Eps::from_inverse(32);
    let k = 6;
    let out = run_adversary(eps, k, || CappedGk::<Item>::new(eps.value(), 8));
    assert!(
        out.equivalence_error.is_none(),
        "{:?}",
        out.equivalence_error
    );
    let w = quantile_failure_witness(&out).expect("capped GK must blow the gap ceiling");
    assert!(
        w.demonstrates_failure(),
        "witness did not demonstrate failure: err_pi={} err_rho={} budget={}",
        w.err_pi,
        w.err_rho,
        w.budget
    );
}

#[test]
fn gk_space_grows_with_k_on_adversarial_streams() {
    // The lower bound's content: space grows linearly in k = log₂(εN)
    // at fixed ε. Check monotone growth over a k-sweep.
    let eps = Eps::from_inverse(32);
    let spaces: Vec<usize> = (3..=8u32)
        .map(|k| {
            run_adversary(eps, k, || GkSummary::<Item>::new(eps.value()))
                .report()
                .max_stored
        })
        .collect();
    for w in spaces.windows(2) {
        assert!(w[1] >= w[0], "space not monotone in k: {spaces:?}");
    }
    assert!(
        spaces[spaces.len() - 1] > spaces[0],
        "space flat across k: {spaces:?}"
    );
}
