#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqs-ckms — biased (relative-error) quantiles
//!
//! The CKMS summary of Cormode, Korn, Muthukrishnan & Srivastava
//! (ICDE 2005): a GK-style tuple list whose invariant is driven by a
//! rank-dependent error function `f(r, n) = max(⌊2εr⌋, 1)`, granting the
//! *biased* guarantee — a ϕ-quantile query is answered within ε·ϕ·N
//! ranks, which is far stronger than the uniform ε·N at small ϕ (e.g.
//! p99.9 latency tracking).
//!
//! Role in the reproduction: Theorem 6.5 of the lower-bound paper proves
//! any comparison-based biased-quantile summary needs Ω((1/ε)·log² εN)
//! items via the k-phase construction in `cqs_core::biased`; this crate
//! is the upper-bound side whose retention the experiment measures.
//! Because ε·r ≤ ε·n, a biased summary is also a valid uniform summary —
//! it simply pays more space near low ranks.
//!
//! # Example
//!
//! ```
//! use cqs_ckms::CkmsSummary;
//! use cqs_core::ComparisonSummary;
//!
//! let mut ck = CkmsSummary::new(0.01);
//! for x in 0..100_000u64 {
//!     ck.insert(x);
//! }
//! // Relative error: the 0.1%-quantile is pinned within ±ε·0.001·N ≈ ±1.
//! let low = ck.quantile(0.001).unwrap();
//! assert!((95..=105).contains(&low));
//! ```

use cqs_core::{ComparisonSummary, MergeError, MergeableSummary, RankEstimator};

/// One CKMS tuple (same shape as GK's).
#[derive(Clone, Debug)]
pub struct CkmsTuple<T> {
    /// Stored item.
    pub v: T,
    /// Rank mass since the previous tuple.
    pub g: u64,
    /// Rank uncertainty.
    pub delta: u64,
}

/// Which end of the rank spectrum gets the sharp relative guarantee.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Bias {
    /// Error ε·r — sharp at *low* ranks (small quantiles), the original
    /// CKMS setting.
    #[default]
    Low,
    /// Error ε·(n − r + 1) — sharp at *high* ranks (tail percentiles,
    /// e.g. p99.9 latency), by running the same invariant mirrored.
    High,
}

/// The CKMS biased-quantiles summary (low-rank biased: error ε·r).
#[derive(Clone, Debug)]
pub struct CkmsSummary<T> {
    tuples: Vec<CkmsTuple<T>>,
    n: u64,
    eps: f64,
    bias: Bias,
    compress_period: u64,
}

impl<T: Ord + Clone> CkmsSummary<T> {
    /// Creates a summary with relative guarantee ε ∈ (0, 0.5).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε.
    pub fn new(eps: f64) -> Self {
        Self::with_bias(eps, Bias::Low)
    }

    /// Creates a summary whose sharp end is at high ranks — the natural
    /// configuration for tail-latency (p99/p99.9) tracking.
    pub fn new_high_biased(eps: f64) -> Self {
        Self::with_bias(eps, Bias::High)
    }

    /// Creates a summary with an explicit [`Bias`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε.
    pub fn with_bias(eps: f64, bias: Bias) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        CkmsSummary {
            tuples: Vec::new(),
            n: 0,
            eps,
            bias,
            compress_period: (1.0 / (2.0 * eps)).floor().max(1.0) as u64,
        }
    }

    /// The configured bias direction.
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Raw tuples (diagnostics and tests).
    pub fn tuples(&self) -> &[CkmsTuple<T>] {
        &self.tuples
    }

    /// The persistent state as `(tuples, n, eps, bias, compress_period)`
    /// — everything a snapshot must carry.
    pub fn snapshot_parts(&self) -> (&[CkmsTuple<T>], u64, f64, Bias, u64) {
        (
            &self.tuples,
            self.n,
            self.eps,
            self.bias,
            self.compress_period,
        )
    }

    /// Rebuilds a summary from snapshot parts, validating ε range,
    /// positive period, sorted tuples, total `g` mass equal to `n`, and
    /// the biased span invariant. Returns a diagnostic instead of
    /// constructing a broken summary.
    pub fn from_snapshot_parts(
        tuples: Vec<CkmsTuple<T>>,
        n: u64,
        eps: f64,
        bias: Bias,
        compress_period: u64,
    ) -> Result<Self, String> {
        if !(eps > 0.0 && eps < 0.5) {
            return Err(format!("snapshot eps {eps} outside (0, 0.5)"));
        }
        if compress_period < 1 {
            return Err("snapshot compress period must be positive".to_string());
        }
        if !tuples.windows(2).all(|w| match (w.first(), w.last()) {
            (Some(a), Some(b)) => a.v <= b.v,
            _ => true,
        }) {
            return Err("snapshot tuples are not sorted by value".to_string());
        }
        let mass: u64 = tuples.iter().map(|t| t.g).sum();
        if mass != n {
            return Err(format!(
                "snapshot g mass {mass} disagrees with stream length {n}"
            ));
        }
        let s = CkmsSummary {
            tuples,
            n,
            eps,
            bias,
            compress_period,
        };
        if !s.invariant_holds() {
            return Err("snapshot violates the CKMS biased span invariant".to_string());
        }
        Ok(s)
    }

    /// The biased invariant function: f(r) = max(⌊2εr⌋, 1) for low
    /// bias, mirrored to max(⌊2ε(n − r + 1)⌋, 1) for high bias.
    fn f(&self, r: u64) -> u64 {
        let effective = match self.bias {
            Bias::Low => r,
            Bias::High => (self.n + 1).saturating_sub(r),
        };
        ((2.0 * self.eps * effective as f64).floor() as u64).max(1)
    }

    /// The biased invariant: every tuple's span fits its rank budget.
    pub fn invariant_holds(&self) -> bool {
        let mut r = 0u64;
        for t in &self.tuples {
            if t.g + t.delta > self.f(r).max(1) + 1 {
                return false;
            }
            r += t.g;
        }
        true
    }

    /// Merges another CKMS summary of the *same bias direction* into
    /// this one: the standard widened-bounds tuple interleave (each
    /// emitted tuple's rank bounds widen by the bracketing tuples of the
    /// other list), then a compress under the composed budget. `self`
    /// adopts ε_A + ε_B; the biased guarantee composes the same way the
    /// uniform one does — error at rank r grows to (ε_A + ε_B)·r.
    ///
    /// Bias directions cannot be mixed (their invariants pull opposite
    /// ways); use [`MergeableSummary::try_merge`] for the checked path.
    fn merge_same_bias(&mut self, other: &CkmsSummary<T>) {
        if other.tuples.is_empty() {
            return;
        }
        if self.tuples.is_empty() {
            self.tuples = other.tuples.clone();
            self.n = other.n;
            self.eps = (self.eps + other.eps).min(0.499);
            return;
        }
        let bounds = |ts: &[CkmsTuple<T>]| -> Vec<(u64, u64)> {
            let mut out = Vec::with_capacity(ts.len());
            let mut r_min = 0u64;
            for t in ts {
                r_min += t.g;
                out.push((r_min, r_min + t.delta));
            }
            out
        };
        let ba = bounds(&self.tuples);
        let bb = bounds(&other.tuples);
        let (na, nb) = (self.n, other.n);
        let mut merged: Vec<(T, u64, u64)> = Vec::with_capacity(ba.len() + bb.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.tuples.len() || j < other.tuples.len() {
            let take_a = match (self.tuples.get(i), other.tuples.get(j)) {
                (Some(a), Some(b)) => a.v <= b.v,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let (v, own, other_ts, other_bounds, other_n, pos) = if take_a {
                (self.tuples[i].v.clone(), ba[i], &other.tuples, &bb, nb, j)
            } else {
                (other.tuples[j].v.clone(), bb[j], &self.tuples, &ba, na, i)
            };
            let pred_min = if pos == 0 { 0 } else { other_bounds[pos - 1].0 };
            let succ_max = match other_ts.get(pos) {
                Some(_) => other_bounds[pos].1.saturating_sub(1),
                None => other_n,
            };
            let r_min = own.0 + pred_min;
            let r_max = (own.1 + succ_max).max(r_min);
            merged.push((v, r_min, r_max));
            if take_a {
                i += 1;
            } else {
                j += 1;
            }
        }
        let mut tuples = Vec::with_capacity(merged.len());
        let mut prev_min = 0u64;
        for (v, r_min, r_max) in merged {
            let r_min = r_min.max(prev_min);
            tuples.push(CkmsTuple {
                v,
                g: r_min - prev_min,
                delta: r_max.saturating_sub(r_min),
            });
            prev_min = r_min;
        }
        self.tuples = tuples;
        self.n = na + nb;
        self.eps = (self.eps + other.eps).min(0.499);
        self.compress_period = (1.0 / (2.0 * self.eps)).floor().max(1.0) as u64;
        self.compress();
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        // Right-to-left greedy merge under the rank-dependent budget.
        // Precompute r_min prefix to know each candidate's rank budget.
        let mut r_mins: Vec<u64> = Vec::with_capacity(self.tuples.len());
        let mut acc = 0u64;
        for t in &self.tuples {
            acc += t.g;
            r_mins.push(acc);
        }
        let mut ts = std::mem::take(&mut self.tuples);
        let mut kept_rev: Vec<CkmsTuple<T>> = Vec::with_capacity(ts.len());
        kept_rev.extend(ts.pop());
        let mut idx = ts.len();
        while let Some(t) = ts.pop() {
            idx -= 1;
            let is_first = ts.is_empty();
            // Budget at the *predecessor's* rank, per CKMS.
            let budget = if idx == 0 { 1 } else { self.f(r_mins[idx - 1]) };
            match kept_rev.last_mut() {
                Some(succ) if !is_first && t.g + succ.g + succ.delta <= budget => {
                    succ.g += t.g;
                }
                _ => kept_rev.push(t),
            }
        }
        kept_rev.reverse();
        self.tuples = kept_rev;
    }
}

impl<T: Ord + Clone> ComparisonSummary<T> for CkmsSummary<T> {
    fn insert(&mut self, item: T) {
        let pos = self.tuples.partition_point(|t| t.v < item);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0
        } else {
            let r_prev: u64 = self.tuples[..pos].iter().map(|t| t.g).sum();
            self.f(r_prev).saturating_sub(1)
        };
        self.tuples.insert(
            pos,
            CkmsTuple {
                v: item,
                g: 1,
                delta,
            },
        );
        self.n += 1;
        if self.n.is_multiple_of(self.compress_period) {
            self.compress();
        }
    }

    fn item_array(&self) -> Vec<T> {
        self.tuples.iter().map(|t| t.v.clone()).collect()
    }

    fn stored_count(&self) -> usize {
        self.tuples.len()
    }

    fn items_processed(&self) -> u64 {
        self.n
    }

    fn query_rank(&self, r: u64) -> Option<T> {
        if self.tuples.is_empty() {
            return None;
        }
        let r = r.clamp(1, self.n);
        let mut r_min = 0u64;
        let mut best: Option<(&CkmsTuple<T>, u64)> = None;
        for t in &self.tuples {
            r_min += t.g;
            let r_max = r_min + t.delta;
            let dev = (r_min.abs_diff(r)).max(r_max.abs_diff(r));
            if best.map(|(_, d)| dev < d).unwrap_or(true) {
                best = Some((t, dev));
            }
        }
        best.map(|(t, _)| t.v.clone())
    }

    fn name(&self) -> &'static str {
        "ckms"
    }
}

impl<T: Ord + Clone> MergeableSummary<T> for CkmsSummary<T> {
    /// Refuses mixed bias directions and out-of-range composed ε up
    /// front, folds via the widened-bounds merge, then validates mass
    /// conservation and sortedness of the merged tuple list. (The
    /// rank-dependent span invariant is a *maintenance* invariant — the
    /// widened merge can exceed it by a constant at the sharp end, which
    /// subsequent compressions absorb; mass and order are the structural
    /// properties every query path relies on.)
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.bias != other.bias {
            return Err(MergeError::IncompatibleParams {
                what: "bias direction",
                left: format!("{:?}", self.bias),
                right: format!("{:?}", other.bias),
            });
        }
        let composed = self.eps + other.eps;
        if !(composed > 0.0 && composed < 0.5) {
            return Err(MergeError::EpsOverflow { composed });
        }
        self.merge_same_bias(other);
        let mass: u64 = self.tuples.iter().map(|t| t.g).sum();
        if mass != self.n {
            return Err(MergeError::InvariantViolated {
                detail: format!("CKMS g mass {mass} disagrees with stream length {}", self.n),
            });
        }
        if !self.tuples.windows(2).all(|w| match (w.first(), w.last()) {
            (Some(a), Some(b)) => a.v <= b.v,
            _ => true,
        }) {
            return Err(MergeError::InvariantViolated {
                detail: "CKMS tuples out of order after merge".to_string(),
            });
        }
        Ok(())
    }

    fn eps_bound(&self) -> Option<f64> {
        Some(self.eps)
    }
}

impl<T: Ord + Clone> RankEstimator<T> for CkmsSummary<T> {
    fn estimate_rank(&self, q: &T) -> u64 {
        if self.tuples.is_empty() || *q < self.tuples[0].v {
            return 0;
        }
        let mut r_min = 0u64;
        let mut prev = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            if t.v <= *q {
                prev = r_min;
            } else {
                return (prev + (r_min + t.delta).saturating_sub(1)) / 2;
            }
        }
        self.n
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn invariant_and_mass_on_random_streams(xs in proptest::collection::vec(0u32..50_000, 1..1200)) {
            let mut ck = CkmsSummary::new(0.05);
            for &x in &xs {
                ck.insert(x);
            }
            prop_assert!(ck.invariant_holds());
            let mass: u64 = ck.tuples().iter().map(|t| t.g).sum();
            prop_assert_eq!(mass, xs.len() as u64);
        }

        #[test]
        fn biased_budget_respected_at_sampled_ranks(xs in proptest::collection::vec(0u32..10_000, 500..2500)) {
            let eps = 0.05;
            let mut ck = CkmsSummary::new(eps);
            let mut sorted = xs.clone();
            for &x in &xs {
                ck.insert(x);
            }
            sorted.sort_unstable();
            let n = xs.len() as u64;
            for &frac in &[0.02f64, 0.1, 0.5, 0.9] {
                let r = ((frac * n as f64) as u64).max(1);
                let ans = ck.query_rank(r).unwrap();
                let lo = sorted.partition_point(|&v| v < ans) as u64 + 1;
                let hi = sorted.partition_point(|&v| v <= ans) as u64;
                let err = if r < lo { lo - r } else { r.saturating_sub(hi) };
                let budget = ((2.0 * eps * r as f64).ceil() as u64).max(3);
                prop_assert!(err <= budget, "rank {r}: err {err} > {budget}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).collect();
        let mut s = seed | 1;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn mass_conservation() {
        let mut ck = CkmsSummary::new(0.02);
        for x in shuffled(30_000, 1) {
            ck.insert(x);
        }
        let mass: u64 = ck.tuples().iter().map(|t| t.g).sum();
        assert_eq!(mass, 30_000);
    }

    #[test]
    fn relative_error_at_low_ranks() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut ck = CkmsSummary::new(eps);
        for x in shuffled(n, 2) {
            ck.insert(x);
        }
        // At rank r the permitted error is ~ε·r (plus slack for the
        // floor/compress rounding).
        for r in [10u64, 100, 1_000, 10_000, 50_000] {
            let ans = ck.query_rank(r).unwrap();
            let budget = ((eps * r as f64).ceil() as u64).max(2) * 2;
            assert!(
                ans.abs_diff(r) <= budget,
                "rank {r}: answer {ans}, err {} > {budget}",
                ans.abs_diff(r)
            );
        }
    }

    #[test]
    fn low_ranks_are_much_sharper_than_uniform_budget() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut ck = CkmsSummary::new(eps);
        for x in shuffled(n, 3) {
            ck.insert(x);
        }
        // Uniform budget would allow ±1000 at rank 50; biased must be
        // within a handful.
        let ans = ck.query_rank(50).unwrap();
        assert!(ans.abs_diff(50) <= 5, "rank 50 answered {ans}");
    }

    #[test]
    fn space_exceeds_gk_but_stays_polylog() {
        let n = 100_000u64;
        let eps = 0.02;
        let mut ck = CkmsSummary::new(eps);
        let mut peak = 0usize;
        for x in shuffled(n, 4) {
            ck.insert(x);
            peak = peak.max(ck.stored_count());
        }
        // Θ((1/ε)·log(εN)·log n)-ish; demand clearly sublinear.
        assert!(peak < (n as usize) / 10, "peak {peak} not sublinear");
        // And clearly more than the flat 1/(2ε) offline floor — the
        // price of the biased guarantee.
        assert!(peak as f64 > 1.0 / (2.0 * eps));
    }

    #[test]
    fn invariant_holds_throughout() {
        let mut ck = CkmsSummary::new(0.05);
        for (i, x) in shuffled(5_000, 5).into_iter().enumerate() {
            ck.insert(x);
            assert!(ck.invariant_holds(), "invariant broken at n={}", i + 1);
        }
    }

    #[test]
    fn extremes_are_stored() {
        let mut ck = CkmsSummary::new(0.05);
        for x in shuffled(10_000, 6) {
            ck.insert(x);
        }
        let arr = ck.item_array();
        assert_eq!(arr[0], 1);
        assert_eq!(*arr.last().unwrap(), 10_000);
    }

    #[test]
    fn rank_estimation_tracks_biased_budget() {
        let n = 50_000u64;
        let eps = 0.02;
        let mut ck = CkmsSummary::new(eps);
        for x in shuffled(n, 7) {
            ck.insert(x);
        }
        for q in [100u64, 1_000, 10_000, 40_000] {
            let est = ck.estimate_rank(&q);
            let budget = ((eps * q as f64).ceil() as u64).max(2) * 2;
            assert!(est.abs_diff(q) <= budget, "rank({q}) est {est}");
        }
    }

    #[test]
    fn high_biased_is_sharp_at_the_tail() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut ck = CkmsSummary::new_high_biased(eps);
        for x in shuffled(n, 8) {
            ck.insert(x);
        }
        // Tail ranks get relative precision: at rank n−50 the budget is
        // ~ε·51.
        for back in [10u64, 100, 1_000] {
            let r = n - back;
            let ans = ck.query_rank(r).unwrap();
            let budget = ((2.0 * eps * (back + 1) as f64).ceil() as u64).max(2) * 2;
            assert!(
                ans.abs_diff(r) <= budget,
                "rank {r} (back {back}): answer {ans}, err {} > {budget}",
                ans.abs_diff(r)
            );
        }
        // …while low ranks are allowed to be coarse (uniform-grade).
        assert!(ck.invariant_holds());
    }

    #[test]
    fn high_biased_p999_much_sharper_than_low_biased() {
        let n = 100_000u64;
        let eps = 0.01;
        let mut high = CkmsSummary::new_high_biased(eps);
        let mut low = CkmsSummary::new(eps);
        for x in shuffled(n, 9) {
            high.insert(x);
            low.insert(x);
        }
        let r = n - n / 1000; // p99.9
        let err_high = high.query_rank(r).unwrap().abs_diff(r);
        let err_low = low.query_rank(r).unwrap().abs_diff(r);
        assert!(
            err_high * 4 <= err_low.max(40),
            "high-biased p99.9 err {err_high} not clearly sharper than low-biased {err_low}"
        );
    }

    #[test]
    fn empty_summary() {
        let ck: CkmsSummary<u64> = CkmsSummary::new(0.1);
        assert_eq!(ck.quantile(0.5), None);
        assert_eq!(ck.estimate_rank(&1), 0);
    }
}
